#include "server/predict_batcher.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace raven::server {
namespace {

/// Groups coalesce only within (model key, feature width). The key alone
/// already pins the graph bytes (it embeds the catalog model version and a
/// hash of the serialized graph), so the width suffix is pure insurance:
/// rows of different shapes must never share a tensor.
std::string GroupKey(const runtime::InferenceBatcher::Request& request) {
  return request.key + '\x1f' + std::to_string(request.input->dim(1));
}

}  // namespace

PredictBatcher::~PredictBatcher() { Shutdown(); }

Result<Tensor> PredictBatcher::Score(const Request& request,
                                     nnrt::RunStats* stats) {
  const Tensor& input = *request.input;
  // Nothing to coalesce: degenerate shapes, and submissions already at or
  // over the batch cap (a full morsel is amortized on its own — batching
  // it again would only add the window's latency).
  const bool batchable = input.rank() == 2 && input.dim(0) > 0 &&
                         request.window_micros > 0 &&
                         request.max_batch_rows > 1 &&
                         input.dim(0) < request.max_batch_rows;
  Pending pending;
  pending.input = &input;
  pending.rows = input.dim(0);
  std::shared_ptr<Group> group;
  bool leader = false;
  std::chrono::steady_clock::time_point deadline;
  const std::string group_key = batchable ? GroupKey(request) : std::string();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.submissions += 1;
    stats_.rows_submitted += pending.rows;
    if (batchable && !closed_) {
      std::shared_ptr<Group>& slot = groups_[group_key];
      if (slot == nullptr) {
        slot = std::make_shared<Group>();
        slot->session = request.session;
        slot->limit = request.max_batch_rows;
        leader = true;
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(request.window_micros);
      }
      group = slot;
      group->limit = std::min(group->limit, request.max_batch_rows);
      group->members.push_back(&pending);
      group->rows += pending.rows;
      if (!leader && group->rows >= group->limit) {
        group->full = true;
        group->cv.notify_all();
      }
    }
  }
  if (group == nullptr) return RunSolo(request, stats);

  if (leader) {
    bool full = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!group->full && !group->wake &&
             std::chrono::steady_clock::now() < deadline) {
        group->cv.wait_until(lock, deadline);
      }
      full = group->full;
      // Claim the group: later arrivals for this key start a fresh group
      // with their own leader. Membership is frozen from here on — joining
      // required finding the group in the map under mu_.
      auto it = groups_.find(group_key);
      if (it != groups_.end() && it->second == group) groups_.erase(it);
    }
    FlushGroup(group.get(), full);
  } else {
    // Bounded transitively: the leader's wait is timed, and it always
    // scatters + notifies, even on error and through Shutdown.
    std::unique_lock<std::mutex> lock(mu_);
    group->cv.wait(lock, [&pending] { return pending.done; });
  }
  if (!pending.result.ok()) return pending.result.status();
  *stats = pending.run_stats;
  return std::move(pending.result).value();
}

Result<Tensor> PredictBatcher::RunSolo(const Request& request,
                                       nnrt::RunStats* stats) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.solo_runs += 1;
  }
  return request.session->RunSingle(*request.input, stats);
}

void PredictBatcher::FlushGroup(Group* group, bool full) {
  std::int64_t total_rows = 0;
  for (const Pending* member : group->members) total_rows += member->rows;

  nnrt::RunStats run_stats;
  Result<Tensor> batch = Status::Internal("empty batch");
  if (group->members.size() == 1) {
    // A batch of one runs the member's own tensor — literally the
    // unbatched call, no concat copy.
    batch = group->session->RunSingle(*group->members[0]->input, &run_stats);
  } else {
    Shape shape = group->members[0]->input->shape();
    shape[0] = total_rows;
    std::vector<float> data;
    data.reserve(static_cast<std::size_t>(ShapeNumElements(shape)));
    for (const Pending* member : group->members) {
      const std::vector<float>& rows = member->input->data();
      data.insert(data.end(), rows.begin(), rows.end());
    }
    auto concatenated = Tensor::FromData(std::move(shape), std::move(data));
    batch = concatenated.ok()
                ? group->session->RunSingle(concatenated.value(), &run_stats)
                : Result<Tensor>(concatenated.status());
  }

  // Scatter. Slicing needs one output row per input row; a graph that
  // reshapes its batch dimension away (none of the registered kernels do)
  // would make the shared result unattributable, so fall back to solo runs
  // rather than guess — correctness over coalescing.
  const bool sliceable = batch.ok() && batch->rank() >= 1 &&
                         batch->dim(0) == total_rows &&
                         batch->num_elements() % std::max<std::int64_t>(
                             total_rows, 1) == 0;
  if (batch.ok() && !sliceable && group->members.size() > 1) {
    std::lock_guard<std::mutex> lock(mu_);
    for (Pending* member : group->members) {
      member->result = group->session->RunSingle(*member->input,
                                                 &member->run_stats);
      member->done = true;
      stats_.batches_flushed += 1;
      stats_.rows_flushed += member->rows;
    }
    group->cv.notify_all();
    return;
  }

  std::lock_guard<std::mutex> lock(mu_);
  stats_.batches_flushed += 1;
  stats_.rows_flushed += total_rows;
  if (group->members.size() > 1) {
    stats_.rows_coalesced += total_rows;
    if (full) {
      stats_.full_flushes += 1;
    } else {
      stats_.deadline_flushes += 1;
    }
  } else {
    stats_.deadline_flushes += 1;
  }
  if (!batch.ok()) {
    for (Pending* member : group->members) {
      member->result = batch.status();
      member->done = true;
    }
  } else if (group->members.size() == 1) {
    Pending* member = group->members[0];
    member->result = std::move(batch);
    member->run_stats = run_stats;
    member->done = true;
  } else {
    const Tensor& preds = batch.value();
    const std::int64_t per_row = preds.num_elements() / total_rows;
    std::int64_t offset = 0;
    for (Pending* member : group->members) {
      Shape shape = preds.shape();
      shape[0] = member->rows;
      const auto begin = preds.data().begin() + offset * per_row;
      member->result = Tensor::FromData(
          std::move(shape),
          std::vector<float>(begin, begin + member->rows * per_row));
      // Each waiter carries its row-fraction of the shared run's cost, so
      // summing per-query stats reproduces the physical totals.
      const double fraction = static_cast<double>(member->rows) /
                              static_cast<double>(total_rows);
      member->run_stats.wall_micros = run_stats.wall_micros * fraction;
      member->run_stats.simulated_micros =
          run_stats.simulated_micros * fraction;
      member->run_stats.flops = run_stats.flops * fraction;
      member->run_stats.nodes_executed = run_stats.nodes_executed;
      member->done = true;
      offset += member->rows;
    }
  }
  group->cv.notify_all();
}

void PredictBatcher::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  // Leaders flush their groups as soon as they wake; followers are then
  // released by the scatter. Groups stay in the map until their leader
  // claims them — Shutdown only shortens the wait, it never drops rows.
  for (auto& [key, group] : groups_) {
    group->wake = true;
    group->cv.notify_all();
  }
}

PredictBatcher::Stats PredictBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace raven::server
