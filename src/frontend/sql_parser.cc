#include "frontend/sql_parser.h"

#include <cctype>
#include <map>

#include "common/string_util.h"
#include "relational/block_table.h"
#include "relational/expression.h"

namespace raven::frontend {
namespace {

using ir::IrNode;
using ir::IrNodePtr;
using relational::CompareOp;
using relational::Expr;
using relational::ExprPtr;

enum class TokKind { kIdent, kNumber, kString, kOp, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // upper-cased for idents when keyword-checked
  std::string raw;    // original spelling
  double number = 0.0;
  std::size_t offset = 0;  // byte offset into the query text (diagnostics)
};

Result<std::vector<Token>> LexSql(const std::string& sql) {
  // DoS guard for the server path: a statement arriving over the wire can
  // be arbitrarily long; bail before tokenizing, not after.
  if (sql.size() > kMaxSqlLength) {
    return Status::ParseError(
        "statement length " + std::to_string(sql.size()) +
        " exceeds the " + std::to_string(kMaxSqlLength) + "-byte limit");
  }
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {  // SQL comment
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '@') {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      Token tok;
      tok.kind = TokKind::kIdent;
      tok.raw = sql.substr(i, j - i);
      tok.text = ToUpper(tok.raw);
      tok.offset = i;
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        ++j;
      }
      Token tok;
      tok.kind = TokKind::kNumber;
      tok.raw = sql.substr(i, j - i);
      try {
        tok.number = std::stod(tok.raw);
      } catch (const std::exception&) {
        // std::stod throws out_of_range past DBL_MAX (e.g. a 310-digit
        // literal); surface it as a diagnosable parse error instead.
        return Status::ParseError("numeric literal '" + tok.raw +
                                  "' out of range at byte offset " +
                                  std::to_string(i));
      }
      tok.offset = i;
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      std::string value;
      while (j < n && sql[j] != '\'') {
        value.push_back(sql[j]);
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated SQL string at byte offset " +
                                  std::to_string(i));
      }
      Token tok;
      tok.kind = TokKind::kString;
      tok.raw = value;
      tok.text = value;
      tok.offset = i;
      tokens.push_back(std::move(tok));
      i = j + 1;
      continue;
    }
    // Operators.
    static const char* kTwoChar[] = {"<>", "<=", ">=", "!="};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (i + 1 < n && sql[i] == op[0] && sql[i + 1] == op[1]) {
        tokens.push_back(Token{TokKind::kOp, op, op, 0.0, i});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (std::string("=<>(),.*+-/?").find(c) != std::string::npos) {
      tokens.push_back(
          Token{TokKind::kOp, std::string(1, c), std::string(1, c), 0.0, i});
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected SQL character '") + c +
                              "' at byte offset " + std::to_string(i));
  }
  Token end;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

class SqlParser {
 public:
  SqlParser(std::vector<Token> tokens, const relational::Catalog& catalog,
            const ModelNodeBuilder& model_builder)
      : tokens_(std::move(tokens)), catalog_(catalog),
        model_builder_(model_builder) {}

  Result<ir::IrPlan> ParseStatement();

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    return tokens_[std::min(pos_ + ahead, tokens_.size() - 1)];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool IsKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent && Peek().text == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return ErrorHere("expected " + std::string(kw));
    }
    return Status::OK();
  }
  bool IsOp(const char* op) const {
    return Peek().kind == TokKind::kOp && Peek().text == op;
  }
  bool AcceptOp(const char* op) {
    if (IsOp(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectOp(const char* op) {
    if (!AcceptOp(op)) {
      return ErrorHere("expected '" + std::string(op) + "'");
    }
    return Status::OK();
  }

  /// Bounds combined expression + subquery nesting (DoS guard: recursive
  /// descent turns attacker-controlled nesting into stack depth). Callers
  /// pair a successful check with a DepthGuard on the same frame.
  Status CheckDepth() {
    if (nesting_depth_ >= kMaxNestingDepth) {
      return ErrorHere("expression nesting depth exceeds " +
                       std::to_string(kMaxNestingDepth));
    }
    return Status::OK();
  }

  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth(depth) { ++*depth; }
    ~DepthGuard() { --*depth; }
    int* depth;
  };

  /// Parse error anchored at the current token: reports what was expected,
  /// the offending token's spelling, and its byte offset in the query text,
  /// so generated-query harnesses (and humans) can pinpoint the failure.
  Status ErrorHere(const std::string& what) const {
    const Token& tok = Peek();
    const std::string got = tok.kind == TokKind::kEnd
                                ? std::string("<end of input>")
                                : "'" + tok.raw + "'";
    return Status::ParseError(what + ", got " + got + " at byte offset " +
                              std::to_string(tok.offset));
  }

  /// Parses `ident` or `alias.ident`, returning the unqualified name.
  Result<std::string> ParseColumnName();

  /// True when the upcoming tokens start an aggregate call (FUNC '(').
  bool AtAggregateFunc() const;
  /// Parses one `FUNC(col | *)` call with its default output name (alias
  /// handling is the caller's).
  Result<ir::AggregateItem> ParseAggregateCall();

  Result<IrNodePtr> ParseSelect();
  Result<IrNodePtr> ParseFromSource();
  Result<IrNodePtr> ParseTableRefChain();
  Result<IrNodePtr> ParseDataRef();

  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseTerm();
  Result<ExprPtr> ParseFactor();

  /// Resolves a categorical string literal against the column's dictionary.
  Result<double> ResolveStringLiteral(const std::string& column,
                                      const std::string& value) const;

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  const relational::Catalog& catalog_;
  const ModelNodeBuilder& model_builder_;
  std::map<std::string, IrNodePtr> ctes_;
  /// Current recursion depth across nested expressions and subqueries.
  int nesting_depth_ = 0;
  /// `?` placeholders seen so far; indices are assigned lexically.
  std::int64_t num_params_ = 0;
  /// Column context for string-literal resolution inside comparisons.
  std::string pending_column_;
  /// Non-null while parsing a HAVING predicate: aggregate calls in the
  /// predicate resolve to (or append hidden) items of this GROUP BY's
  /// aggregate list and read as their output columns. The group keys are
  /// carried along so hidden-item names dodge key-name collisions too.
  std::vector<ir::AggregateItem>* having_agg_items_ = nullptr;
  const std::vector<std::string>* having_group_keys_ = nullptr;
};

Result<std::string> SqlParser::ParseColumnName() {
  if (Peek().kind != TokKind::kIdent) {
    return ErrorHere("expected column name");
  }
  std::string name = Advance().raw;
  if (IsOp(".")) {
    ++pos_;
    if (Peek().kind != TokKind::kIdent) {
      return ErrorHere("expected column after qualifier");
    }
    name = Advance().raw;  // drop the alias qualifier
  }
  return name;
}

Result<double> SqlParser::ResolveStringLiteral(const std::string& column,
                                               const std::string& value) const {
  auto resolve = [&](const std::vector<std::string>& dict) -> Result<double> {
    for (std::size_t i = 0; i < dict.size(); ++i) {
      if (dict[i] == value) return static_cast<double>(i);
    }
    return Status::NotFound("value '" + value + "' not in dictionary of '" +
                            column + "'");
  };
  for (const auto& table_name : catalog_.TableNames()) {
    auto table = catalog_.GetTable(table_name);
    if (!table.ok()) continue;
    auto col = (*table)->GetColumn(column);
    if (!col.ok() || !(*col)->is_categorical()) continue;
    return resolve(*(*col)->dictionary);
  }
  // On-disk tables resolve string literals through their stored
  // dictionaries, same semantics as in-memory ones.
  for (const auto& table_name : catalog_.DiskTableNames()) {
    auto table = catalog_.GetDiskTable(table_name);
    if (!table.ok()) continue;
    const std::vector<std::string>* dict = (*table)->Dictionary(column);
    if (dict == nullptr) continue;
    return resolve(*dict);
  }
  return Status::NotFound("no categorical column '" + column +
                          "' found for string literal '" + value + "'");
}

Result<ExprPtr> SqlParser::ParseFactor() {
  RAVEN_RETURN_IF_ERROR(CheckDepth());
  DepthGuard depth(&nesting_depth_);
  if (having_agg_items_ != nullptr && AtAggregateFunc()) {
    // Aggregate call inside HAVING: reuse the select list's item when one
    // computes the same thing, otherwise append a hidden item to the GROUP
    // BY (it exists in the grouped schema but is not projected).
    RAVEN_ASSIGN_OR_RETURN(ir::AggregateItem item, ParseAggregateCall());
    for (const auto& existing : *having_agg_items_) {
      if (existing.func == item.func && existing.column == item.column) {
        return relational::Col(existing.output_name);
      }
    }
    std::string name = item.output_name;
    int suffix = 2;
    auto taken = [&](const std::string& candidate) {
      for (const auto& existing : *having_agg_items_) {
        if (existing.output_name == candidate) return true;
      }
      if (having_group_keys_ != nullptr) {
        // Group keys share the grouped output schema: a column literally
        // named like a default aggregate name (e.g. `count_v`) must not
        // collide with the hidden item.
        for (const auto& key : *having_group_keys_) {
          if (key == candidate) return true;
        }
      }
      return false;
    };
    while (taken(name)) {
      name = item.output_name + "_" + std::to_string(suffix++);
    }
    item.output_name = name;
    having_agg_items_->push_back(item);
    return relational::Col(item.output_name);
  }
  if (Peek().kind == TokKind::kNumber) {
    return relational::Lit(Advance().number);
  }
  if (Peek().kind == TokKind::kString) {
    // Bare strings are resolved against the pending comparison column.
    if (pending_column_.empty()) {
      return ErrorHere("string literal outside a column comparison");
    }
    RAVEN_ASSIGN_OR_RETURN(double code,
                           ResolveStringLiteral(pending_column_, Peek().raw));
    ++pos_;
    return relational::Lit(code);
  }
  if (AcceptOp("(")) {
    RAVEN_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
    RAVEN_RETURN_IF_ERROR(ExpectOp(")"));
    return inner;
  }
  if (AcceptOp("?")) {
    // Prepared-statement placeholder, numbered by lexical position.
    return ExprPtr(std::make_unique<relational::ParamExpr>(num_params_++));
  }
  RAVEN_ASSIGN_OR_RETURN(std::string name, ParseColumnName());
  pending_column_ = name;
  return relational::Col(name);
}

Result<ExprPtr> SqlParser::ParseTerm() {
  RAVEN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseFactor());
  while (IsOp("*") || IsOp("/")) {
    const bool mul = Advance().text == "*";
    RAVEN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
    lhs = std::make_unique<relational::ArithExpr>(
        mul ? relational::ArithOp::kMul : relational::ArithOp::kDiv,
        std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> SqlParser::ParseAdditive() {
  RAVEN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
  while (IsOp("+") || IsOp("-")) {
    const bool add = Advance().text == "+";
    RAVEN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
    lhs = std::make_unique<relational::ArithExpr>(
        add ? relational::ArithOp::kAdd : relational::ArithOp::kSub,
        std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> SqlParser::ParseComparison() {
  pending_column_.clear();
  RAVEN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  if (AcceptKeyword("IN")) {
    RAVEN_RETURN_IF_ERROR(ExpectOp("("));
    std::vector<double> values;
    while (!IsOp(")")) {
      if (Peek().kind == TokKind::kNumber) {
        values.push_back(Advance().number);
      } else if (Peek().kind == TokKind::kString) {
        RAVEN_ASSIGN_OR_RETURN(
            double code, ResolveStringLiteral(pending_column_, Peek().raw));
        ++pos_;
        values.push_back(code);
      } else {
        return ErrorHere("IN list expects literals");
      }
      if (!AcceptOp(",")) break;
    }
    RAVEN_RETURN_IF_ERROR(ExpectOp(")"));
    return ExprPtr(std::make_unique<relational::InExpr>(std::move(lhs),
                                                        std::move(values)));
  }
  static const std::pair<const char*, CompareOp> kOps[] = {
      {"=", CompareOp::kEq},  {"<>", CompareOp::kNe}, {"!=", CompareOp::kNe},
      {"<=", CompareOp::kLe}, {">=", CompareOp::kGe}, {"<", CompareOp::kLt},
      {">", CompareOp::kGt}};
  for (const auto& [text, op] : kOps) {
    if (AcceptOp(text)) {
      RAVEN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      pending_column_.clear();
      return relational::Cmp(op, std::move(lhs), std::move(rhs));
    }
  }
  return lhs;  // bare boolean expression
}

Result<ExprPtr> SqlParser::ParseNot() {
  if (AcceptKeyword("NOT")) {
    // NOT chains recurse without passing through ParseFactor, so they carry
    // their own depth guard.
    RAVEN_RETURN_IF_ERROR(CheckDepth());
    DepthGuard depth(&nesting_depth_);
    RAVEN_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return relational::Not(std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> SqlParser::ParseAnd() {
  RAVEN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (AcceptKeyword("AND")) {
    RAVEN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = relational::And(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> SqlParser::ParseOr() {
  RAVEN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (AcceptKeyword("OR")) {
    RAVEN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = relational::Or(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<IrNodePtr> SqlParser::ParseDataRef() {
  if (AcceptOp("(")) {
    RAVEN_ASSIGN_OR_RETURN(IrNodePtr subquery, ParseSelect());
    RAVEN_RETURN_IF_ERROR(ExpectOp(")"));
    return subquery;
  }
  if (Peek().kind != TokKind::kIdent) {
    return ErrorHere("expected table or CTE name in DATA=");
  }
  const std::string name = Advance().raw;
  // Optional "AS alias".
  if (AcceptKeyword("AS") && Peek().kind == TokKind::kIdent) ++pos_;
  auto cte = ctes_.find(name);
  if (cte != ctes_.end()) return cte->second->Clone();
  if (catalog_.HasAnyTable(name)) return IrNode::TableScan(name);
  return Status::NotFound("DATA source '" + name +
                          "' is neither a CTE nor a table");
}

Result<IrNodePtr> SqlParser::ParseTableRefChain() {
  if (Peek().kind != TokKind::kIdent) {
    return ErrorHere("expected table name in FROM");
  }
  const std::string first = Advance().raw;
  IrNodePtr left;
  auto cte = ctes_.find(first);
  if (cte != ctes_.end()) {
    left = cte->second->Clone();
  } else if (catalog_.HasAnyTable(first)) {
    left = IrNode::TableScan(first);
  } else {
    return Status::NotFound("table '" + first + "' not found");
  }
  if (AcceptKeyword("AS") && Peek().kind == TokKind::kIdent) ++pos_;
  while (AcceptKeyword("JOIN")) {
    if (Peek().kind != TokKind::kIdent) {
      return ErrorHere("expected table after JOIN");
    }
    const std::string right_name = Advance().raw;
    if (!catalog_.HasAnyTable(right_name)) {
      return Status::NotFound("table '" + right_name + "' not found");
    }
    if (AcceptKeyword("AS") && Peek().kind == TokKind::kIdent) ++pos_;
    RAVEN_RETURN_IF_ERROR(ExpectKeyword("ON"));
    RAVEN_ASSIGN_OR_RETURN(std::string left_key, ParseColumnName());
    RAVEN_RETURN_IF_ERROR(ExpectOp("="));
    RAVEN_ASSIGN_OR_RETURN(std::string right_key, ParseColumnName());
    left = IrNode::Join(std::move(left), IrNode::TableScan(right_name),
                        left_key, right_key);
  }
  return left;
}

Result<IrNodePtr> SqlParser::ParseFromSource() {
  if (AcceptKeyword("PREDICT")) {
    RAVEN_RETURN_IF_ERROR(ExpectOp("("));
    RAVEN_RETURN_IF_ERROR(ExpectKeyword("MODEL"));
    RAVEN_RETURN_IF_ERROR(ExpectOp("="));
    std::string model_name;
    if (Peek().kind == TokKind::kString) {
      model_name = Advance().raw;
    } else if (Peek().kind == TokKind::kIdent &&
               Peek().raw.size() > 1 && Peek().raw[0] == '@') {
      // DECLARE @var support: @name refers to the stored model "name".
      model_name = Advance().raw.substr(1);
    } else {
      return ErrorHere("MODEL= expects a string or @variable");
    }
    RAVEN_RETURN_IF_ERROR(ExpectOp(","));
    RAVEN_RETURN_IF_ERROR(ExpectKeyword("DATA"));
    RAVEN_RETURN_IF_ERROR(ExpectOp("="));
    RAVEN_ASSIGN_OR_RETURN(IrNodePtr data, ParseDataRef());
    RAVEN_RETURN_IF_ERROR(ExpectOp(")"));
    // Optional WITH(output_col [type]).
    std::string output_column = model_name + "_pred";
    if (AcceptKeyword("WITH")) {
      RAVEN_RETURN_IF_ERROR(ExpectOp("("));
      if (Peek().kind != TokKind::kIdent) {
        return ErrorHere("WITH(...) expects an output column name");
      }
      output_column = Advance().raw;
      while (Peek().kind == TokKind::kIdent) ++pos_;  // skip type tokens
      RAVEN_RETURN_IF_ERROR(ExpectOp(")"));
    }
    if (AcceptKeyword("AS") && Peek().kind == TokKind::kIdent) ++pos_;
    return model_builder_(model_name, std::move(data), output_column);
  }
  if (AcceptOp("(")) {
    RAVEN_ASSIGN_OR_RETURN(IrNodePtr sub, ParseSelect());
    RAVEN_RETURN_IF_ERROR(ExpectOp(")"));
    if (AcceptKeyword("AS") && Peek().kind == TokKind::kIdent) ++pos_;
    return sub;
  }
  return ParseTableRefChain();
}

bool SqlParser::AtAggregateFunc() const {
  if (Peek().kind != TokKind::kIdent) return false;
  const std::string& kw = Peek().text;
  if (kw != "COUNT" && kw != "SUM" && kw != "AVG" && kw != "MIN" &&
      kw != "MAX") {
    return false;
  }
  return Peek(1).kind == TokKind::kOp && Peek(1).text == "(";
}

Result<ir::AggregateItem> SqlParser::ParseAggregateCall() {
  ir::AggregateItem item;
  const std::string func = Advance().text;
  if (func == "COUNT") item.func = ir::AggFunc::kCount;
  else if (func == "SUM") item.func = ir::AggFunc::kSum;
  else if (func == "AVG") item.func = ir::AggFunc::kAvg;
  else if (func == "MIN") item.func = ir::AggFunc::kMin;
  else item.func = ir::AggFunc::kMax;
  RAVEN_RETURN_IF_ERROR(ExpectOp("("));
  if (AcceptOp("*")) {
    if (item.func != ir::AggFunc::kCount) {
      return ErrorHere(func + "(*) is not supported");
    }
  } else {
    RAVEN_ASSIGN_OR_RETURN(item.column, ParseColumnName());
  }
  RAVEN_RETURN_IF_ERROR(ExpectOp(")"));
  item.output_name = ToLower(func);
  if (!item.column.empty()) item.output_name += "_" + item.column;
  return item;
}

Result<IrNodePtr> SqlParser::ParseSelect() {
  RAVEN_RETURN_IF_ERROR(CheckDepth());
  DepthGuard depth(&nesting_depth_);
  RAVEN_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  struct Item {
    ExprPtr expr;           // plain item (null when is_agg)
    ir::AggregateItem agg;  // aggregate item (when is_agg)
    bool is_agg = false;
    std::string name;       // output column name (alias-resolved)
  };
  bool star = false;
  std::vector<Item> items;
  bool any_agg = false;
  bool any_plain = false;
  if (AcceptOp("*")) {
    star = true;
  } else {
    while (true) {
      Item item;
      if (AtAggregateFunc()) {
        RAVEN_ASSIGN_OR_RETURN(item.agg, ParseAggregateCall());
        item.is_agg = true;
        any_agg = true;
        if (AcceptKeyword("AS")) {
          if (Peek().kind != TokKind::kIdent) {
            return ErrorHere("expected alias after AS");
          }
          item.agg.output_name = Advance().raw;
        }
        item.name = item.agg.output_name;
      } else {
        const std::size_t before = pos_;
        any_plain = true;
        RAVEN_ASSIGN_OR_RETURN(item.expr, ParseAdditive());
        if (AcceptKeyword("AS")) {
          if (Peek().kind != TokKind::kIdent) {
            return ErrorHere("expected alias after AS");
          }
          item.name = Advance().raw;
        } else if (item.expr->kind() == Expr::Kind::kColumnRef) {
          item.name =
              static_cast<relational::ColumnRefExpr*>(item.expr.get())->name();
        } else {
          item.name = "expr" + std::to_string(before);
        }
      }
      items.push_back(std::move(item));
      if (!AcceptOp(",")) break;
    }
  }
  RAVEN_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  RAVEN_ASSIGN_OR_RETURN(IrNodePtr source, ParseFromSource());
  if (AcceptKeyword("WHERE")) {
    RAVEN_ASSIGN_OR_RETURN(ExprPtr predicate, ParseOr());
    source = IrNode::Filter(std::move(source), std::move(predicate));
  }

  std::vector<std::string> group_keys;
  if (AcceptKeyword("GROUP")) {
    RAVEN_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      RAVEN_ASSIGN_OR_RETURN(std::string key, ParseColumnName());
      group_keys.push_back(std::move(key));
      if (!AcceptOp(",")) break;
    }
  }

  const bool grouped = !group_keys.empty();
  const bool aggregated = grouped || any_agg;
  /// Output column names of the select list, for ORDER BY ordinals (empty
  /// when SELECT *).
  std::vector<std::string> output_names;
  /// Wraps `node` in the select-list projection (select order, aliases
  /// applied; aggregate items read their grouped output column). Consumes
  /// `items`.
  auto project_items = [&items](IrNodePtr node) {
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (auto& item : items) {
      exprs.push_back(item.is_agg ? relational::Col(item.agg.output_name)
                                  : std::move(item.expr));
      names.push_back(item.name);
    }
    return IrNode::Project(std::move(node), std::move(exprs),
                           std::move(names));
  };

  if (grouped) {
    if (star) {
      return ErrorHere("SELECT * cannot be combined with GROUP BY");
    }
    // Plain select items must be bare references to group keys (grouped
    // output is one row per key tuple; anything else is ambiguous).
    std::vector<ir::AggregateItem> agg_items;
    for (const auto& item : items) {
      if (item.is_agg) {
        agg_items.push_back(item.agg);
        continue;
      }
      if (item.expr->kind() != Expr::Kind::kColumnRef) {
        return ErrorHere("non-aggregate select item '" + item.name +
                         "' must be a bare GROUP BY key column");
      }
      const std::string& column =
          static_cast<relational::ColumnRefExpr*>(item.expr.get())->name();
      bool is_key = false;
      for (const auto& key : group_keys) {
        if (key == column) {
          is_key = true;
          break;
        }
      }
      if (!is_key) {
        return ErrorHere("select item '" + column +
                         "' is neither aggregated nor a GROUP BY key");
      }
    }
    if (AcceptKeyword("HAVING")) {
      having_agg_items_ = &agg_items;
      having_group_keys_ = &group_keys;
      auto predicate = ParseOr();
      having_agg_items_ = nullptr;
      having_group_keys_ = nullptr;
      RAVEN_RETURN_IF_ERROR(predicate.status());
      source = IrNode::GroupBy(std::move(source), group_keys,
                               std::move(agg_items));
      source = IrNode::Filter(std::move(source), std::move(predicate).value());
    } else {
      source = IrNode::GroupBy(std::move(source), group_keys,
                               std::move(agg_items));
    }
    // Project the select list (hidden HAVING aggregates dropped) on top of
    // the grouped schema.
    for (const auto& item : items) output_names.push_back(item.name);
    source = project_items(std::move(source));
  } else if (any_agg) {
    if (any_plain) {
      return ErrorHere(
          "mixing aggregates and plain select items requires GROUP BY");
    }
    std::vector<ir::AggregateItem> agg_items;
    for (const auto& item : items) agg_items.push_back(item.agg);
    for (const auto& item : agg_items) output_names.push_back(item.output_name);
    // Aggregation folds the whole (filtered) input into one row; LIMIT, if
    // present, applies on top of that row.
    source = IrNode::Aggregate(std::move(source), std::move(agg_items));
  } else {
    for (const auto& item : items) output_names.push_back(item.name);
  }
  if (IsKeyword("HAVING")) {
    return ErrorHere("HAVING requires GROUP BY");
  }

  std::vector<ir::SortKey> sort_keys;
  if (AcceptKeyword("ORDER")) {
    RAVEN_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      ir::SortKey key;
      if (Peek().kind == TokKind::kNumber) {
        // 1-based ordinal into the select list (ORDER BY 2 DESC).
        if (star) {
          return ErrorHere(
              "ORDER BY ordinal requires an explicit select list");
        }
        const double number = Peek().number;
        const auto ordinal = static_cast<std::int64_t>(number);
        if (static_cast<double>(ordinal) != number || ordinal < 1 ||
            ordinal > static_cast<std::int64_t>(output_names.size())) {
          return ErrorHere("ORDER BY ordinal out of range (1.." +
                           std::to_string(output_names.size()) + ")");
        }
        ++pos_;
        key.column = output_names[static_cast<std::size_t>(ordinal - 1)];
      } else {
        RAVEN_ASSIGN_OR_RETURN(key.column, ParseColumnName());
      }
      if (AcceptKeyword("DESC")) {
        key.descending = true;
      } else {
        AcceptKeyword("ASC");
      }
      sort_keys.push_back(std::move(key));
      if (!AcceptOp(",")) break;
    }
  }
  const bool sorted = !sort_keys.empty();

  // Non-sorted plain selects keep the legacy LIMIT-inside-projection shape
  // (the projection is 1:1, so the result is identical); with ORDER BY the
  // projection must be applied first and LIMIT last.
  if (!aggregated && !star && sorted) {
    source = project_items(std::move(source));
  }
  if (sorted) {
    source = IrNode::OrderBy(std::move(source), std::move(sort_keys));
  }
  if (AcceptKeyword("LIMIT")) {
    if (Peek().kind != TokKind::kNumber) {
      return ErrorHere("LIMIT expects a number");
    }
    source = IrNode::Limit(std::move(source),
                           static_cast<std::int64_t>(Advance().number));
  }
  if (aggregated || star || sorted) return source;
  return project_items(std::move(source));
}

Result<ir::IrPlan> SqlParser::ParseStatement() {
  while (AcceptKeyword("WITH") || AcceptOp(",")) {
    if (Peek().kind != TokKind::kIdent) {
      return ErrorHere("expected CTE name after WITH");
    }
    const std::string name = Advance().raw;
    RAVEN_RETURN_IF_ERROR(ExpectKeyword("AS"));
    RAVEN_RETURN_IF_ERROR(ExpectOp("("));
    RAVEN_ASSIGN_OR_RETURN(IrNodePtr cte, ParseSelect());
    RAVEN_RETURN_IF_ERROR(ExpectOp(")"));
    ctes_[name] = std::move(cte);
    if (!IsOp(",")) break;
  }
  RAVEN_ASSIGN_OR_RETURN(IrNodePtr root, ParseSelect());
  if (Peek().kind != TokKind::kEnd) {
    return ErrorHere("trailing tokens after query");
  }
  return ir::IrPlan(std::move(root));
}

}  // namespace

Result<ir::IrPlan> ParseInferenceQuery(const std::string& sql,
                                       const relational::Catalog& catalog,
                                       const ModelNodeBuilder& model_builder) {
  RAVEN_ASSIGN_OR_RETURN(auto tokens, LexSql(sql));
  SqlParser parser(std::move(tokens), catalog, model_builder);
  return parser.ParseStatement();
}

Result<std::string> NormalizeSql(const std::string& sql) {
  RAVEN_ASSIGN_OR_RETURN(auto tokens, LexSql(sql));
  std::string out;
  out.reserve(sql.size());
  for (const auto& tok : tokens) {
    if (tok.kind == TokKind::kEnd) break;
    if (!out.empty()) out += ' ';
    if (tok.kind == TokKind::kString) {
      out += '\'';
      out += tok.raw;
      out += '\'';
    } else {
      out += tok.raw;
    }
  }
  return out;
}

}  // namespace raven::frontend
