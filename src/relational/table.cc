#include "relational/table.h"

#include <iomanip>
#include <sstream>

namespace raven::relational {

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column.name + "' has " + std::to_string(column.size()) +
        " rows; table has " + std::to_string(num_rows()));
  }
  if (HasColumn(column.name)) {
    return Status::AlreadyExists("duplicate column '" + column.name + "'");
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::AddNumericColumn(const std::string& name,
                               std::vector<double> data) {
  Column c;
  c.name = name;
  c.data = std::move(data);
  return AddColumn(std::move(c));
}

Status Table::AddCategoricalColumn(const std::string& name,
                                   std::vector<double> codes,
                                   std::vector<std::string> dictionary) {
  Column c;
  c.name = name;
  c.data = std::move(codes);
  c.dictionary = std::move(dictionary);
  return AddColumn(std::move(c));
}

Result<std::int64_t> Table::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<std::int64_t>(i);
  }
  return Status::NotFound("column '" + name + "' not found");
}

bool Table::HasColumn(const std::string& name) const {
  return ColumnIndex(name).ok();
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  RAVEN_ASSIGN_OR_RETURN(std::int64_t idx, ColumnIndex(name));
  return &columns_[static_cast<std::size_t>(idx)];
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c.name);
  return names;
}

Table Table::Head(std::int64_t n) const {
  return SliceRows(0, std::min(n, num_rows()));
}

Table Table::SliceRows(std::int64_t begin, std::int64_t end) const {
  Table out;
  begin = std::max<std::int64_t>(0, begin);
  end = std::min(end, num_rows());
  for (const auto& c : columns_) {
    Column nc;
    nc.name = c.name;
    nc.dictionary = c.dictionary;
    if (begin < end) {
      nc.data.assign(c.data.begin() + begin, c.data.begin() + end);
    }
    out.columns_.push_back(std::move(nc));
  }
  return out;
}

Result<Tensor> Table::ToTensor(
    const std::vector<std::string>& column_names) const {
  const std::int64_t n = num_rows();
  const std::int64_t k = static_cast<std::int64_t>(column_names.size());
  Tensor out = Tensor::Zeros({n, k});
  for (std::int64_t j = 0; j < k; ++j) {
    RAVEN_ASSIGN_OR_RETURN(
        const Column* col,
        GetColumn(column_names[static_cast<std::size_t>(j)]));
    for (std::int64_t r = 0; r < n; ++r) {
      out.raw()[r * k + j] =
          static_cast<float>(col->data[static_cast<std::size_t>(r)]);
    }
  }
  return out;
}

Result<Table> Table::FromTensor(const Tensor& tensor,
                                std::vector<std::string> names) {
  if (tensor.rank() != 2) {
    return Status::InvalidArgument("FromTensor expects rank-2");
  }
  const std::int64_t n = tensor.dim(0);
  const std::int64_t k = tensor.dim(1);
  if (names.empty()) {
    for (std::int64_t j = 0; j < k; ++j) {
      names.push_back("col" + std::to_string(j));
    }
  }
  if (static_cast<std::int64_t>(names.size()) != k) {
    return Status::InvalidArgument("FromTensor name count mismatch");
  }
  Table out;
  for (std::int64_t j = 0; j < k; ++j) {
    std::vector<double> data(static_cast<std::size_t>(n));
    for (std::int64_t r = 0; r < n; ++r) {
      data[static_cast<std::size_t>(r)] = tensor.raw()[r * k + j];
    }
    RAVEN_RETURN_IF_ERROR(
        out.AddNumericColumn(names[static_cast<std::size_t>(j)],
                             std::move(data)));
  }
  return out;
}

std::string Table::ToString(std::int64_t max_rows) const {
  std::ostringstream os;
  os << "Table(" << num_rows() << " rows x " << num_columns() << " cols)\n";
  for (const auto& c : columns_) {
    os << std::setw(14) << c.name;
  }
  os << "\n";
  const std::int64_t n = std::min(max_rows, num_rows());
  for (std::int64_t r = 0; r < n; ++r) {
    for (const auto& c : columns_) {
      if (c.is_categorical()) {
        const auto code = static_cast<std::size_t>(
            c.data[static_cast<std::size_t>(r)]);
        os << std::setw(14)
           << (code < c.dictionary->size() ? (*c.dictionary)[code] : "?");
      } else {
        os << std::setw(14) << c.data[static_cast<std::size_t>(r)];
      }
    }
    os << "\n";
  }
  if (n < num_rows()) os << "  ... (" << (num_rows() - n) << " more)\n";
  return os.str();
}

void Table::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(columns_.size());
  for (const auto& c : columns_) {
    writer->WriteString(c.name);
    writer->WriteF64Vector(c.data);
    writer->WriteBool(c.dictionary.has_value());
    if (c.dictionary.has_value()) writer->WriteStringVector(*c.dictionary);
  }
}

Result<Table> ConcatTables(std::vector<Table> parts) {
  Table merged;
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  bool first = true;
  for (auto& part : parts) {
    if (part.num_columns() == 0) continue;  // part produced no rows
    if (first) {
      names = part.ColumnNames();
      cols.assign(names.size(), {});
      first = false;
    } else if (part.ColumnNames() != names) {
      return Status::ExecutionError(
          "cannot concatenate tables with diverging schemas");
    }
    for (std::size_t c = 0; c < names.size(); ++c) {
      auto& src = part.mutable_columns()[c].data;
      cols[c].insert(cols[c].end(), src.begin(), src.end());
    }
  }
  for (std::size_t c = 0; c < names.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(
        merged.AddNumericColumn(names[c], std::move(cols[c])));
  }
  return merged;
}

Result<Table> Table::Deserialize(BinaryReader* reader) {
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t n, reader->ReadU64());
  if (n > reader->remaining()) {
    return Status::ParseError("implausible table column count");
  }
  Table out;
  for (std::uint64_t i = 0; i < n; ++i) {
    Column column;
    RAVEN_ASSIGN_OR_RETURN(column.name, reader->ReadString());
    RAVEN_ASSIGN_OR_RETURN(column.data, reader->ReadF64Vector());
    RAVEN_ASSIGN_OR_RETURN(bool categorical, reader->ReadBool());
    if (categorical) {
      RAVEN_ASSIGN_OR_RETURN(auto dictionary, reader->ReadStringVector());
      column.dictionary = std::move(dictionary);
    }
    RAVEN_RETURN_IF_ERROR(out.AddColumn(std::move(column)));
  }
  return out;
}

}  // namespace raven::relational
