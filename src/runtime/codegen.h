#ifndef RAVEN_RUNTIME_CODEGEN_H_
#define RAVEN_RUNTIME_CODEGEN_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "ir/ir.h"
#include "nnrt/session.h"
#include "relational/catalog.h"
#include "relational/operators.h"
#include "runtime/external_runtime.h"

namespace raven::runtime {

/// Where model scoring runs (paper §5, in decreasing integration order).
enum class ExecutionMode {
  kInProcess,     ///< NNRT linked into the engine (PREDICT operator)
  kOutOfProcess,  ///< raven_worker child process over pipes (Raven Ext)
  kContainer,     ///< per-query worker with container boot cost (fallback)
};

const char* ExecutionModeToString(ExecutionMode mode);

/// Execution configuration for one query.
struct ExecutionOptions {
  ExecutionMode mode = ExecutionMode::kInProcess;
  /// Number of scan+PREDICT partitions; >1 enables the engine's automatic
  /// parallelization (paper §5 observation iii). Only single-base-table
  /// plans in in-process mode parallelize; others run sequentially.
  std::int64_t parallelism = 1;
  /// NNRT device for in-process sessions (CPU or simulated accelerator).
  nnrt::DeviceSpec device = nnrt::DeviceSpec::Cpu();
  /// Out-of-process worker configuration.
  ExternalRuntimeOptions external;
  /// Containerized execution adds container start-up on top of the worker
  /// boot cost.
  std::int64_t container_extra_boot_millis = 600;
};

/// Accumulated execution statistics (thread-safe accumulation is handled by
/// the executor).
struct ExecutionStats {
  std::int64_t rows_out = 0;
  std::int64_t predict_batches = 0;
  double nn_wall_micros = 0.0;
  /// Device-model time for accelerator sessions (== wall time on CPU).
  double nn_simulated_micros = 0.0;
};

/// Shared state for building physical plans.
struct RuntimeContext {
  const relational::Catalog* catalog = nullptr;
  nnrt::SessionCache* session_cache = nullptr;
  ExecutionOptions options;
  /// Optional stats sink; may be updated from multiple partitions.
  ExecutionStats* stats = nullptr;
  std::mutex* stats_mu = nullptr;

  /// When set, TableScan nodes over `partition_table` scan only
  /// [partition_begin, partition_end) — the parallel-execution hook.
  std::string partition_table;
  std::int64_t partition_begin = 0;
  std::int64_t partition_end = -1;
};

/// Raven's Runtime Code Generator: lowers an optimized IR plan to a
/// physical operator tree over the relational engine, binding each model
/// node to a scorer for the configured execution mode.
Result<relational::OperatorPtr> BuildPhysicalPlan(const ir::IrNode& node,
                                                  const RuntimeContext& ctx);

/// Renders the optimized IR back to SQL text (the paper's code generator
/// emits a rewritten SQL query; this is that artifact, used by EXPLAIN).
std::string GenerateSql(const ir::IrNode& node);

}  // namespace raven::runtime

#endif  // RAVEN_RUNTIME_CODEGEN_H_
