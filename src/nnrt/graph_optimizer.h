#ifndef RAVEN_NNRT_GRAPH_OPTIMIZER_H_
#define RAVEN_NNRT_GRAPH_OPTIMIZER_H_

#include "common/status.h"
#include "nnrt/graph.h"

namespace raven::nnrt {

/// Statistics of one optimization run, used by tests and EXPLAIN output.
struct GraphOptStats {
  std::size_t constants_folded = 0;
  std::size_t identities_removed = 0;
  std::size_t dead_nodes_removed = 0;
  std::size_t gemms_fused = 0;
};

/// Compiler-style optimizations inside the NN runtime (paper §2 "compiler
/// optimizations", implemented in ONNX Runtime there):
///   1. constant folding — any node whose inputs are all initializers is
///      evaluated at optimization time and replaced by an initializer. This
///      is what makes predicate-derived constants (e.g. pregnant = 1)
///      propagate through the network;
///   2. identity elimination;
///   3. MatMul + Add(bias row vector) fusion into Gemm;
///   4. dead-node elimination (nodes not reachable from graph outputs).
/// Runs rules to a fixpoint. The graph's observable outputs are unchanged.
Status OptimizeGraph(Graph* graph, GraphOptStats* stats = nullptr);

}  // namespace raven::nnrt

#endif  // RAVEN_NNRT_GRAPH_OPTIMIZER_H_
