#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "runtime/worker_protocol.h"

namespace raven::server {

Status ServerClient::ConnectUnix(const std::string& socket_path) {
  if (connected()) return Status::InvalidArgument("already connected");
  ::signal(SIGPIPE, SIG_IGN);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " +
                                   socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError("socket(AF_UNIX) failed: " +
                           std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Status::IoError("connect(" + socket_path + ") failed: " + error);
  }
  return Status::OK();
}

Status ServerClient::ConnectTcp(const std::string& host, int port) {
  if (connected()) return Status::InvalidArgument("already connected");
  ::signal(SIGPIPE, SIG_IGN);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError("socket(AF_INET) failed: " +
                           std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Status::IoError("connect(" + host + ":" + std::to_string(port) +
                           ") failed: " + error);
  }
  return Status::OK();
}

void ServerClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServerClient::Abort() {
  if (fd_ >= 0) {
    // RST rather than FIN-and-wait: the server sees a hard error on its
    // next read/write of this connection, exactly like a crashed client.
    struct linger hard = {1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  }
  Close();
}

Status ServerClient::Send(const ClientRequest& request) {
  if (!connected()) return Status::IoError("not connected");
  return runtime::WriteFrame(fd_, EncodeClientRequest(request));
}

Result<ServerResponse> ServerClient::Roundtrip(const ClientRequest& request) {
  RAVEN_RETURN_IF_ERROR(Send(request));
  RAVEN_ASSIGN_OR_RETURN(
      std::string payload,
      runtime::ReadFrame(fd_, response_timeout_millis_ > 0
                                  ? response_timeout_millis_
                                  : -1));
  return DecodeServerResponse(payload);
}

Result<ServerResponse> ServerClient::Query(const std::string& sql) {
  ClientRequest request;
  request.command = ClientCommand::kQuery;
  request.sql = sql;
  return Roundtrip(request);
}

Result<ServerResponse> ServerClient::ExecutePrepared(
    const std::string& name, const std::vector<double>& params) {
  ClientRequest request;
  request.command = ClientCommand::kExecute;
  request.statement_name = name;
  request.params = params;
  return Roundtrip(request);
}

Result<ServerResponse> ServerClient::Ping() {
  ClientRequest request;
  request.command = ClientCommand::kPing;
  return Roundtrip(request);
}

}  // namespace raven::server
