// Distributed-execution tests: the persistent worker pool, plan-fragment
// shipping, and — this being the whole point of a distributed runtime —
// protocol fault injection. A SIGKILLed worker mid-query, a worker that
// truncates a frame, claims a 2 GiB frame, dies silently, or answers with
// an error must all end in a correct query result via retry/fallback (and a
// visible worker_restarts stat), never in a wrong answer or a hang.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "data/hospital.h"
#include "ir/ir.h"
#include "obs/trace.h"
#include "raven/raven.h"
#include "relational/expression.h"
#include "runtime/plan_executor.h"
#include "runtime/worker_pool.h"
#include "test_util.h"

namespace raven::runtime {
namespace {

void ExpectTablesEqual(const relational::Table& expected,
                       const relational::Table& actual) {
  ASSERT_EQ(expected.ColumnNames(), actual.ColumnNames());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  for (std::int64_t c = 0; c < expected.num_columns(); ++c) {
    const auto& lhs = expected.columns()[static_cast<std::size_t>(c)].data;
    const auto& rhs = actual.columns()[static_cast<std::size_t>(c)].data;
    for (std::size_t r = 0; r < lhs.size(); ++r) {
      ASSERT_DOUBLE_EQ(lhs[r], rhs[r])
          << "col " << expected.ColumnNames()[static_cast<std::size_t>(c)]
          << " row " << r;
    }
  }
}

class WorkerPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hospital_ = data::MakeHospitalDataset(600, 13);
    ASSERT_NO_FATAL_FAILURE(
        test_util::RegisterHospitalTables(&catalog_, hospital_));
    test_util::InsertHospitalTreeModel(&catalog_, hospital_, 4);
    ASSERT_FALSE(HasFailure()) << "fixture setup failed";
  }

  ExecutionOptions DistributedOptions(
      std::int64_t workers,
      const std::vector<std::string>& worker_args = {}) {
    ExecutionOptions options;
    options.mode = ExecutionMode::kDistributed;
    options.distributed_workers = workers;
    options.distributed_frame_timeout_millis = 10000;
    options.external.worker_args = worker_args;
    return options;
  }

  Result<relational::Table> RunSequential(PlanExecutor* executor,
                                          const ir::IrPlan& plan) {
    return executor->Execute(plan, ExecutionOptions());
  }

  data::HospitalDataset hospital_;
  relational::Catalog catalog_;
  nnrt::SessionCache cache_{8};
};

TEST_F(WorkerPoolTest, DistributedMatchesInProcessAcrossPlanShapes) {
  // Fully distributable chains, and plans whose remainder (joins, grouped
  // aggregation, sorts, LIMIT) executes in-process over fragment tables.
  const std::vector<std::string> queries = {
      "SELECT id, age FROM patients WHERE age > 40",
      "SELECT * FROM patients",
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(p float) WHERE p > 5",
      "SELECT pi.id, bt.glucose FROM patient_info AS pi "
      "JOIN blood_tests AS bt ON pi.id = bt.id WHERE bt.glucose > 100",
      "SELECT gender, COUNT(*) AS n, AVG(age) AS avg_age FROM patients "
      "GROUP BY gender",
      "SELECT id, age FROM patients ORDER BY age DESC, id ASC LIMIT 25",
      "SELECT COUNT(*) AS n FROM patients WHERE bp > 80",
      // The paper's running example: PREDICT over a join chain, so the
      // model node itself sits in the in-process remainder (its child is
      // not distributable) while the joined scans ship as fragments.
      test_util::RunningExampleSql(),
  };
  PlanExecutor executor(&catalog_, &cache_);
  const ExecutionOptions distributed = DistributedOptions(3);
  for (const auto& sql : queries) {
    SCOPED_TRACE(sql);
    ir::IrPlan plan = test_util::AnalyzePlan(catalog_, sql);
    auto expected = RunSequential(&executor, plan);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ExecutionStats stats;
    auto actual = executor.Execute(plan, distributed, &stats);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_NO_FATAL_FAILURE(ExpectTablesEqual(*expected, *actual));
    EXPECT_GT(stats.frames_sent, 0);
    EXPECT_GT(stats.bytes_shipped, 0);
    EXPECT_EQ(stats.worker_restarts, 0);
    EXPECT_EQ(stats.partitions_used, 3);
  }
}

TEST_F(WorkerPoolTest, PoolStaysWarmAcrossQueries) {
  PlanExecutor executor(&catalog_, &cache_);
  const ExecutionOptions distributed = DistributedOptions(2);
  ir::IrPlan plan = test_util::AnalyzePlan(
      catalog_, "SELECT id FROM patients WHERE age > 30");
  ASSERT_TRUE(executor.Execute(plan, distributed).ok());
  std::shared_ptr<WorkerPool> pool = executor.worker_pool();
  ASSERT_NE(pool, nullptr);
  const pid_t pid0 = pool->worker_pid(0);
  const pid_t pid1 = pool->worker_pid(1);
  ASSERT_TRUE(executor.Execute(plan, distributed).ok());
  // Same processes served both queries: nothing respawned in between.
  EXPECT_EQ(pool, executor.worker_pool());
  EXPECT_EQ(pid0, pool->worker_pid(0));
  EXPECT_EQ(pid1, pool->worker_pid(1));
  EXPECT_EQ(pool->restarts(), 0);
}

TEST_F(WorkerPoolTest, SigkilledWorkerRetriesOnFreshWorker) {
  PlanExecutor executor(&catalog_, &cache_);
  const ExecutionOptions distributed = DistributedOptions(2);
  ir::IrPlan plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float)");
  auto expected = RunSequential(&executor, plan);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(executor.Execute(plan, distributed).ok());  // spawn the pool
  std::shared_ptr<WorkerPool> pool = executor.worker_pool();
  ASSERT_NE(pool, nullptr);
  ASSERT_EQ(::kill(pool->worker_pid(0), SIGKILL), 0);
  ExecutionStats stats;
  auto actual = executor.Execute(plan, distributed, &stats);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ASSERT_NO_FATAL_FAILURE(ExpectTablesEqual(*expected, *actual));
  EXPECT_GE(stats.worker_restarts, 1);
}

TEST_F(WorkerPoolTest, SigkillMidQueryStillYieldsCorrectResult) {
  PlanExecutor executor(&catalog_, &cache_);
  const ExecutionOptions distributed = DistributedOptions(2);
  ir::IrPlan plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float)");
  auto expected = RunSequential(&executor, plan);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(executor.Execute(plan, distributed).ok());  // warm pool
  std::shared_ptr<WorkerPool> pool = executor.worker_pool();
  ASSERT_NE(pool, nullptr);
  // Race the kill against the query a few times: depending on timing the
  // SIGKILL lands before the send (EPIPE), mid-stream (EOF), or after the
  // exchange (next query restarts). Every interleaving must produce the
  // correct table.
  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const pid_t victim = pool->worker_pid(round % 2);
    std::thread killer([victim, round] {
      std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
      ::kill(victim, SIGKILL);
    });
    auto actual = executor.Execute(plan, distributed);
    killer.join();
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_NO_FATAL_FAILURE(ExpectTablesEqual(*expected, *actual));
  }
}

TEST_F(WorkerPoolTest, InjectedProtocolFaultsFallBackWithCorrectResults) {
  // The worker binary's --fault flags misbehave on every kExecuteFragment:
  // silent death, a truncated frame, an oversized length header, a
  // worker-side error. The retry hits the same fault on the fresh worker,
  // so the partition must complete through the in-process fallback.
  ir::IrPlan plan = test_util::AnalyzePlan(
      catalog_, "SELECT id, age FROM patients WHERE age > 40");
  PlanExecutor reference(&catalog_, &cache_);
  auto expected = RunSequential(&reference, plan);
  ASSERT_TRUE(expected.ok());
  for (const std::string fault : {"die", "truncate", "oversize", "error"}) {
    SCOPED_TRACE("fault=" + fault);
    PlanExecutor executor(&catalog_, &cache_);
    ExecutionStats stats;
    auto actual = executor.Execute(
        plan, DistributedOptions(2, {"--fault=" + fault}), &stats);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_NO_FATAL_FAILURE(ExpectTablesEqual(*expected, *actual));
    EXPECT_GE(stats.worker_restarts, 1) << "retry path never fired";
  }
}

TEST_F(WorkerPoolTest, MissingWorkerBinaryFallsBackInProcess) {
  PlanExecutor executor(&catalog_, &cache_);
  ExecutionOptions distributed = DistributedOptions(2);
  distributed.external.worker_path = "/nonexistent/raven_worker";
  ir::IrPlan plan = test_util::AnalyzePlan(
      catalog_, "SELECT id, age FROM patients WHERE age > 40");
  auto expected = RunSequential(&executor, plan);
  ASSERT_TRUE(expected.ok());
  ExecutionStats stats;
  auto actual = executor.Execute(plan, distributed, &stats);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ASSERT_NO_FATAL_FAILURE(ExpectTablesEqual(*expected, *actual));
  EXPECT_EQ(executor.worker_pool(), nullptr);
  EXPECT_EQ(stats.frames_sent, 0);
}

TEST_F(WorkerPoolTest, StopJoinsWorkersDeterministically) {
  WorkerPool pool;
  WorkerPoolOptions options;
  options.num_workers = 3;
  ASSERT_TRUE(pool.Start(options).ok());
  ASSERT_TRUE(pool.running());
  std::vector<pid_t> pids;
  for (std::int64_t w = 0; w < pool.num_workers(); ++w) {
    pids.push_back(pool.worker_pid(w));
  }
  pool.Stop();
  EXPECT_FALSE(pool.running());
  // The kShutdown ack + reap means no child survives Stop.
  for (pid_t pid : pids) {
    EXPECT_NE(::kill(pid, 0), 0) << "worker " << pid << " still alive";
  }
}

TEST_F(WorkerPoolTest, TraceStitchesWorkerSpansAndShowsRetryFallbackLadder) {
  // The distributed retry ladder must be *visible*, not just correct: a
  // healthy exchange carries the worker's own spans spliced underneath, a
  // SIGKILLed worker leaves an exchange.retry on the fresh worker, and a
  // persistent fault (the respawned worker misbehaves too) ends in a
  // local_fallback span — one trace line per hop of the never-fail ladder.
  auto spans_named = [](const std::vector<obs::TraceSpan>& spans,
                        const std::string& name) {
    std::vector<const obs::TraceSpan*> out;
    for (const auto& s : spans) {
      if (s.name == name) out.push_back(&s);
    }
    return out;
  };
  auto has_ancestor_named = [](const std::vector<obs::TraceSpan>& spans,
                               const obs::TraceSpan& span,
                               const std::string& name) {
    std::map<std::int64_t, const obs::TraceSpan*> by_id;
    for (const auto& s : spans) by_id[s.id] = &s;
    for (std::int64_t parent = span.parent; parent != 0;) {
      auto it = by_id.find(parent);
      if (it == by_id.end()) return false;
      if (it->second->name == name) return true;
      parent = it->second->parent;
    }
    return false;
  };

  PlanExecutor executor(&catalog_, &cache_);
  const ExecutionOptions distributed = DistributedOptions(2);
  ir::IrPlan plan = test_util::AnalyzePlan(
      catalog_, "SELECT id, age FROM patients WHERE age > 40");
  auto expected = RunSequential(&executor, plan);
  ASSERT_TRUE(expected.ok());

  // Healthy run: per-partition exchanges with stitched worker trees.
  {
    obs::Trace trace;
    ExecutionOptions traced = distributed;
    traced.trace = &trace;
    auto actual = executor.Execute(plan, traced);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_NO_FATAL_FAILURE(ExpectTablesEqual(*expected, *actual));
    const std::vector<obs::TraceSpan> spans = trace.Snapshot();
    EXPECT_GE(spans_named(spans, "exchange").size(), 2u)
        << "one exchange per partition";
    const auto decodes = spans_named(spans, "fragment.decode");
    ASSERT_FALSE(decodes.empty())
        << "worker-side spans were not shipped back";
    for (const obs::TraceSpan* decode : decodes) {
      EXPECT_TRUE(has_ancestor_named(spans, *decode, "exchange"))
          << "worker span not stitched under its exchange";
    }
    EXPECT_TRUE(spans_named(spans, "exchange.retry").empty());
    EXPECT_TRUE(spans_named(spans, "local_fallback").empty());
  }

  // SIGKILL one worker: the retry on its replacement shows up as a span,
  // and the result is still byte-identical.
  std::shared_ptr<WorkerPool> pool = executor.worker_pool();
  ASSERT_NE(pool, nullptr);
  ASSERT_EQ(::kill(pool->worker_pid(0), SIGKILL), 0);
  {
    obs::Trace trace;
    ExecutionOptions traced = distributed;
    traced.trace = &trace;
    ExecutionStats stats;
    auto actual = executor.Execute(plan, traced, &stats);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_NO_FATAL_FAILURE(ExpectTablesEqual(*expected, *actual));
    EXPECT_GE(stats.worker_restarts, 1);
    const std::vector<obs::TraceSpan> spans = trace.Snapshot();
    EXPECT_FALSE(spans_named(spans, "exchange.retry").empty())
        << trace.RenderTree();
  }

  // --fault=die on every worker (respawns inherit the flag): the retry
  // dies too, so the partition's trace ends in local_fallback.
  {
    PlanExecutor faulty(&catalog_, &cache_);
    obs::Trace trace;
    ExecutionOptions traced = DistributedOptions(2, {"--fault=die"});
    traced.trace = &trace;
    ExecutionStats stats;
    auto actual = faulty.Execute(plan, traced, &stats);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ASSERT_NO_FATAL_FAILURE(ExpectTablesEqual(*expected, *actual));
    const std::vector<obs::TraceSpan> spans = trace.Snapshot();
    EXPECT_FALSE(spans_named(spans, "exchange.retry").empty())
        << trace.RenderTree();
    EXPECT_FALSE(spans_named(spans, "local_fallback").empty())
        << trace.RenderTree();
  }
}

TEST_F(WorkerPoolTest, PoolExecutesHandBuiltFragment) {
  // Drive WorkerPool directly (no PlanExecutor): encode a filter-over-scan
  // fragment plus a table slice, ship it, and reassemble the chunk stream.
  WorkerPool pool;
  WorkerPoolOptions options;
  options.num_workers = 1;
  ASSERT_TRUE(pool.Start(options).ok());

  auto fragment = ir::IrNode::Filter(
      ir::IrNode::TableScan("patients"),
      relational::Gt(relational::Col("age"), relational::Lit(50.0)));
  BinaryWriter plan_writer;
  ASSERT_TRUE(ir::SerializeFragment(*fragment, &plan_writer).ok());

  const relational::Table* patients =
      catalog_.GetTable("patients").value();
  FragmentRequest request;
  request.plan_bytes = plan_writer.Release();
  request.table_name = "patients";
  request.range_begin = 100;
  request.range_end = 400;
  BinaryWriter table_writer;
  patients->SliceRows(100, 400).Serialize(&table_writer);
  request.table_bytes = table_writer.Release();

  auto result = pool.ExecuteFragment(0, EncodeFragmentRequest(request));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto table = result->ToTable();
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  auto local = ExecuteFragmentLocally(request, &cache_);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  ASSERT_NO_FATAL_FAILURE(ExpectTablesEqual(*local, *table));
  EXPECT_GT(table->num_rows(), 0);  // slice of 300 rows, some over 50
}

TEST_F(WorkerPoolTest, ExplainReportsDistributedCost) {
  RavenOptions options;
  options.execution.mode = ExecutionMode::kDistributed;
  options.execution.distributed_workers = 4;
  RavenContext ctx(options);
  ASSERT_TRUE(ctx.RegisterTable("patients", hospital_.joined).ok());
  auto trained = data::TrainHospitalTree(hospital_, 4);
  ASSERT_TRUE(trained.ok());
  ASSERT_TRUE(
      ctx.InsertModel("los", data::HospitalTreeScript(), *trained).ok());
  auto explain = ctx.Explain(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > 5");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("distributed(workers=4)"), std::string::npos)
      << *explain;
}

}  // namespace
}  // namespace raven::runtime
