#include "runtime/worker_protocol.h"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace raven::runtime {

namespace {

/// Version byte of the kExecuteFragment payload, bumped on layout changes
/// so mixed-version engine/worker pairs fail with a parse error instead of
/// misreading each other. v2 added trace propagation: a trace-enabled flag
/// plus the coordinator's exchange span id in the request, and the
/// worker-side span tree in the kDone frame.
constexpr std::uint8_t kFragmentProtocolVersion = 2;

}  // namespace

std::string EncodeRequest(const ScoreRequest& request) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(request.command));
  writer.WriteString(request.model_bytes);
  request.input.Serialize(&writer);
  return writer.Release();
}

Result<ScoreRequest> DecodeRequest(const std::string& payload) {
  BinaryReader reader(payload);
  ScoreRequest request;
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t command, reader.ReadU8());
  if (command == static_cast<std::uint8_t>(WorkerCommand::kExecuteFragment)) {
    return Status::ParseError(
        "fragment payloads decode via DecodeFragmentRequest");
  }
  if (command > static_cast<std::uint8_t>(WorkerCommand::kExecuteFragment)) {
    return Status::ParseError("bad worker command");
  }
  request.command = static_cast<WorkerCommand>(command);
  RAVEN_ASSIGN_OR_RETURN(request.model_bytes, reader.ReadString());
  RAVEN_ASSIGN_OR_RETURN(request.input, Tensor::Deserialize(&reader));
  return request;
}

std::string EncodeResponse(const ScoreResponse& response) {
  BinaryWriter writer;
  writer.WriteBool(response.ok);
  writer.WriteString(response.error);
  response.output.Serialize(&writer);
  return writer.Release();
}

Result<ScoreResponse> DecodeResponse(const std::string& payload) {
  BinaryReader reader(payload);
  ScoreResponse response;
  RAVEN_ASSIGN_OR_RETURN(response.ok, reader.ReadBool());
  RAVEN_ASSIGN_OR_RETURN(response.error, reader.ReadString());
  RAVEN_ASSIGN_OR_RETURN(response.output, Tensor::Deserialize(&reader));
  return response;
}

std::string EncodeFragmentRequest(const FragmentRequest& request) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(WorkerCommand::kExecuteFragment));
  writer.WriteU8(kFragmentProtocolVersion);
  writer.WriteString(request.plan_bytes);
  writer.WriteString(request.table_name);
  writer.WriteI64(request.range_begin);
  writer.WriteI64(request.range_end);
  writer.WriteString(request.table_bytes);
  writer.WriteBool(request.trace_enabled);
  writer.WriteU64(request.trace_id);
  return writer.Release();
}

Result<FragmentRequest> DecodeFragmentRequest(const std::string& payload) {
  BinaryReader reader(payload);
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t command, reader.ReadU8());
  if (command != static_cast<std::uint8_t>(WorkerCommand::kExecuteFragment)) {
    return Status::ParseError("not a fragment request");
  }
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t version, reader.ReadU8());
  if (version != kFragmentProtocolVersion) {
    return Status::ParseError("unsupported fragment protocol version " +
                              std::to_string(version));
  }
  FragmentRequest request;
  RAVEN_ASSIGN_OR_RETURN(request.plan_bytes, reader.ReadString());
  RAVEN_ASSIGN_OR_RETURN(request.table_name, reader.ReadString());
  RAVEN_ASSIGN_OR_RETURN(request.range_begin, reader.ReadI64());
  RAVEN_ASSIGN_OR_RETURN(request.range_end, reader.ReadI64());
  if (request.range_begin < 0 || request.range_end < request.range_begin) {
    return Status::ParseError("bad fragment partition range");
  }
  RAVEN_ASSIGN_OR_RETURN(request.table_bytes, reader.ReadString());
  RAVEN_ASSIGN_OR_RETURN(request.trace_enabled, reader.ReadBool());
  RAVEN_ASSIGN_OR_RETURN(request.trace_id, reader.ReadU64());
  return request;
}

std::string EncodeFragmentChunk(const relational::DataChunk& chunk) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(FragmentEventKind::kChunk));
  writer.WriteStringVector(chunk.names);
  for (const auto& col : chunk.cols) writer.WriteF64Vector(col);
  return writer.Release();
}

std::string EncodeFragmentDone(const std::vector<std::string>& names,
                               std::int64_t rows,
                               const std::string& trace_spans) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(FragmentEventKind::kDone));
  writer.WriteStringVector(names);
  writer.WriteI64(rows);
  writer.WriteString(trace_spans);
  return writer.Release();
}

std::string EncodeFragmentError(const std::string& message) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(FragmentEventKind::kError));
  writer.WriteString(message);
  return writer.Release();
}

Result<FragmentEvent> DecodeFragmentEvent(const std::string& payload) {
  BinaryReader reader(payload);
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t tag, reader.ReadU8());
  if (tag > static_cast<std::uint8_t>(FragmentEventKind::kError)) {
    return Status::ParseError("unknown fragment event kind " +
                              std::to_string(tag));
  }
  FragmentEvent event;
  event.kind = static_cast<FragmentEventKind>(tag);
  switch (event.kind) {
    case FragmentEventKind::kChunk: {
      RAVEN_ASSIGN_OR_RETURN(event.chunk.names, reader.ReadStringVector());
      event.chunk.cols.reserve(event.chunk.names.size());
      for (std::size_t i = 0; i < event.chunk.names.size(); ++i) {
        RAVEN_ASSIGN_OR_RETURN(auto col, reader.ReadF64Vector());
        if (i > 0 && col.size() != event.chunk.cols.front().size()) {
          return Status::ParseError("ragged fragment chunk columns");
        }
        event.chunk.cols.push_back(std::move(col));
      }
      return event;
    }
    case FragmentEventKind::kDone: {
      RAVEN_ASSIGN_OR_RETURN(event.result_names, reader.ReadStringVector());
      RAVEN_ASSIGN_OR_RETURN(event.result_rows, reader.ReadI64());
      if (event.result_rows < 0) {
        return Status::ParseError("negative fragment row count");
      }
      RAVEN_ASSIGN_OR_RETURN(event.trace_spans, reader.ReadString());
      return event;
    }
    case FragmentEventKind::kError: {
      RAVEN_ASSIGN_OR_RETURN(event.error, reader.ReadString());
      return event;
    }
  }
  return Status::ParseError("unreachable fragment event kind");
}

Status WriteFrame(int fd, const std::string& payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char header[4];
  std::memcpy(header, &len, 4);
  std::string framed(header, 4);
  framed += payload;
  std::size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("worker pipe write failed: " +
                             std::string(std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

namespace {

/// Reads exactly `len` bytes, retrying on EINTR and looping over short
/// reads. A non-negative timeout is a TOTAL budget for the whole read,
/// not a per-byte re-arm: a peer dripping one byte per poll window (a
/// slow-loris client, or a wedged worker that twitches occasionally)
/// still trips the deadline instead of pinning the reader forever.
Status ReadFull(int fd, char* buf, std::size_t len, int timeout_millis) {
  std::size_t got = 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(timeout_millis >= 0 ? timeout_millis : 0);
  while (got < len) {
    if (timeout_millis >= 0) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int ready =
          remaining > 0 ? ::poll(&pfd, 1, static_cast<int>(remaining)) : 0;
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("worker pipe poll failed: " +
                               std::string(std::strerror(errno)));
      }
      if (ready == 0) {
        return Status::IoError("worker pipe read timed out after " +
                               std::to_string(timeout_millis) + "ms");
      }
    }
    const ssize_t n = ::read(fd, buf + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("worker pipe read failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IoError("worker pipe closed unexpectedly");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFrame(int fd, int timeout_millis,
                              std::uint32_t max_frame_bytes) {
  char header[4];
  RAVEN_RETURN_IF_ERROR(ReadFull(fd, header, 4, timeout_millis));
  std::uint32_t len = 0;
  std::memcpy(&len, header, 4);
  if (len > max_frame_bytes) {
    return Status::OutOfRange(
        "frame of " + std::to_string(len) + " bytes exceeds the " +
        std::to_string(max_frame_bytes) + "-byte cap");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    RAVEN_RETURN_IF_ERROR(
        ReadFull(fd, payload.data(), len, timeout_millis));
  }
  return payload;
}

}  // namespace raven::runtime
