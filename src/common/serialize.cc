#include "common/serialize.h"

namespace raven {

Status BinaryReader::ReadRaw(void* out, std::size_t n) {
  if (pos_ + n > size_) {
    return Status::OutOfRange("binary buffer truncated: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(size_ - pos_));
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<std::uint8_t> BinaryReader::ReadU8() {
  std::uint8_t v;
  RAVEN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<std::uint32_t> BinaryReader::ReadU32() {
  std::uint32_t v;
  RAVEN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<std::uint64_t> BinaryReader::ReadU64() {
  std::uint64_t v;
  RAVEN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<std::int32_t> BinaryReader::ReadI32() {
  std::int32_t v;
  RAVEN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<std::int64_t> BinaryReader::ReadI64() {
  std::int64_t v;
  RAVEN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<double> BinaryReader::ReadF64() {
  double v;
  RAVEN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<float> BinaryReader::ReadF32() {
  float v;
  RAVEN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<bool> BinaryReader::ReadBool() {
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t v, ReadU8());
  return v != 0;
}

Result<std::string> BinaryReader::ReadString() {
  RAVEN_ASSIGN_OR_RETURN(std::uint32_t n, ReadU32());
  if (pos_ + n > size_) {
    return Status::OutOfRange("string length exceeds buffer");
  }
  std::string s(data_ + pos_, n);
  pos_ += n;
  return s;
}

namespace {

template <typename T, typename ReaderFn>
Result<std::vector<T>> ReadPodVector(BinaryReader* reader, ReaderFn read_one) {
  auto n_result = reader->ReadU64();
  if (!n_result.ok()) return n_result.status();
  const std::uint64_t n = n_result.value();
  // Sanity bound: refuse absurd element counts from corrupt buffers.
  if (n > (1ULL << 33)) {
    return Status::OutOfRange("vector length implausibly large");
  }
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    auto v = read_one();
    if (!v.ok()) return v.status();
    out.push_back(std::move(v).value());
  }
  return out;
}

}  // namespace

Result<std::vector<double>> BinaryReader::ReadF64Vector() {
  return ReadPodVector<double>(this, [this] { return ReadF64(); });
}

Result<std::vector<float>> BinaryReader::ReadF32Vector() {
  return ReadPodVector<float>(this, [this] { return ReadF32(); });
}

Result<std::vector<std::int32_t>> BinaryReader::ReadI32Vector() {
  return ReadPodVector<std::int32_t>(this, [this] { return ReadI32(); });
}

Result<std::vector<std::int64_t>> BinaryReader::ReadI64Vector() {
  return ReadPodVector<std::int64_t>(this, [this] { return ReadI64(); });
}

Result<std::vector<std::string>> BinaryReader::ReadStringVector() {
  return ReadPodVector<std::string>(this, [this] { return ReadString(); });
}

}  // namespace raven
