#include <gtest/gtest.h>

#include "data/flight.h"
#include "data/hospital.h"
#include "frontend/analyzer.h"
#include "ir/ir.h"
#include "optimizer/converters.h"
#include "optimizer/cost_model.h"
#include "optimizer/cross_optimizer.h"
#include "optimizer/rules.h"
#include "optimizer/specialize.h"
#include "relational/statistics.h"
#include "relational/operators.h"
#include "runtime/plan_executor.h"
#include "test_util.h"

namespace raven::optimizer {
namespace {

using ir::IrNode;
using ir::IrNodePtr;
using ir::IrOpKind;
using ir::IrPlan;

class HospitalFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = data::MakeHospitalDataset(4000, 21);
    ASSERT_NO_FATAL_FAILURE(test_util::RegisterHospitalTables(&catalog_, data_));
    tree_pipeline_ = test_util::InsertHospitalTreeModel(&catalog_, data_, 8);
    ASSERT_FALSE(HasFailure()) << "fixture setup failed";
  }

  /// Analyzes the paper's running-example query.
  IrPlan RunningExamplePlan() {
    return test_util::AnalyzePlan(catalog_, test_util::RunningExampleSql());
  }

  /// Executes a plan in-process and returns the table.
  relational::Table Run(const IrPlan& plan) {
    nnrt::SessionCache cache(8);
    runtime::PlanExecutor executor(&catalog_, &cache);
    auto result = executor.Execute(plan, runtime::ExecutionOptions());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  data::HospitalDataset data_;
  relational::Catalog catalog_;
  ml::ModelPipeline tree_pipeline_;
};

const ml::DecisionTree& TreeOf(const ml::ModelPipeline& pipeline) {
  return std::get<ml::DecisionTree>(pipeline.predictor);
}

TEST_F(HospitalFixture, PredicatePushdownSinksBelowModel) {
  IrPlan plan = RunningExamplePlan();
  auto fired = *ApplyPredicatePushdown(&plan.mutable_root(), catalog_);
  EXPECT_GT(fired, 0u);
  ASSERT_TRUE(plan.Validate(catalog_).ok());
  // pregnant=1 must now sit below the model node; length_of_stay>7 stays
  // above (it reads the prediction).
  EXPECT_TRUE(test_util::FilterBelowModelMentions(plan.root(), "pregnant"));
  EXPECT_TRUE(test_util::FilterMentions(plan.root(), "length_of_stay"));
  EXPECT_FALSE(
      test_util::FilterBelowModelMentions(plan.root(), "length_of_stay"));
}

TEST_F(HospitalFixture, PredicateModelPruningShrinksTree) {
  IrPlan plan = RunningExamplePlan();
  (void)*ApplyPredicatePushdown(&plan.mutable_root(), catalog_);
  const std::int64_t nodes_before = TreeOf(tree_pipeline_).num_nodes();
  auto fired = *ApplyPredicateModelPruning(&plan.mutable_root());
  EXPECT_EQ(fired, 1u);
  ir::VisitIr(plan.root(), [&](const IrNode* node) {
    if (node->kind == IrOpKind::kModelPipeline) {
      EXPECT_LT(TreeOf(*node->pipeline).num_nodes(), nodes_before);
    }
  });
  ASSERT_TRUE(plan.Validate(catalog_).ok());
}

TEST_F(HospitalFixture, PruningPreservesSemantics) {
  IrPlan reference = RunningExamplePlan();
  IrPlan optimized = RunningExamplePlan();
  (void)*ApplyPredicatePushdown(&optimized.mutable_root(), catalog_);
  (void)*ApplyPredicateModelPruning(&optimized.mutable_root());
  relational::Table expected = Run(reference);
  relational::Table actual = Run(optimized);
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  for (const char* col : {"id", "length_of_stay"}) {
    EXPECT_EQ((*expected.GetColumn(col))->data, (*actual.GetColumn(col))->data)
        << col;
  }
}

TEST_F(HospitalFixture, JoinEliminationAfterPruning) {
  // The pruned model (pregnant=1 branch removed? no — kept) may not need
  // prenatal columns once gender-style features drop. Force the situation
  // with a model that ignores prenatal columns entirely.
  ml::ModelPipeline narrow;
  narrow.input_columns = {"age", "bp"};
  ml::LinearModel lin(ml::LinearKind::kRegression);
  lin.SetParams({0.1, 0.05}, 0.0);
  narrow.predictor = std::move(lin);
  ASSERT_TRUE(catalog_.InsertModel(
      "narrow",
      "model_pipeline = Pipeline([('clf', LinearRegression())])",
      narrow.ToBytes()).ok());
  frontend::StaticAnalyzer analyzer(&catalog_);
  auto plan = std::move(analyzer.Analyze(
      "WITH data AS (SELECT * FROM patient_info AS pi "
      "  JOIN blood_tests AS bt ON pi.id = bt.id "
      "  JOIN prenatal_tests AS pt ON bt.id = pt.id) "
      "SELECT id, pred FROM PREDICT(MODEL='narrow', DATA=data) "
      "WITH(pred float)")).value();
  EXPECT_EQ(plan.CountKind(IrOpKind::kJoin), 2u);
  auto fired = *ApplyJoinElimination(&plan.mutable_root(), catalog_);
  EXPECT_GE(fired, 1u);
  // prenatal_tests provides nothing: its join disappears.
  EXPECT_EQ(plan.CountKind(IrOpKind::kJoin), 1u);
  ASSERT_TRUE(plan.Validate(catalog_).ok());
}

TEST_F(HospitalFixture, ProjectionPushdownNarrowsScans) {
  frontend::StaticAnalyzer analyzer(&catalog_);
  auto plan = std::move(analyzer.Analyze(
      "SELECT id, pred FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(pred float)")).value();
  auto fired = *ApplyProjectionPushdown(&plan.mutable_root(), catalog_);
  EXPECT_GE(fired, 1u);
  // The scan must now be wrapped in a Project that drops length_of_stay
  // (the label column is not a model input).
  bool narrowed = false;
  ir::VisitIr(plan.root(), [&](const IrNode* node) {
    if (node->kind == IrOpKind::kProject) {
      bool has_label = false;
      for (const auto& name : node->proj_names) {
        if (name == "length_of_stay") has_label = true;
      }
      if (!has_label && !node->children.empty() &&
          node->children[0]->kind == IrOpKind::kTableScan) {
        narrowed = true;
      }
    }
  });
  EXPECT_TRUE(narrowed);
  ASSERT_TRUE(plan.Validate(catalog_).ok());
}

TEST_F(HospitalFixture, ModelInliningProducesCaseProjection) {
  frontend::StaticAnalyzer analyzer(&catalog_);
  auto plan = std::move(analyzer.Analyze(
      "SELECT id, pred FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(pred float)")).value();
  IrPlan reference = plan.Clone();
  auto fired = *ApplyModelInlining(&plan.mutable_root(), catalog_, 4096);
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(plan.CountKind(IrOpKind::kModelPipeline), 0u);
  ASSERT_TRUE(plan.Validate(catalog_).ok());
  // Semantics: inlined CASE expression equals interpreted tree (float32
  // rounding tolerance because the expression engine computes in double).
  relational::Table expected = Run(reference);
  relational::Table actual = Run(plan);
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  const auto& e = (*expected.GetColumn("pred"))->data;
  const auto& a = (*actual.GetColumn("pred"))->data;
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_NEAR(e[i], a[i], 1e-3) << "row " << i;
  }
}

TEST_F(HospitalFixture, InliningRespectsSizeBudget) {
  frontend::StaticAnalyzer analyzer(&catalog_);
  auto plan = std::move(analyzer.Analyze(
      "SELECT * FROM PREDICT(MODEL='los', DATA=patients)")).value();
  auto fired = *ApplyModelInlining(&plan.mutable_root(), catalog_, 1);
  EXPECT_EQ(fired, 0u);  // tree bigger than 1 node: not inlined
}

TEST_F(HospitalFixture, NnTranslationTreeGemmEquivalence) {
  // The LA lowering of the tree must agree exactly with the interpreted
  // tree on real data — the core NN-translation correctness property.
  NnTranslationOptions options;
  options.lower_trees_to_gemm = true;
  nnrt::Graph graph = *PipelineToNnGraph(tree_pipeline_, options);
  auto session = std::move(nnrt::InferenceSession::Create(graph)).value();
  Tensor x = *data_.joined.ToTensor(tree_pipeline_.input_columns);
  Tensor expected = *tree_pipeline_.Predict(x);
  Tensor actual = *session->RunSingle(x);
  EXPECT_TRUE(expected.AllClose(actual, 1e-4f));
  EXPECT_GT(graph.CountOps("MatMul") + graph.CountOps("Gemm"), 0u);
  EXPECT_EQ(graph.CountOps("TreeEnsemble"), 0u);
}

TEST_F(HospitalFixture, NnTranslationTreeEnsembleOpEquivalence) {
  NnTranslationOptions options;
  options.lower_trees_to_gemm = false;
  nnrt::Graph graph = *PipelineToNnGraph(tree_pipeline_, options);
  EXPECT_EQ(graph.CountOps("TreeEnsemble"), 1u);
  auto session = std::move(nnrt::InferenceSession::Create(graph)).value();
  Tensor x = *data_.joined.ToTensor(tree_pipeline_.input_columns);
  EXPECT_TRUE(
      (*tree_pipeline_.Predict(x)).AllClose(*session->RunSingle(x), 1e-4f));
}

TEST_F(HospitalFixture, NnTranslationForestAndMlp) {
  auto forest_pipeline = *data::TrainHospitalForest(data_, 5, 5);
  nnrt::Graph fg = *PipelineToNnGraph(forest_pipeline);
  auto fs = std::move(nnrt::InferenceSession::Create(fg)).value();
  Tensor x = *data_.joined.ToTensor(forest_pipeline.input_columns);
  EXPECT_TRUE(
      (*forest_pipeline.Predict(x)).AllClose(*fs->RunSingle(x), 1e-3f));

  auto mlp_pipeline = *data::TrainHospitalMlp(data_);
  nnrt::Graph mg = *PipelineToNnGraph(mlp_pipeline);
  auto ms = std::move(nnrt::InferenceSession::Create(mg)).value();
  EXPECT_TRUE((*mlp_pipeline.Predict(x)).AllClose(*ms->RunSingle(x), 1e-3f));
}

TEST_F(HospitalFixture, ModelQuerySplittingProducesUnion) {
  frontend::StaticAnalyzer analyzer(&catalog_);
  auto plan = std::move(analyzer.Analyze(
      "SELECT id, pred FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(pred float)")).value();
  IrPlan reference = plan.Clone();
  auto fired = *ApplyModelQuerySplitting(&plan.mutable_root());
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(plan.CountKind(IrOpKind::kUnionAll), 1u);
  EXPECT_EQ(plan.CountKind(IrOpKind::kModelPipeline), 2u);
  ASSERT_TRUE(plan.Validate(catalog_).ok());
  // Semantics preserved modulo row order: compare sorted predictions.
  relational::Table expected = Run(reference);
  relational::Table actual = Run(plan);
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  auto e = (*expected.GetColumn("pred"))->data;
  auto a = (*actual.GetColumn("pred"))->data;
  std::sort(e.begin(), e.end());
  std::sort(a.begin(), a.end());
  for (std::size_t i = 0; i < e.size(); ++i) EXPECT_NEAR(e[i], a[i], 1e-5);
}

TEST(FlightSpecializeTest, ZeroWeightProjectionDropsFeatures) {
  auto data = data::MakeFlightDataset(4000, 22);
  auto pipeline = *data::TrainFlightLogreg(data, 0.02);
  const auto& linear = std::get<ml::LinearModel>(pipeline.predictor);
  ASSERT_GT(linear.Sparsity(), 0.2);
  auto result = *ProjectUnusedFeatures(pipeline);
  ASSERT_TRUE(result.changed);
  EXPECT_LT(result.features_after, result.features_before);
  // Equivalence on fresh data.
  auto fresh = data::MakeFlightDataset(500, 23);
  Tensor x_full = *fresh.flights.ToTensor(pipeline.input_columns);
  Tensor x_kept = *fresh.flights.ToTensor(result.kept_inputs);
  Tensor expected = *pipeline.Predict(x_full);
  Tensor actual = *result.pipeline.Predict(x_kept);
  EXPECT_TRUE(expected.AllClose(actual, 1e-5f));
}

TEST(FlightSpecializeTest, CategoricalPredicateFoldsOneHotBlock) {
  auto data = data::MakeFlightDataset(4000, 24);
  auto pipeline = *data::TrainFlightLogreg(data, 0.0);
  const std::int64_t features_before = pipeline.NumFeatures();
  // dest = code 5 fixes the whole dest one-hot block.
  auto result = *PruneWithPredicates(
      pipeline, {relational::SimplePredicate{
                    "dest", relational::CompareOp::kEq, 5.0}});
  ASSERT_TRUE(result.changed);
  // The dest block (num_airports features) folds into the bias.
  EXPECT_EQ(result.features_after, features_before - data.num_airports);
  // 'dest' no longer a raw input.
  for (const auto& name : result.kept_inputs) EXPECT_NE(name, "dest");
  // Equivalence on rows satisfying the predicate.
  auto fresh = data::MakeFlightDataset(2000, 25);
  Tensor x_full = *fresh.flights.ToTensor(pipeline.input_columns);
  Tensor x_kept = *fresh.flights.ToTensor(result.kept_inputs);
  Tensor expected = *pipeline.Predict(x_full);
  Tensor actual = *result.pipeline.Predict(x_kept);
  const auto dest = fresh.flights.GetColumn("dest");
  for (std::int64_t i = 0; i < x_full.dim(0); ++i) {
    if ((*dest)->data[static_cast<std::size_t>(i)] == 5.0) {
      EXPECT_NEAR(expected.raw()[i], actual.raw()[i], 1e-5f);
    }
  }
}

TEST(SpecializeTest, NoPredicatesNoChange) {
  auto data = data::MakeHospitalDataset(500, 26);
  auto pipeline = *data::TrainHospitalTree(data, 4);
  auto result = *PruneWithPredicates(pipeline, {});
  EXPECT_FALSE(result.changed);
  auto result2 = *PruneWithPredicates(
      pipeline, {relational::SimplePredicate{
                    "not_a_column", relational::CompareOp::kEq, 1.0}});
  EXPECT_FALSE(result2.changed);
}

TEST_F(HospitalFixture, CostModelOrdersPlansSensibly) {
  frontend::StaticAnalyzer analyzer(&catalog_);
  auto plan = std::move(analyzer.Analyze(
      "SELECT id, pred FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(pred float) WHERE pregnant = 1")).value();
  PlanCost before = *EstimateCost(*plan.root(), catalog_);
  IrPlan optimized = plan.Clone();
  (void)*ApplyPredicatePushdown(&optimized.mutable_root(), catalog_);
  (void)*ApplyPredicateModelPruning(&optimized.mutable_root());
  PlanCost after = *EstimateCost(*optimized.root(), catalog_);
  EXPECT_LT(after.total_cost, before.total_cost);
  EXPECT_GT(before.output_rows, 0.0);
}

TEST_F(HospitalFixture, CrossOptimizerEndToEndRunningExample) {
  CrossOptimizer optimizer(&catalog_, OptimizerOptions());
  IrPlan plan = RunningExamplePlan();
  IrPlan reference = plan.Clone();
  OptimizationReport report;
  ASSERT_TRUE(optimizer.Optimize(&plan, &report).ok());
  EXPECT_GT(report.TotalApplications(), 0u);
  EXPECT_NE(report.before, report.after);
  // The tree is small: it must be inlined, leaving no model nodes.
  EXPECT_EQ(plan.CountKind(IrOpKind::kModelPipeline), 0u);
  // Semantics preserved end to end.
  relational::Table expected = Run(reference);
  relational::Table actual = Run(plan);
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  const auto& e = (*expected.GetColumn("length_of_stay"))->data;
  const auto& a = (*actual.GetColumn("length_of_stay"))->data;
  for (std::size_t i = 0; i < e.size(); ++i) EXPECT_NEAR(e[i], a[i], 1e-3);
}

TEST_F(HospitalFixture, ClusteringRuleSwapsNode) {
  auto artifact = std::make_shared<ir::ClusteredModel>(*BuildClusteredModel(
      tree_pipeline_, data_.joined, ClusteringOptions{4, 10, 99, {}}));
  CrossOptimizer optimizer(&catalog_, OptimizerOptions());
  optimizer.RegisterClusteredModel("los", artifact);
  frontend::StaticAnalyzer analyzer(&catalog_);
  auto plan = std::move(analyzer.Analyze(
      "SELECT id, pred FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(pred float)")).value();
  IrPlan reference = plan.Clone();
  ASSERT_TRUE(optimizer.Optimize(&plan).ok());
  EXPECT_EQ(plan.CountKind(IrOpKind::kClusteredPredict), 1u);
  relational::Table expected = Run(reference);
  relational::Table actual = Run(plan);
  EXPECT_EQ((*expected.GetColumn("pred"))->data,
            (*actual.GetColumn("pred"))->data);
}

TEST_F(HospitalFixture, OptionsDisableRules) {
  OptimizerOptions options;
  options.predicate_pushdown = false;
  options.predicate_model_pruning = false;
  options.model_projection_pushdown = false;
  options.projection_pushdown = false;
  options.join_elimination = false;
  options.model_inlining = false;
  options.nn_translation = false;
  CrossOptimizer optimizer(&catalog_, options);
  IrPlan plan = RunningExamplePlan();
  const std::string before = plan.ToString();
  OptimizationReport report;
  ASSERT_TRUE(optimizer.Optimize(&plan, &report).ok());
  EXPECT_EQ(report.TotalApplications(), 0u);
  EXPECT_EQ(plan.ToString(), before);
}

}  // namespace
}  // namespace raven::optimizer

// ---------------------------------------------------------------------------
// Data-property-derived pruning and lossy projection (paper §4.1 variants).
// These live outside the fixture namespace edits above; re-open the
// namespaces.
// ---------------------------------------------------------------------------

namespace raven::optimizer {
namespace {

TEST(DataPropertyPruningTest, StatsDerivePredicates) {
  // Register a table where every patient is over 35 and none are pregnant:
  // the rule must specialize the tree exactly as explicit predicates would.
  auto data = data::MakeHospitalDataset(4000, 31);
  auto pipeline = *data::TrainHospitalTree(data, 8);

  relational::Catalog catalog;
  // Filter the joined table to age > 35, pregnant = 0.
  relational::Table old_only;
  {
    const auto& src = data.joined;
    const auto& age = (*src.GetColumn("age"))->data;
    const auto& pregnant = (*src.GetColumn("pregnant"))->data;
    std::vector<std::int64_t> keep;
    for (std::size_t i = 0; i < age.size(); ++i) {
      if (age[i] > 35.0 && pregnant[i] == 0.0) {
        keep.push_back(static_cast<std::int64_t>(i));
      }
    }
    for (const auto& col : src.columns()) {
      std::vector<double> vals;
      vals.reserve(keep.size());
      for (std::int64_t i : keep) {
        vals.push_back(col.data[static_cast<std::size_t>(i)]);
      }
      ASSERT_TRUE(old_only.AddNumericColumn(col.name, std::move(vals)).ok());
    }
  }
  ASSERT_TRUE(catalog.RegisterTable("patients", old_only).ok());
  ASSERT_TRUE(catalog.InsertModel("los", data::HospitalTreeScript(),
                                  pipeline.ToBytes()).ok());

  frontend::StaticAnalyzer analyzer(&catalog);
  auto plan = std::move(analyzer.Analyze(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(p float)")).value();
  ir::IrPlan reference = plan.Clone();

  const std::int64_t nodes_before =
      std::get<ml::DecisionTree>(pipeline.predictor).num_nodes();
  auto fired = *ApplyDataPropertyPruning(&plan.mutable_root(), catalog);
  EXPECT_EQ(fired, 1u);
  std::int64_t nodes_after = nodes_before;
  ir::VisitIr(plan.root(), [&](const ir::IrNode* node) {
    if (node->kind == ir::IrOpKind::kModelPipeline) {
      nodes_after =
          std::get<ml::DecisionTree>(node->pipeline->predictor).num_nodes();
    }
  });
  EXPECT_LT(nodes_after, nodes_before);

  // Semantics: identical predictions on this table.
  nnrt::SessionCache cache(4);
  runtime::PlanExecutor executor(&catalog, &cache);
  auto expected = *executor.Execute(reference, runtime::ExecutionOptions());
  auto actual = *executor.Execute(plan, runtime::ExecutionOptions());
  EXPECT_EQ((*expected.GetColumn("p"))->data, (*actual.GetColumn("p"))->data);
}

TEST(DataPropertyPruningTest, NoStatsNoChange) {
  // Full-range data: min/max predicates exist but prune nothing... or
  // little; the rule must at minimum keep the plan valid and semantics
  // intact.
  auto data = data::MakeHospitalDataset(2000, 32);
  auto pipeline = *data::TrainHospitalTree(data, 6);
  relational::Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("patients", data.joined).ok());
  ASSERT_TRUE(catalog.InsertModel("los", data::HospitalTreeScript(),
                                  pipeline.ToBytes()).ok());
  frontend::StaticAnalyzer analyzer(&catalog);
  auto plan = std::move(analyzer.Analyze(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(p float)")).value();
  ir::IrPlan reference = plan.Clone();
  (void)*ApplyDataPropertyPruning(&plan.mutable_root(), catalog);
  ASSERT_TRUE(plan.Validate(catalog).ok());
  nnrt::SessionCache cache(4);
  runtime::PlanExecutor executor(&catalog, &cache);
  auto expected = *executor.Execute(reference, runtime::ExecutionOptions());
  auto actual = *executor.Execute(plan, runtime::ExecutionOptions());
  EXPECT_EQ((*expected.GetColumn("p"))->data, (*actual.GetColumn("p"))->data);
}

TEST(LossyProjectionTest, TradesAccuracyForFeatures) {
  auto data = data::MakeFlightDataset(4000, 33);
  auto pipeline = *data::TrainFlightLogreg(data, 0.0);  // dense model
  relational::Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("flights", data.flights).ok());
  ASSERT_TRUE(catalog.InsertModel("delay", data::FlightLogregScript(),
                                  pipeline.ToBytes()).ok());
  frontend::StaticAnalyzer analyzer(&catalog);
  auto plan = std::move(analyzer.Analyze(
      "SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) "
      "WITH(p float)")).value();
  ir::IrPlan reference = plan.Clone();
  auto fired = *ApplyLossyProjection(&plan.mutable_root(), 0.05);
  EXPECT_EQ(fired, 1u);
  std::int64_t features_after = pipeline.NumFeatures();
  ir::VisitIr(plan.root(), [&](const ir::IrNode* node) {
    if (node->kind == ir::IrOpKind::kModelPipeline) {
      features_after = node->pipeline->NumFeatures();
    }
  });
  EXPECT_LT(features_after, pipeline.NumFeatures());
  // Predictions drift, but stay within a loose bound for small weights.
  nnrt::SessionCache cache(4);
  runtime::PlanExecutor executor(&catalog, &cache);
  auto expected = *executor.Execute(reference, runtime::ExecutionOptions());
  auto actual = *executor.Execute(plan, runtime::ExecutionOptions());
  const auto& e = (*expected.GetColumn("p"))->data;
  const auto& a = (*actual.GetColumn("p"))->data;
  double max_err = 0;
  for (std::size_t i = 0; i < e.size(); ++i) {
    max_err = std::max(max_err, std::abs(e[i] - a[i]));
  }
  EXPECT_GT(max_err, 0.0);   // it IS lossy
  EXPECT_LT(max_err, 0.15);  // but bounded
}

TEST(LossyProjectionTest, ZeroThresholdIsNoop) {
  auto data = data::MakeFlightDataset(500, 34);
  auto pipeline = *data::TrainFlightLogreg(data, 0.0);
  relational::Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("flights", data.flights).ok());
  ASSERT_TRUE(catalog.InsertModel("delay", data::FlightLogregScript(),
                                  pipeline.ToBytes()).ok());
  frontend::StaticAnalyzer analyzer(&catalog);
  auto plan = std::move(analyzer.Analyze(
      "SELECT id FROM PREDICT(MODEL='delay', DATA=flights)")).value();
  EXPECT_EQ(*ApplyLossyProjection(&plan.mutable_root(), 0.0), 0u);
}

TEST(ValueSetRestrictionTest, DropsAbsentOneHotCodes) {
  auto data = data::MakeFlightDataset(3000, 35);
  auto pipeline = *data::TrainFlightLogreg(data, 0.0);
  // Restrict dest (input column 5) to codes {1, 2, 3}.
  auto result = *RestrictToValueSets(pipeline, {{5, {1.0, 2.0, 3.0}}});
  ASSERT_TRUE(result.changed);
  EXPECT_EQ(result.features_after,
            result.features_before - (data.num_airports - 3));
  // Exact agreement on rows whose dest is in the set.
  Tensor x = *data.flights.ToTensor(pipeline.input_columns);
  Tensor expected = *pipeline.Predict(x);
  Tensor actual = *result.pipeline.Predict(x);
  const auto& dest = (*data.flights.GetColumn("dest"))->data;
  for (std::int64_t i = 0; i < x.dim(0); ++i) {
    const double v = dest[static_cast<std::size_t>(i)];
    if (v == 1.0 || v == 2.0 || v == 3.0) {
      EXPECT_NEAR(expected.raw()[i], actual.raw()[i], 1e-5f);
    }
  }
}

TEST(ValueSetRestrictionTest, ClusteringShrinksModels) {
  // With value-set restriction, clustered flight models must have strictly
  // fewer features than the original (each cluster sees a subset of
  // airports), while staying semantically exact via the fallback check.
  auto data = data::MakeFlightDataset(5000, 36);
  auto pipeline = *data::TrainFlightLogreg(data, 0.0);
  ClusteringOptions options;
  options.k = 8;
  auto clustered = *BuildClusteredModel(pipeline, data.flights, options);
  bool any_smaller = false;
  for (const auto& m : clustered.cluster_models) {
    if (m.NumFeatures() < pipeline.NumFeatures()) any_smaller = true;
  }
  EXPECT_TRUE(any_smaller);
  Tensor x = *data.flights.ToTensor(pipeline.input_columns);
  Tensor expected = *pipeline.Predict(x);
  Tensor actual = *clustered.Predict(x);
  EXPECT_TRUE(expected.AllClose(actual, 1e-5f));
}

TEST(ColumnStatsTest, Basics) {
  relational::Column col;
  col.name = "x";
  col.data = {3.0, 1.0, 2.0, 3.0};
  auto stats = relational::ComputeColumnStats(col);
  EXPECT_EQ(stats.min, 1.0);
  EXPECT_EQ(stats.max, 3.0);
  EXPECT_EQ(stats.distinct, 3);
  EXPECT_FALSE(stats.constant.has_value());
  relational::Column constant;
  constant.name = "c";
  constant.data = {7.0, 7.0};
  auto cstats = relational::ComputeColumnStats(constant);
  ASSERT_TRUE(cstats.constant.has_value());
  EXPECT_EQ(*cstats.constant, 7.0);
}

}  // namespace
}  // namespace raven::optimizer
