#include "nnrt/graph_optimizer.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "nnrt/kernels.h"

namespace raven::nnrt {
namespace {

/// Evaluates nodes whose inputs are all initializers; their outputs become
/// initializers and the node is dropped.
Result<std::size_t> FoldConstants(Graph* graph) {
  std::size_t folded = 0;
  RAVEN_ASSIGN_OR_RETURN(auto order, graph->TopologicalOrder());
  auto& inits = graph->mutable_initializers();
  std::unordered_set<std::string> runtime_inputs(graph->inputs().begin(),
                                                 graph->inputs().end());
  std::vector<bool> remove(graph->nodes().size(), false);
  for (std::size_t idx : order) {
    Node& node = graph->mutable_nodes()[idx];
    if (node.op_type == "Identity") continue;  // Handled separately.
    bool all_const = !node.inputs.empty();
    for (const auto& in : node.inputs) {
      if (runtime_inputs.count(in) > 0 || inits.find(in) == inits.end()) {
        all_const = false;
        break;
      }
    }
    if (!all_const) continue;
    const Kernel* kernel = FindKernel(node.op_type);
    if (kernel == nullptr) continue;
    KernelContext ctx;
    ctx.node = &node;
    for (const auto& in : node.inputs) ctx.inputs.push_back(&inits.at(in));
    ctx.outputs.resize(node.outputs.size());
    Status st = (*kernel)(&ctx);
    if (!st.ok()) continue;  // Leave the node; runtime will report the error.
    for (std::size_t o = 0; o < node.outputs.size(); ++o) {
      inits[node.outputs[o]] = std::move(ctx.outputs[o]);
    }
    remove[idx] = true;
    ++folded;
  }
  if (folded > 0) {
    std::vector<Node> kept;
    kept.reserve(graph->nodes().size() - folded);
    for (std::size_t i = 0; i < graph->nodes().size(); ++i) {
      if (!remove[i]) kept.push_back(std::move(graph->mutable_nodes()[i]));
    }
    graph->mutable_nodes() = std::move(kept);
  }
  return folded;
}

/// Rewrites consumers of Identity outputs to consume the Identity's input,
/// then drops the Identity nodes (unless they produce a graph output).
std::size_t EliminateIdentities(Graph* graph) {
  std::unordered_map<std::string, std::string> alias;
  std::set<std::string> graph_outputs(graph->outputs().begin(),
                                      graph->outputs().end());
  std::vector<Node> kept;
  std::size_t removed = 0;
  for (auto& node : graph->mutable_nodes()) {
    if (node.op_type == "Identity" && node.inputs.size() == 1 &&
        node.outputs.size() == 1 &&
        graph_outputs.find(node.outputs[0]) == graph_outputs.end()) {
      alias[node.outputs[0]] = node.inputs[0];
      ++removed;
    } else {
      kept.push_back(std::move(node));
    }
  }
  if (removed == 0) {
    // Nodes were moved into `kept`; restore them even when nothing changed.
    graph->mutable_nodes() = std::move(kept);
    return 0;
  }
  auto resolve = [&alias](const std::string& name) {
    std::string cur = name;
    while (true) {
      auto it = alias.find(cur);
      if (it == alias.end()) return cur;
      cur = it->second;
    }
  };
  for (auto& node : kept) {
    for (auto& in : node.inputs) in = resolve(in);
  }
  graph->mutable_nodes() = std::move(kept);
  return removed;
}

/// Fuses MatMul(x, W) followed by Add(y, b) — with b a constant row vector —
/// into a single Gemm(x, W, b).
std::size_t FuseGemm(Graph* graph) {
  // Count consumers per value so we only fuse single-use intermediates.
  std::unordered_map<std::string, int> uses;
  for (const auto& node : graph->nodes()) {
    for (const auto& in : node.inputs) uses[in]++;
  }
  std::set<std::string> graph_outputs(graph->outputs().begin(),
                                      graph->outputs().end());
  std::unordered_map<std::string, std::size_t> producer;
  for (std::size_t i = 0; i < graph->nodes().size(); ++i) {
    for (const auto& out : graph->nodes()[i].outputs) producer[out] = i;
  }
  const auto& inits = graph->initializers();
  std::vector<bool> remove(graph->nodes().size(), false);
  std::size_t fused = 0;
  for (auto& node : graph->mutable_nodes()) {
    if (node.op_type != "Add" || node.inputs.size() != 2) continue;
    // Identify which side is the constant bias.
    int bias_side = -1;
    if (inits.count(node.inputs[1]) > 0) {
      bias_side = 1;
    } else if (inits.count(node.inputs[0]) > 0) {
      bias_side = 0;
    } else {
      continue;
    }
    const std::string& mm_value = node.inputs[bias_side == 1 ? 0 : 1];
    auto pit = producer.find(mm_value);
    if (pit == producer.end()) continue;
    Node& mm = graph->mutable_nodes()[pit->second];
    if (mm.op_type != "MatMul" || remove[pit->second]) continue;
    if (uses[mm_value] != 1 || graph_outputs.count(mm_value) > 0) continue;
    // Rewrite the Add node into a Gemm consuming the MatMul's inputs.
    node.op_type = "Gemm";
    node.inputs = {mm.inputs[0], mm.inputs[1],
                   node.inputs[static_cast<std::size_t>(bias_side)]};
    remove[pit->second] = true;
    ++fused;
  }
  if (fused > 0) {
    std::vector<Node> kept;
    for (std::size_t i = 0; i < graph->nodes().size(); ++i) {
      if (!remove[i]) kept.push_back(std::move(graph->mutable_nodes()[i]));
    }
    graph->mutable_nodes() = std::move(kept);
  }
  return fused;
}

/// Removes nodes whose outputs are not (transitively) needed by any graph
/// output, and initializers that no surviving node consumes.
std::size_t EliminateDeadNodes(Graph* graph) {
  std::unordered_map<std::string, std::size_t> producer;
  for (std::size_t i = 0; i < graph->nodes().size(); ++i) {
    for (const auto& out : graph->nodes()[i].outputs) producer[out] = i;
  }
  std::vector<bool> live(graph->nodes().size(), false);
  std::vector<std::string> frontier = graph->outputs();
  while (!frontier.empty()) {
    const std::string value = frontier.back();
    frontier.pop_back();
    auto it = producer.find(value);
    if (it == producer.end() || live[it->second]) continue;
    live[it->second] = true;
    for (const auto& in : graph->nodes()[it->second].inputs) {
      frontier.push_back(in);
    }
  }
  std::size_t removed = 0;
  std::vector<Node> kept;
  for (std::size_t i = 0; i < graph->nodes().size(); ++i) {
    if (live[i]) {
      kept.push_back(std::move(graph->mutable_nodes()[i]));
    } else {
      ++removed;
    }
  }
  graph->mutable_nodes() = std::move(kept);
  // Drop unused initializers (outputs excepted — an output may be a folded
  // constant).
  std::unordered_set<std::string> used(graph->outputs().begin(),
                                       graph->outputs().end());
  for (const auto& node : graph->nodes()) {
    for (const auto& in : node.inputs) used.insert(in);
  }
  auto& inits = graph->mutable_initializers();
  for (auto it = inits.begin(); it != inits.end();) {
    if (used.find(it->first) == used.end()) {
      it = inits.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace

Status OptimizeGraph(Graph* graph, GraphOptStats* stats) {
  RAVEN_RETURN_IF_ERROR(graph->Validate());
  GraphOptStats local;
  for (int pass = 0; pass < 8; ++pass) {
    const std::size_t identities = EliminateIdentities(graph);
    RAVEN_ASSIGN_OR_RETURN(const std::size_t folded, FoldConstants(graph));
    const std::size_t fused = FuseGemm(graph);
    const std::size_t dead = EliminateDeadNodes(graph);
    local.identities_removed += identities;
    local.constants_folded += folded;
    local.gemms_fused += fused;
    local.dead_nodes_removed += dead;
    if (identities + folded + fused + dead == 0) break;
  }
  RAVEN_RETURN_IF_ERROR(graph->Validate());
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace raven::nnrt
