#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>

#include "nnrt/artifact_cache.h"
#include "nnrt/backend.h"
#include "nnrt/device.h"
#include "nnrt/executor.h"
#include "nnrt/graph.h"
#include "nnrt/graph_optimizer.h"
#include "nnrt/kernels.h"
#include "nnrt/session.h"

namespace raven::nnrt {
namespace {

Node MakeNode(const std::string& op, std::vector<std::string> inputs,
              std::vector<std::string> outputs) {
  Node node;
  node.op_type = op;
  node.name = op + "_" + outputs.front();
  node.inputs = std::move(inputs);
  node.outputs = std::move(outputs);
  return node;
}

Result<Tensor> RunSingleOp(Node node, std::vector<Tensor> inputs) {
  Graph graph;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    graph.AddInput(node.inputs[i]);
  }
  graph.AddOutput(node.outputs[0]);
  TensorMap env;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    env[node.inputs[i]] = std::move(inputs[i]);
  }
  graph.AddNode(std::move(node));
  RAVEN_ASSIGN_OR_RETURN(TensorMap out, ExecuteGraph(graph, env));
  return out.begin()->second;
}

TEST(KernelTest, AddBroadcastRowVector) {
  Tensor a = *Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({10, 20, 30});
  Tensor out = *RunSingleOp(MakeNode("Add", {"a", "b"}, {"y"}), {a, b});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 3}, {11, 22, 33, 14, 25, 36})));
}

TEST(KernelTest, AddScalarBroadcast) {
  Tensor a = *Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor out = *RunSingleOp(MakeNode("Add", {"a", "b"}, {"y"}),
                            {a, Tensor::Scalar(1.0f)});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 2}, {2, 3, 4, 5})));
}

TEST(KernelTest, AddShapeMismatchFails) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2});
  EXPECT_FALSE(RunSingleOp(MakeNode("Add", {"a", "b"}, {"y"}), {a, b}).ok());
}

TEST(KernelTest, MatMul) {
  Tensor a = *Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = *Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor out = *RunSingleOp(MakeNode("MatMul", {"a", "b"}, {"y"}), {a, b});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 2}, {58, 64, 139, 154})));
}

TEST(KernelTest, GemmWithBias) {
  Tensor x = *Tensor::FromData({1, 2}, {1, 2});
  Tensor w = *Tensor::FromData({2, 2}, {1, 0, 0, 1});
  Tensor b = Tensor::FromVector({10, 20});
  Node node = MakeNode("Gemm", {"x", "w", "b"}, {"y"});
  Tensor out = *RunSingleOp(std::move(node), {x, w, b});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({1, 2}, {11, 22})));
}

TEST(KernelTest, ReluSigmoidTanh) {
  Tensor x = *Tensor::FromData({1, 3}, {-1, 0, 2});
  Tensor relu = *RunSingleOp(MakeNode("Relu", {"x"}, {"y"}), {x});
  EXPECT_TRUE(relu.Equals(*Tensor::FromData({1, 3}, {0, 0, 2})));
  Tensor sig = *RunSingleOp(MakeNode("Sigmoid", {"x"}, {"y"}), {x});
  EXPECT_NEAR(sig.raw()[1], 0.5f, 1e-6f);
  EXPECT_NEAR(sig.raw()[2], 1.0f / (1.0f + std::exp(-2.0f)), 1e-6f);
  Tensor th = *RunSingleOp(MakeNode("Tanh", {"x"}, {"y"}), {x});
  EXPECT_NEAR(th.raw()[0], std::tanh(-1.0f), 1e-6f);
}

TEST(KernelTest, SoftmaxRows) {
  Tensor x = *Tensor::FromData({2, 2}, {0, 0, 1, 3});
  Tensor out = *RunSingleOp(MakeNode("Softmax", {"x"}, {"y"}), {x});
  EXPECT_NEAR(out.At(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(out.At(1, 0) + out.At(1, 1), 1.0f, 1e-6f);
  EXPECT_GT(out.At(1, 1), out.At(1, 0));
}

TEST(KernelTest, ConcatAxis1) {
  Tensor a = *Tensor::FromData({2, 1}, {1, 2});
  Tensor b = *Tensor::FromData({2, 2}, {3, 4, 5, 6});
  Tensor out = *RunSingleOp(MakeNode("Concat", {"a", "b"}, {"y"}), {a, b});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 3}, {1, 3, 4, 2, 5, 6})));
}

TEST(KernelTest, GatherColumns) {
  Tensor x = *Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Node node = MakeNode("GatherColumns", {"x"}, {"y"});
  node.attrs["indices"] = std::vector<std::int64_t>{2, 0};
  Tensor out = *RunSingleOp(std::move(node), {x});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 2}, {3, 1, 6, 4})));
}

TEST(KernelTest, GatherColumnsOutOfRangeFails) {
  Tensor x = Tensor::Zeros({1, 2});
  Node node = MakeNode("GatherColumns", {"x"}, {"y"});
  node.attrs["indices"] = std::vector<std::int64_t>{5};
  EXPECT_FALSE(RunSingleOp(std::move(node), {x}).ok());
}

TEST(KernelTest, OneHot) {
  Tensor x = *Tensor::FromData({3, 1}, {0, 2, 7});  // 7 out of range
  Node node = MakeNode("OneHot", {"x"}, {"y"});
  node.attrs["depth"] = static_cast<std::int64_t>(3);
  Tensor out = *RunSingleOp(std::move(node), {x});
  EXPECT_TRUE(out.Equals(
      *Tensor::FromData({3, 3}, {1, 0, 0, 0, 0, 1, 0, 0, 0})));
}

TEST(KernelTest, Scaler) {
  Tensor x = *Tensor::FromData({2, 2}, {10, 100, 20, 200});
  Node node = MakeNode("Scaler", {"x"}, {"y"});
  node.attrs["offset"] = std::vector<double>{10.0, 100.0};
  node.attrs["scale"] = std::vector<double>{0.5, 0.1};
  Tensor out = *RunSingleOp(std::move(node), {x});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 2}, {0, 0, 5, 10})));
}

TEST(KernelTest, ArgMaxAndReduceSum) {
  Tensor x = *Tensor::FromData({2, 3}, {1, 5, 2, 9, 0, 3});
  Tensor am = *RunSingleOp(MakeNode("ArgMax", {"x"}, {"y"}), {x});
  EXPECT_TRUE(am.Equals(*Tensor::FromData({2, 1}, {1, 0})));
  Tensor rs = *RunSingleOp(MakeNode("ReduceSum", {"x"}, {"y"}), {x});
  EXPECT_TRUE(rs.Equals(*Tensor::FromData({2, 1}, {8, 12})));
}

TEST(KernelTest, ComparisonOps) {
  Tensor a = *Tensor::FromData({1, 3}, {1, 2, 3});
  Tensor b = *Tensor::FromData({1, 3}, {2, 2, 2});
  EXPECT_TRUE(RunSingleOp(MakeNode("Less", {"a", "b"}, {"y"}), {a, b})
                  ->Equals(*Tensor::FromData({1, 3}, {1, 0, 0})));
  EXPECT_TRUE(RunSingleOp(MakeNode("LessOrEqual", {"a", "b"}, {"y"}), {a, b})
                  ->Equals(*Tensor::FromData({1, 3}, {1, 1, 0})));
  EXPECT_TRUE(RunSingleOp(MakeNode("Greater", {"a", "b"}, {"y"}), {a, b})
                  ->Equals(*Tensor::FromData({1, 3}, {0, 0, 1})));
  EXPECT_TRUE(RunSingleOp(MakeNode("Equal", {"a", "b"}, {"y"}), {a, b})
                  ->Equals(*Tensor::FromData({1, 3}, {0, 1, 0})));
}

TEST(KernelTest, TreeEnsembleSingleTree) {
  // Tree: x0 <= 5 ? 1 : (x1 <= 0 ? 2 : 3)
  Node node = MakeNode("TreeEnsemble", {"x"}, {"y"});
  node.attrs["roots"] = Tensor::FromVector({0});
  node.attrs["feature"] = Tensor::FromVector({0, -1, 1, -1, -1});
  node.attrs["threshold"] = Tensor::FromVector({5, 0, 0, 0, 0});
  node.attrs["left"] = Tensor::FromVector({1, -1, 3, -1, -1});
  node.attrs["right"] = Tensor::FromVector({2, -1, 4, -1, -1});
  node.attrs["value"] = Tensor::FromVector({0, 1, 0, 2, 3});
  Tensor x = *Tensor::FromData({3, 2}, {4, 0, 6, -1, 6, 1});
  Tensor out = *RunSingleOp(std::move(node), {x});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({3, 1}, {1, 2, 3})));
}

TEST(KernelTest, TreeEnsembleAverageAndSigmoid) {
  // Two single-leaf trees with values 0 and 2 -> average 1; sigmoid(1).
  Node node = MakeNode("TreeEnsemble", {"x"}, {"y"});
  node.attrs["roots"] = Tensor::FromVector({0, 1});
  node.attrs["feature"] = Tensor::FromVector({-1, -1});
  node.attrs["threshold"] = Tensor::FromVector({0, 0});
  node.attrs["left"] = Tensor::FromVector({-1, -1});
  node.attrs["right"] = Tensor::FromVector({-1, -1});
  node.attrs["value"] = Tensor::FromVector({0, 2});
  node.attrs["aggregate"] = static_cast<std::int64_t>(1);
  node.attrs["post"] = static_cast<std::int64_t>(1);
  Tensor x = Tensor::Zeros({1, 1});
  Tensor out = *RunSingleOp(std::move(node), {x});
  EXPECT_NEAR(out.raw()[0], 1.0f / (1.0f + std::exp(-1.0f)), 1e-6f);
}

TEST(GraphTest, ValidateCatchesMissingProducer) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"nope"}, {"y"}));
  graph.AddOutput("y");
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(GraphTest, ValidateCatchesDuplicateProducer) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddNode(MakeNode("Neg", {"x"}, {"y"}));
  graph.AddOutput("y");
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(GraphTest, TopologicalOrderDetectsCycle) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Add", {"x", "b"}, {"a"}));
  graph.AddNode(MakeNode("Add", {"a", "x"}, {"b"}));
  graph.AddOutput("b");
  EXPECT_FALSE(graph.TopologicalOrder().ok());
}

TEST(GraphTest, ExecutesOutOfOrderNodes) {
  // Nodes appended in reverse dataflow order still execute correctly.
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"mid"}, {"y"}));
  graph.AddNode(MakeNode("Neg", {"x"}, {"mid"}));
  graph.AddOutput("y");
  TensorMap in;
  in["x"] = *Tensor::FromData({1, 2}, {-3, 4});
  TensorMap out = *ExecuteGraph(graph, in);
  EXPECT_TRUE(out.at("y").Equals(*Tensor::FromData({1, 2}, {3, 0})));
}

TEST(GraphTest, MissingInputIsError) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddOutput("y");
  EXPECT_FALSE(ExecuteGraph(graph, {}).ok());
}

TEST(GraphTest, UnknownOpIsError) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Conv3DTranspose", {"x"}, {"y"}));
  graph.AddOutput("y");
  TensorMap in;
  in["x"] = Tensor::Zeros({1, 1});
  auto result = ExecuteGraph(graph, in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(GraphTest, SerializeRoundTrip) {
  Graph graph;
  graph.AddInput("x");
  graph.AddInitializer("w", *Tensor::FromData({2, 1}, {0.5f, -1.0f}));
  Node node = MakeNode("Gemm", {"x", "w"}, {"y"});
  node.attrs["alpha"] = 1.5;
  node.attrs["tag"] = std::string("test");
  node.attrs["dims"] = std::vector<std::int64_t>{2, 1};
  graph.AddNode(std::move(node));
  graph.AddOutput("y");

  BinaryWriter w;
  graph.Serialize(&w);
  const std::string buf = w.Release();
  BinaryReader r(buf);
  Graph back = *Graph::Deserialize(&r);
  EXPECT_EQ(back.inputs(), graph.inputs());
  EXPECT_EQ(back.outputs(), graph.outputs());
  EXPECT_EQ(back.nodes().size(), 1u);
  EXPECT_EQ(*back.nodes()[0].GetFloatAttr("alpha"), 1.5);
  EXPECT_EQ(*back.nodes()[0].GetStringAttr("tag"), "test");

  TensorMap in;
  in["x"] = *Tensor::FromData({1, 2}, {2, 2});
  TensorMap out = *ExecuteGraph(back, in);
  EXPECT_NEAR(out.at("y").raw()[0], -1.0f, 1e-6f);
}

TEST(GraphOptimizerTest, ConstantFolding) {
  Graph graph;
  graph.AddInput("x");
  graph.AddInitializer("a", Tensor::FromVector({1, 2}));
  graph.AddInitializer("b", Tensor::FromVector({3, 4}));
  graph.AddNode(MakeNode("Add", {"a", "b"}, {"c"}));   // fully constant
  graph.AddNode(MakeNode("Add", {"x", "c"}, {"y"}));   // depends on input
  graph.AddOutput("y");
  GraphOptStats stats;
  ASSERT_TRUE(OptimizeGraph(&graph, &stats).ok());
  EXPECT_EQ(stats.constants_folded, 1u);
  EXPECT_EQ(graph.nodes().size(), 1u);
  TensorMap in;
  in["x"] = Tensor::FromVector({10, 10});
  TensorMap out = *ExecuteGraph(graph, in);
  EXPECT_TRUE(out.at("y").Equals(Tensor::FromVector({14, 16})));
}

TEST(GraphOptimizerTest, IdentityElimination) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Identity", {"x"}, {"a"}));
  graph.AddNode(MakeNode("Identity", {"a"}, {"b"}));
  graph.AddNode(MakeNode("Relu", {"b"}, {"y"}));
  graph.AddOutput("y");
  GraphOptStats stats;
  ASSERT_TRUE(OptimizeGraph(&graph, &stats).ok());
  EXPECT_EQ(stats.identities_removed, 2u);
  EXPECT_EQ(graph.nodes().size(), 1u);
}

TEST(GraphOptimizerTest, GemmFusion) {
  Graph graph;
  graph.AddInput("x");
  graph.AddInitializer("w", *Tensor::FromData({2, 2}, {1, 0, 0, 1}));
  graph.AddInitializer("b", Tensor::FromVector({5, 5}));
  graph.AddNode(MakeNode("MatMul", {"x", "w"}, {"mm"}));
  graph.AddNode(MakeNode("Add", {"mm", "b"}, {"y"}));
  graph.AddOutput("y");
  GraphOptStats stats;
  ASSERT_TRUE(OptimizeGraph(&graph, &stats).ok());
  EXPECT_EQ(stats.gemms_fused, 1u);
  EXPECT_EQ(graph.CountOps("Gemm"), 1u);
  EXPECT_EQ(graph.CountOps("MatMul"), 0u);
  TensorMap in;
  in["x"] = *Tensor::FromData({1, 2}, {1, 2});
  TensorMap out = *ExecuteGraph(graph, in);
  EXPECT_TRUE(out.at("y").Equals(*Tensor::FromData({1, 2}, {6, 7})));
}

TEST(GraphOptimizerTest, DeadNodeElimination) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddNode(MakeNode("Neg", {"x"}, {"unused"}));
  graph.AddOutput("y");
  GraphOptStats stats;
  ASSERT_TRUE(OptimizeGraph(&graph, &stats).ok());
  EXPECT_EQ(stats.dead_nodes_removed, 1u);
  EXPECT_EQ(graph.nodes().size(), 1u);
}

TEST(SessionTest, CreateRunAndStats) {
  Graph graph;
  graph.AddInput("x");
  graph.AddInitializer("w", *Tensor::FromData({2, 1}, {1.0f, 1.0f}));
  graph.AddNode(MakeNode("MatMul", {"x", "w"}, {"y"}));
  graph.AddOutput("y");
  auto session = std::move(InferenceSession::Create(std::move(graph))).value();
  RunStats stats;
  Tensor out = *session->RunSingle(*Tensor::FromData({1, 2}, {3, 4}), &stats);
  EXPECT_NEAR(out.raw()[0], 7.0f, 1e-6f);
  EXPECT_GT(stats.flops, 0.0);
  EXPECT_GE(stats.wall_micros, 0.0);
}

TEST(SessionTest, AcceleratorUsesCostModel) {
  Graph graph;
  graph.AddInput("x");
  graph.AddInitializer("w", *Tensor::FromData({2, 2}, {1, 0, 0, 1}));
  graph.AddNode(MakeNode("MatMul", {"x", "w"}, {"y"}));
  graph.AddOutput("y");
  SessionOptions options;
  options.device = DeviceSpec::Accelerator(/*launch_overhead_us=*/100.0,
                                           /*flops_per_us=*/1000.0);
  auto session = std::move(InferenceSession::Create(std::move(graph), options)).value();
  RunStats stats;
  (void)*session->RunSingle(*Tensor::FromData({1, 2}, {1, 2}), &stats);
  // simulated = overhead + flops/throughput.
  EXPECT_NEAR(stats.simulated_micros, 100.0 + stats.flops / 1000.0, 1e-9);
}

TEST(SessionTest, RoundTripBytes) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddOutput("y");
  auto session = std::move(InferenceSession::Create(std::move(graph))).value();
  auto session2 = std::move(InferenceSession::FromBytes(session->ToBytes())).value();
  Tensor out = *session2->RunSingle(*Tensor::FromData({1, 1}, {-1}));
  EXPECT_EQ(out.raw()[0], 0.0f);
}

TEST(SessionCacheTest, HitsAndEviction) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddOutput("y");
  BinaryWriter w;
  graph.Serialize(&w);
  const std::string bytes = w.Release();

  SessionCache cache(2);
  auto a = *cache.GetOrCreate("m1", bytes);
  auto b = *cache.GetOrCreate("m1", bytes);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  (void)*cache.GetOrCreate("m2", bytes);
  (void)*cache.GetOrCreate("m3", bytes);  // evicts m1 (capacity 2)
  EXPECT_EQ(cache.size(), 2u);
  (void)*cache.GetOrCreate("m1", bytes);  // miss again
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(SessionCacheTest, Invalidate) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddOutput("y");
  BinaryWriter w;
  graph.Serialize(&w);
  const std::string bytes = w.Release();
  SessionCache cache(4);
  (void)*cache.GetOrCreate("m", bytes);
  cache.Invalidate("m");
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Artifact cache + single-flight SessionCache + pluggable backends.

std::string IdentityReluBytes() {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Identity", {"x"}, {"a"}));
  graph.AddNode(MakeNode("Relu", {"a"}, {"y"}));
  graph.AddOutput("y");
  BinaryWriter w;
  graph.Serialize(&w);
  return w.Release();
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/raven_nnrt_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveDirRecursive(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") {
        ::unlink((dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

void OverwriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  if (f != nullptr) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    std::fclose(f);
  }
  return out;
}

TEST(SessionCacheTest, ZeroCapacityPassThrough) {
  const std::string bytes = IdentityReluBytes();
  SessionCache cache(0);
  auto a = cache.GetOrCreate("m", bytes);
  ASSERT_TRUE(a.ok());
  auto b = cache.GetOrCreate("m", bytes);
  ASSERT_TRUE(b.ok());
  // Pass-through: nothing cached, every call a clean miss + build — never
  // the old insert-then-immediately-evict churn.
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  Tensor out = *(*a)->RunSingle(*Tensor::FromData({1, 1}, {-3.0f}));
  EXPECT_EQ(out.raw()[0], 0.0f);
}

TEST(SessionCacheTest, StatsCountersAndSetCapacity) {
  const std::string bytes = IdentityReluBytes();
  SessionCache cache(4);
  (void)*cache.GetOrCreate("m1", bytes);
  (void)*cache.GetOrCreate("m2", bytes);
  (void)*cache.GetOrCreate("m3", bytes);
  (void)*cache.GetOrCreate("m1", bytes);
  SessionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.compiles, 3u);
  EXPECT_EQ(stats.graph_optimizations, 3u);
  EXPECT_EQ(stats.artifact_hits, 0u);
  EXPECT_EQ(stats.artifact_writes, 0u);

  cache.set_capacity(1);
  EXPECT_EQ(cache.capacity(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  cache.set_capacity(0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evictions, 3u);
}

TEST(ArtifactCacheTest, MissIsNotFound) {
  const std::string dir = MakeTempDir();
  ArtifactCache artifacts(dir);
  auto missing = artifacts.Load(0xabcdef);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  RemoveDirRecursive(dir);
}

TEST(ArtifactCacheTest, RoundTripPreservesGraphAndStats) {
  const std::string dir = MakeTempDir();
  ArtifactCache artifacts(dir);
  const std::string bytes = IdentityReluBytes();
  const std::uint64_t fp = FingerprintGraphBytes(bytes);
  auto session = std::move(InferenceSession::FromBytes(bytes)).value();
  ASSERT_EQ(session->optimization_stats().identities_removed, 1u);
  ASSERT_TRUE(
      artifacts.Store(fp, session->graph(), session->optimization_stats())
          .ok());

  auto loaded = artifacts.Load(fp);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->opt_stats.identities_removed, 1u);
  TensorMap env;
  env["x"] = *Tensor::FromData({1, 2}, {-1.0f, 2.0f});
  TensorMap out = *ExecuteGraph(loaded->graph, env);
  EXPECT_TRUE(out.at("y").Equals(*Tensor::FromData({1, 2}, {0.0f, 2.0f})));
  RemoveDirRecursive(dir);
}

TEST(ArtifactCacheTest, RejectsCorruptTruncatedAndStaleVersion) {
  const std::string dir = MakeTempDir();
  ArtifactCache artifacts(dir);
  const std::string bytes = IdentityReluBytes();
  const std::uint64_t fp = FingerprintGraphBytes(bytes);
  auto session = std::move(InferenceSession::FromBytes(bytes)).value();
  ASSERT_TRUE(
      artifacts.Store(fp, session->graph(), session->optimization_stats())
          .ok());
  const std::string path = artifacts.PathFor(fp);
  const std::string good = ReadFileOrDie(path);
  ASSERT_GT(good.size(), 32u);

  // Corrupt: flip bytes in the middle (checksum mismatch).
  std::string corrupt = good;
  corrupt[good.size() / 2] ^= 0x5a;
  OverwriteFile(path, corrupt);
  auto r1 = artifacts.Load(fp);
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.status().code(), StatusCode::kNotFound);

  // Truncated: half the file.
  OverwriteFile(path, good.substr(0, good.size() / 2));
  auto r2 = artifacts.Load(fp);
  EXPECT_FALSE(r2.ok());
  EXPECT_NE(r2.status().code(), StatusCode::kNotFound);

  // Stale format version: a well-formed payload (magic, checksum both
  // valid) written by a "future" build. Mirrors the pinned on-disk layout.
  BinaryWriter payload;
  payload.WriteString("RAVEN_NNRT_ARTIFACT");
  payload.WriteU32(ArtifactCache::kFormatVersion + 1);
  payload.WriteU64(fp);
  for (int i = 0; i < 4; ++i) payload.WriteU64(0);
  payload.WriteString(bytes);
  // Word-stride FNV-1a, exactly as artifact_cache.cc computes it — the
  // checksum must pass so Load fails on the version check, not here.
  const std::string& buf = payload.buffer();
  std::uint64_t h = 1469598103934665603ull;
  std::size_t i = 0;
  for (; i + 8 <= buf.size(); i += 8) {
    std::uint64_t word;
    std::memcpy(&word, buf.data() + i, 8);
    h ^= word;
    h *= 1099511628211ull;
  }
  for (; i < buf.size(); ++i) {
    h ^= static_cast<unsigned char>(buf[i]);
    h *= 1099511628211ull;
  }
  payload.WriteU64(h);
  OverwriteFile(path, payload.buffer());
  auto r3 = artifacts.Load(fp);
  EXPECT_FALSE(r3.ok());
  EXPECT_NE(r3.status().code(), StatusCode::kNotFound);
  // Specifically the version check — the checksum above must have passed.
  EXPECT_NE(r3.status().ToString().find("format version"), std::string::npos)
      << r3.status().ToString();

  // A valid rewrite heals the slot.
  ASSERT_TRUE(
      artifacts.Store(fp, session->graph(), session->optimization_stats())
          .ok());
  EXPECT_TRUE(artifacts.Load(fp).ok());
  RemoveDirRecursive(dir);
}

TEST(SessionCacheTest, ArtifactWarmStartSkipsOptimizer) {
  const std::string dir = MakeTempDir();
  const std::string bytes = IdentityReluBytes();
  const std::uint64_t fp = FingerprintGraphBytes(bytes);
  const auto bytes_fn = [&bytes]() { return bytes; };

  SessionCache cold(8, std::make_shared<ArtifactCache>(dir));
  auto first = cold.GetOrCreate("m#1", fp, bytes_fn);
  ASSERT_TRUE(first.ok());
  SessionCacheStats s1 = cold.stats();
  EXPECT_EQ(s1.compiles, 1u);
  EXPECT_EQ(s1.graph_optimizations, 1u);
  EXPECT_EQ(s1.artifact_writes, 1u);
  EXPECT_EQ(s1.artifact_hits, 0u);

  // A fresh cache (= restarted server / spawned worker) on the same dir:
  // the compile — and in particular the optimizer — must not run again.
  SessionCache warm(8, std::make_shared<ArtifactCache>(dir));
  auto second = warm.GetOrCreate("m#1", fp, bytes_fn);
  ASSERT_TRUE(second.ok());
  SessionCacheStats s2 = warm.stats();
  EXPECT_EQ(s2.artifact_hits, 1u);
  EXPECT_EQ(s2.compiles, 0u);
  EXPECT_EQ(s2.graph_optimizations, 0u);
  // The warm session reports the original compile's optimizer stats and
  // computes the same result.
  EXPECT_EQ((*second)->optimization_stats().identities_removed, 1u);
  Tensor in = *Tensor::FromData({1, 2}, {-1.0f, 2.0f});
  EXPECT_TRUE((*first)->RunSingle(in)->Equals(*(*second)->RunSingle(in)));
  RemoveDirRecursive(dir);
}

TEST(SessionCacheTest, CorruptArtifactFallsBackAndRewrites) {
  const std::string dir = MakeTempDir();
  const std::string bytes = IdentityReluBytes();
  const std::uint64_t fp = FingerprintGraphBytes(bytes);
  const auto bytes_fn = [&bytes]() { return bytes; };
  {
    SessionCache writer(8, std::make_shared<ArtifactCache>(dir));
    ASSERT_TRUE(writer.GetOrCreate("m#1", fp, bytes_fn).ok());
  }
  ArtifactCache probe(dir);
  OverwriteFile(probe.PathFor(fp), "not an artifact");

  SessionCache cache(8, std::make_shared<ArtifactCache>(dir));
  auto session = cache.GetOrCreate("m#1", fp, bytes_fn);
  ASSERT_TRUE(session.ok());  // never a serving error
  SessionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.artifact_rejects, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.graph_optimizations, 1u);
  EXPECT_EQ(stats.artifact_writes, 1u);  // rewritten in place
  Tensor out = *(*session)->RunSingle(*Tensor::FromData({1, 1}, {-2.0f}));
  EXPECT_EQ(out.raw()[0], 0.0f);

  // The rewrite produced a loadable artifact again.
  SessionCache healed(8, std::make_shared<ArtifactCache>(dir));
  ASSERT_TRUE(healed.GetOrCreate("m#1", fp, bytes_fn).ok());
  EXPECT_EQ(healed.stats().artifact_hits, 1u);
  RemoveDirRecursive(dir);
}

TEST(SessionCacheTest, ConcurrentGetOrCreateSingleFlight) {
  const std::string dir = MakeTempDir();
  const std::string bytes = IdentityReluBytes();
  const std::uint64_t fp = FingerprintGraphBytes(bytes);
  std::atomic<int> serializations{0};
  const auto bytes_fn = [&]() {
    serializations.fetch_add(1);
    // Widen the race window so late arrivals find the build in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return bytes;
  };

  SessionCache cache(8, std::make_shared<ArtifactCache>(dir));
  constexpr int kThreads = 4;
  std::shared_ptr<InferenceSession> sessions[kThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto result = cache.GetOrCreate("m#1", fp, bytes_fn);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      sessions[t] = result.value();
    });
  }
  for (auto& th : threads) th.join();

  // One builder; everyone else waited for — and shares — its session.
  EXPECT_EQ(serializations.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(sessions[0].get(), sessions[t].get());
  }
  SessionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.artifact_writes, 1u);
  RemoveDirRecursive(dir);
}

// --- Backends ---------------------------------------------------------------

TEST(BackendTest, ParseAndNames) {
  EXPECT_EQ(ParseBackendKind("reference").value(), BackendKind::kReference);
  EXPECT_EQ(ParseBackendKind("simd").value(), BackendKind::kSimd);
  EXPECT_EQ(ParseBackendKind("fp16").value(), BackendKind::kFp16);
  EXPECT_FALSE(ParseBackendKind("avx512").ok());
  EXPECT_STREQ(BackendKindToString(BackendKind::kSimd), "simd");
  EXPECT_STREQ(GetBackend(BackendKind::kReference)->name(), "reference");
  EXPECT_TRUE(GetBackend(BackendKind::kFp16)->fp16());
  EXPECT_FALSE(GetBackend(BackendKind::kSimd)->fp16());
}

float LcgFloat(std::uint32_t* s) {
  *s = *s * 1664525u + 1013904223u;
  return static_cast<float>((*s >> 8) & 0xFFFF) / 16384.0f - 2.0f;
}

Tensor RandomTensor(std::uint32_t* s, std::int64_t rows, std::int64_t cols,
                    bool with_zeros) {
  std::vector<float> data(static_cast<std::size_t>(rows * cols));
  for (auto& v : data) {
    v = LcgFloat(s);
    // Exercise the MatMul zero-skip fast path on some elements.
    if (with_zeros && std::fabs(v) < 0.5f) v = 0.0f;
  }
  return *Tensor::FromData({rows, cols}, std::move(data));
}

std::vector<float> RandomVec(std::uint32_t* s, std::int64_t n) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = LcgFloat(s);
  return v;
}

/// A dense graph over exactly the ops the SIMD backend overrides
/// (Gemm/MatMul/Relu/Sub/Mul/Div), with odd widths so every vectorized
/// loop runs its scalar tail.
Graph RandomDenseGraph(std::uint32_t seed, std::int64_t in,
                       std::int64_t hidden, std::int64_t out) {
  std::uint32_t s = seed * 2654435761u + 12345u;
  Graph g;
  g.AddInput("x");
  g.AddInitializer("w1", RandomTensor(&s, in, hidden, false));
  g.AddInitializer("b1", Tensor::FromVector(RandomVec(&s, hidden)));
  g.AddNode(MakeNode("Gemm", {"x", "w1", "b1"}, {"h"}));
  g.AddNode(MakeNode("Relu", {"h"}, {"hr"}));
  g.AddInitializer("w2", RandomTensor(&s, hidden, out, true));
  g.AddNode(MakeNode("MatMul", {"hr", "w2"}, {"m"}));
  g.AddInitializer("rowv", Tensor::FromVector(RandomVec(&s, out)));
  g.AddNode(MakeNode("Sub", {"m", "rowv"}, {"d"}));
  g.AddNode(MakeNode("Mul", {"d", "d"}, {"sq"}));
  g.AddInitializer("divisor", Tensor::Scalar(1.7f));
  g.AddNode(MakeNode("Div", {"sq", "divisor"}, {"y"}));
  g.AddOutput("y");
  return g;
}

void ExpectBitIdentical(const TensorMap& a, const TensorMap& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, ta] : a) {
    auto it = b.find(name);
    ASSERT_NE(it, b.end()) << name;
    const Tensor& tb = it->second;
    ASSERT_EQ(ta.shape(), tb.shape()) << name;
    EXPECT_EQ(std::memcmp(ta.raw(), tb.raw(),
                          sizeof(float) *
                              static_cast<std::size_t>(ta.num_elements())),
              0)
        << name;
  }
}

TEST(BackendTest, SimdMatchesReferenceBitExact) {
  const struct {
    std::int64_t rows, in, hidden, out;
  } kConfigs[] = {
      {1, 4, 8, 4},    // lane-aligned
      {3, 7, 9, 5},    // scalar tails everywhere
      {4, 13, 11, 7},  // wider, odd
      {2, 1, 2, 1},    // degenerate widths
      {5, 3, 17, 3},
  };
  for (std::uint32_t seed = 0; seed < 4; ++seed) {
    for (const auto& c : kConfigs) {
      Graph g = RandomDenseGraph(seed, c.in, c.hidden, c.out);
      std::uint32_t s = seed ^ 0xbeef;
      TensorMap env;
      env["x"] = RandomTensor(&s, c.rows, c.in, true);
      auto ref = ExecuteGraph(g, env, nullptr,
                              GetBackend(BackendKind::kReference));
      auto simd =
          ExecuteGraph(g, env, nullptr, GetBackend(BackendKind::kSimd));
      ASSERT_TRUE(ref.ok() && simd.ok());
      ExpectBitIdentical(ref.value(), simd.value());
    }
  }
}

TEST(BackendTest, SimdScalerBitExact) {
  Node node = MakeNode("Scaler", {"x"}, {"y"});
  node.attrs["offset"] = std::vector<double>{0.25, -1.5, 3.125, 0.1, -0.7};
  node.attrs["scale"] = std::vector<double>{2.0, 0.5, -1.25, 7.3, 0.01};
  Graph g;
  g.AddInput("x");
  g.AddNode(std::move(node));
  g.AddOutput("y");
  std::uint32_t s = 99;
  TensorMap env;
  env["x"] = RandomTensor(&s, 7, 5, false);
  auto ref = ExecuteGraph(g, env, nullptr, GetBackend(BackendKind::kReference));
  auto simd = ExecuteGraph(g, env, nullptr, GetBackend(BackendKind::kSimd));
  ASSERT_TRUE(ref.ok() && simd.ok());
  ExpectBitIdentical(ref.value(), simd.value());
}

TEST(BackendTest, SimdFallsBackForOrderSensitiveOps) {
  // Softmax is deliberately NOT overridden (order-sensitive reduction);
  // the SIMD backend must serve the reference kernel for it, exactly.
  Graph g;
  g.AddInput("x");
  g.AddNode(MakeNode("Softmax", {"x"}, {"y"}));
  g.AddOutput("y");
  TensorMap env;
  env["x"] = *Tensor::FromData({2, 3}, {0.5f, -1.0f, 2.0f, 3.0f, 3.0f, 0.0f});
  auto ref = ExecuteGraph(g, env, nullptr, GetBackend(BackendKind::kReference));
  auto simd = ExecuteGraph(g, env, nullptr, GetBackend(BackendKind::kSimd));
  ASSERT_TRUE(ref.ok() && simd.ok());
  ExpectBitIdentical(ref.value(), simd.value());
  EXPECT_EQ(GetBackend(BackendKind::kSimd)->FindKernel("NoSuchOp"), nullptr);
}

TEST(BackendTest, RoundToFp16PinnedValues) {
  EXPECT_EQ(RoundToFp16(0.0f), 0.0f);
  EXPECT_EQ(RoundToFp16(1.0f), 1.0f);
  EXPECT_EQ(RoundToFp16(-2.5f), -2.5f);
  // 0.1 is inexact in binary16: nearest half is 0.0999755859375.
  EXPECT_EQ(RoundToFp16(0.1f), 0.0999755859375f);
  // 1 + 2^-10 is exactly representable; 1 + 2^-11 is halfway and rounds
  // to even (down to 1.0).
  EXPECT_EQ(RoundToFp16(1.0f + 0.0009765625f), 1.0f + 0.0009765625f);
  EXPECT_EQ(RoundToFp16(1.0f + 0.00048828125f), 1.0f);
  // Largest finite half; anything above overflows to infinity.
  EXPECT_EQ(RoundToFp16(65504.0f), 65504.0f);
  EXPECT_TRUE(std::isinf(RoundToFp16(70000.0f)));
  EXPECT_TRUE(std::isinf(RoundToFp16(-70000.0f)));
  EXPECT_LT(RoundToFp16(-70000.0f), 0.0f);
  // Subnormal range: min positive half-subnormal is 2^-24.
  EXPECT_EQ(RoundToFp16(3.0e-8f), 5.9604645e-8f);
  EXPECT_EQ(RoundToFp16(1.0e-8f), 0.0f);
  EXPECT_TRUE(std::isnan(RoundToFp16(std::nanf(""))));
}

TEST(BackendTest, Fp16WithinDocumentedTolerance) {
  for (std::uint32_t seed = 0; seed < 3; ++seed) {
    Graph g = RandomDenseGraph(seed, 6, 10, 4);
    std::uint32_t s = seed + 7;
    TensorMap env;
    env["x"] = RandomTensor(&s, 3, 6, false);
    auto ref =
        ExecuteGraph(g, env, nullptr, GetBackend(BackendKind::kReference));
    auto fp16 = ExecuteGraph(g, env, nullptr, GetBackend(BackendKind::kFp16));
    ASSERT_TRUE(ref.ok() && fp16.ok());
    const Tensor& rt = ref->at("y");
    const Tensor& ht = fp16->at("y");
    ASSERT_EQ(rt.shape(), ht.shape());
    for (std::int64_t i = 0; i < rt.num_elements(); ++i) {
      const float r = rt.raw()[i];
      const float h = ht.raw()[i];
      // The documented bound (docs/OPERATIONS.md): 1% relative or 1e-2
      // absolute, whichever is larger.
      EXPECT_NEAR(h, r, std::max(1e-2f, 0.01f * std::fabs(r)))
          << "seed " << seed << " element " << i;
    }
  }
}

TEST(OpProfilerTest, ExecuteGraphFillsPerOpStats) {
  Graph g = RandomDenseGraph(1, 4, 8, 4);
  std::uint32_t s = 3;
  TensorMap env;
  env["x"] = RandomTensor(&s, 2, 4, false);
  RunStats stats;
  ASSERT_TRUE(ExecuteGraph(g, env, &stats, nullptr, /*profile_ops=*/true).ok());
  ASSERT_FALSE(stats.per_op.empty());
  std::int64_t calls = 0;
  for (const auto& op : stats.per_op) calls += op.calls;
  EXPECT_EQ(static_cast<std::size_t>(calls), stats.nodes_executed);

  OpProfiler profiler;
  profiler.Merge(stats.per_op);
  profiler.Merge(stats.per_op);
  EXPECT_EQ(profiler.total_calls(), 2 * calls);
  auto rows = profiler.Snapshot();
  ASSERT_FALSE(rows.empty());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].wall_micros, rows[i].wall_micros);
  }
}

TEST(OpProfilerTest, SessionRunFeedsCacheProfiler) {
  SessionCache cache(4);
  SessionOptions options;
  options.profiler = &cache.profiler();
  auto session = cache.GetOrCreate("m", IdentityReluBytes(), options);
  ASSERT_TRUE(session.ok());
  (void)*(*session)->RunSingle(*Tensor::FromData({1, 2}, {-1.0f, 2.0f}));
  EXPECT_GT(cache.profiler().total_calls(), 0);
  EXPECT_FALSE(cache.profiler().Snapshot().empty());
}

TEST(KernelRegistryTest, SupportedOps) {
  EXPECT_TRUE(IsOpSupported("Gemm"));
  EXPECT_TRUE(IsOpSupported("TreeEnsemble"));
  EXPECT_FALSE(IsOpSupported("Attention"));
  EXPECT_GE(SupportedOps().size(), 20u);
}

}  // namespace
}  // namespace raven::nnrt
