// Out-of-process worker: the stand-in for the external language runtime
// behind sp_execute_external_script (paper §5, Raven Ext) and for
// containerized scoring endpoints. Speaks the length-prefixed protocol of
// runtime/worker_protocol.h on stdin/stdout.
//
// Two request families arrive on the pipe: one-shot scoring (a model plus
// one tensor) and kExecuteFragment — a serialized IR plan fragment plus one
// scan partition, executed through the engine's own PlanExecutor and
// answered with a stream of result-chunk frames. Workers are persistent
// (the WorkerPool keeps them warm across queries) and stateless between
// frames, so any partition can be retried on any worker.
//
// Usage: raven_worker [--boot-ms=N] [--fault=MODE] [--artifact-dir=PATH]
//   --boot-ms simulates interpreter start-up (the paper observes ~0.5 s for
//   the external Python runtime; fork/exec alone is a few milliseconds).
//   --artifact-dir points at the coordinator's compiled-graph artifact
//   directory (appended automatically via worker_args when the parent has
//   one), so a freshly spawned worker skips NNRT graph optimization for
//   any model the coordinator — or a previous worker — compiled before.
//   --fault injects a protocol failure on the first kExecuteFragment, for
//   the engine's fault-injection tests:
//     die        exit without writing anything (a mid-query crash)
//     truncate   write a frame header, half the payload, then exit
//     oversize   claim a 2 GiB frame, then exit
//     error      answer with a kError event (a worker-side failure)

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "ml/pipeline.h"
#include "nnrt/session.h"
#include "obs/trace.h"
#include "relational/chunk.h"
#include "runtime/worker_pool.h"
#include "runtime/worker_protocol.h"

namespace {

using raven::Result;
using raven::Status;
using raven::Tensor;
using raven::runtime::DecodeFragmentRequest;
using raven::runtime::DecodeRequest;
using raven::runtime::EncodeFragmentChunk;
using raven::runtime::EncodeFragmentDone;
using raven::runtime::EncodeFragmentError;
using raven::runtime::EncodeResponse;
using raven::runtime::ExecuteFragmentLocally;
using raven::runtime::ReadFrame;
using raven::runtime::ScoreRequest;
using raven::runtime::ScoreResponse;
using raven::runtime::WorkerCommand;
using raven::runtime::WriteFrame;

enum class FaultMode { kNone, kDie, kTruncate, kOversize, kError };

FaultMode g_fault = FaultMode::kNone;

/// The worker-lifetime NNRT session cache, shared by one-shot kScoreGraph
/// requests and fragment execution. With --artifact-dir it reads (and
/// writes) the coordinator's compiled-graph artifacts: a fresh worker spawn
/// then skips graph optimization for every model compiled before anywhere.
raven::nnrt::SessionCache* SessionCacheSingleton() {
  static raven::nnrt::SessionCache* cache =
      new raven::nnrt::SessionCache(32);
  return cache;
}

Result<Tensor> ScoreOnce(const ScoreRequest& request) {
  switch (request.command) {
    case WorkerCommand::kScorePipeline: {
      RAVEN_ASSIGN_OR_RETURN(
          raven::ml::ModelPipeline pipeline,
          raven::ml::ModelPipeline::FromBytes(request.model_bytes));
      return pipeline.Predict(request.input);
    }
    case WorkerCommand::kScoreGraph: {
      // Keyed by the same fingerprint function the coordinator stamps into
      // IrNode::nn_graph_fingerprint, so the artifact a raven_serve
      // instance wrote is a warm start here.
      const std::uint64_t fingerprint =
          raven::nnrt::FingerprintGraphBytes(request.model_bytes);
      RAVEN_ASSIGN_OR_RETURN(
          auto session,
          SessionCacheSingleton()->GetOrCreate(
              "score_graph#" + std::to_string(fingerprint), fingerprint,
              [&request]() { return request.model_bytes; }));
      return session->RunSingle(request.input);
    }
    default:
      return Status::InvalidArgument("not a scoring command");
  }
}

/// Applies the configured --fault to this fragment exchange. Returns true
/// when a fault fired and the worker should exit.
bool MaybeInjectFault() {
  switch (g_fault) {
    case FaultMode::kNone:
      return false;
    case FaultMode::kDie:
      return true;
    case FaultMode::kTruncate: {
      // Header promises 64 payload bytes; deliver half, then vanish. The
      // engine's frame timeout turns this into a diagnosable IoError.
      const std::uint32_t len = 64;
      char header[4];
      std::memcpy(header, &len, 4);
      std::string partial(header, 4);
      partial.append(32, '\x5a');
      (void)::write(STDOUT_FILENO, partial.data(), partial.size());
      return true;
    }
    case FaultMode::kOversize: {
      const std::uint32_t len = 1u << 31;  // over ReadFrame's 1 GiB cap
      char header[4];
      std::memcpy(header, &len, 4);
      (void)::write(STDOUT_FILENO, header, 4);
      return true;
    }
    case FaultMode::kError:
      (void)WriteFrame(STDOUT_FILENO,
                       EncodeFragmentError("injected worker fault"));
      // One-shot: later retries on a restarted worker with the same flag
      // still fail, exercising the engine's in-process fallback.
      return true;
  }
  return false;
}

/// Executes one fragment request and streams the result back as kChunk
/// frames followed by kDone. Worker-side failures answer kError (the frame
/// stream stays well-formed either way).
int ServeFragment(const std::string& payload) {
  if (MaybeInjectFault()) return 0;
  auto request = DecodeFragmentRequest(payload);
  if (!request.ok()) {
    return WriteFrame(STDOUT_FILENO,
                      EncodeFragmentError(request.status().ToString()))
                   .ok()
               ? -1
               : 1;
  }
  // Fragments may carry NNRT graphs; sessions stay cached for the worker's
  // lifetime, which is what keeps a warm pool cheaper than one-shot spawns.
  // A trace-enabled request (protocol v2) records the fragment's span tree
  // into a worker-local arena, shipped back in the kDone frame for the
  // coordinator to stitch under its exchange span.
  std::unique_ptr<raven::obs::Trace> trace;
  if (request->trace_enabled) {
    trace = std::make_unique<raven::obs::Trace>();
  }
  auto result = ExecuteFragmentLocally(request.value(), SessionCacheSingleton(),
                                       trace.get());
  if (!result.ok()) {
    return WriteFrame(STDOUT_FILENO,
                      EncodeFragmentError(result.status().ToString()))
                   .ok()
               ? -1
               : 1;
  }
  const raven::relational::Table& table = result.value();
  const std::int64_t rows = table.num_rows();
  for (std::int64_t begin = 0; begin < rows;
       begin += raven::relational::kChunkSize) {
    const std::int64_t end =
        std::min(rows, begin + raven::relational::kChunkSize);
    raven::relational::DataChunk chunk;
    for (const auto& column : table.columns()) {
      chunk.names.push_back(column.name);
      chunk.cols.emplace_back(column.data.begin() + begin,
                              column.data.begin() + end);
    }
    if (!WriteFrame(STDOUT_FILENO, EncodeFragmentChunk(chunk)).ok()) return 1;
  }
  const std::string trace_spans =
      trace != nullptr
          ? raven::obs::Trace::SerializeSpans(trace->Snapshot())
          : std::string();
  if (!WriteFrame(STDOUT_FILENO,
                  EncodeFragmentDone(table.ColumnNames(), rows, trace_spans))
           .ok()) {
    return 1;
  }
  return -1;  // keep serving
}

int Serve() {
  for (;;) {
    auto payload = ReadFrame(STDIN_FILENO);
    if (!payload.ok()) return 0;  // parent closed the pipe
    if (!payload->empty() &&
        static_cast<std::uint8_t>((*payload)[0]) ==
            static_cast<std::uint8_t>(WorkerCommand::kExecuteFragment)) {
      const int rc = ServeFragment(payload.value());
      if (rc >= 0) return rc;
      continue;
    }
    auto request = DecodeRequest(payload.value());
    ScoreResponse response;
    if (!request.ok()) {
      response.ok = false;
      response.error = request.status().ToString();
      if (!WriteFrame(STDOUT_FILENO, EncodeResponse(response)).ok()) return 1;
      continue;
    }
    if (request->command == WorkerCommand::kShutdown) {
      // Ack before exiting so the engine can join the worker
      // deterministically instead of polling waitpid.
      response.ok = true;
      (void)WriteFrame(STDOUT_FILENO, EncodeResponse(response));
      return 0;
    }
    if (request->command == WorkerCommand::kPing) {
      response.ok = true;
    } else {
      auto output = ScoreOnce(request.value());
      if (output.ok()) {
        response.ok = true;
        response.output = std::move(output).value();
      } else {
        response.ok = false;
        response.error = output.status().ToString();
      }
    }
    if (!WriteFrame(STDOUT_FILENO, EncodeResponse(response)).ok()) return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  long boot_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--boot-ms=", 10) == 0) {
      boot_ms = std::strtol(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--fault=", 8) == 0) {
      const std::string mode = argv[i] + 8;
      if (mode == "die") {
        g_fault = FaultMode::kDie;
      } else if (mode == "truncate") {
        g_fault = FaultMode::kTruncate;
      } else if (mode == "oversize") {
        g_fault = FaultMode::kOversize;
      } else if (mode == "error") {
        g_fault = FaultMode::kError;
      } else if (mode != "none") {
        std::fprintf(stderr, "raven_worker: unknown --fault mode '%s'\n",
                     mode.c_str());
        return 2;
      }
    } else if (std::strncmp(argv[i], "--artifact-dir=", 15) == 0) {
      SessionCacheSingleton()->AttachArtifacts(
          std::make_shared<raven::nnrt::ArtifactCache>(argv[i] + 15));
    }
  }
  if (boot_ms > 0) {
    ::usleep(static_cast<useconds_t>(boot_ms) * 1000);
  }
  return Serve();
}
