#include <gtest/gtest.h>

#include <cmath>

#include "nnrt/device.h"
#include "nnrt/executor.h"
#include "nnrt/graph.h"
#include "nnrt/graph_optimizer.h"
#include "nnrt/kernels.h"
#include "nnrt/session.h"

namespace raven::nnrt {
namespace {

Node MakeNode(const std::string& op, std::vector<std::string> inputs,
              std::vector<std::string> outputs) {
  Node node;
  node.op_type = op;
  node.name = op + "_" + outputs.front();
  node.inputs = std::move(inputs);
  node.outputs = std::move(outputs);
  return node;
}

Result<Tensor> RunSingleOp(Node node, std::vector<Tensor> inputs) {
  Graph graph;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    graph.AddInput(node.inputs[i]);
  }
  graph.AddOutput(node.outputs[0]);
  TensorMap env;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    env[node.inputs[i]] = std::move(inputs[i]);
  }
  graph.AddNode(std::move(node));
  RAVEN_ASSIGN_OR_RETURN(TensorMap out, ExecuteGraph(graph, env));
  return out.begin()->second;
}

TEST(KernelTest, AddBroadcastRowVector) {
  Tensor a = *Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({10, 20, 30});
  Tensor out = *RunSingleOp(MakeNode("Add", {"a", "b"}, {"y"}), {a, b});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 3}, {11, 22, 33, 14, 25, 36})));
}

TEST(KernelTest, AddScalarBroadcast) {
  Tensor a = *Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor out = *RunSingleOp(MakeNode("Add", {"a", "b"}, {"y"}),
                            {a, Tensor::Scalar(1.0f)});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 2}, {2, 3, 4, 5})));
}

TEST(KernelTest, AddShapeMismatchFails) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2});
  EXPECT_FALSE(RunSingleOp(MakeNode("Add", {"a", "b"}, {"y"}), {a, b}).ok());
}

TEST(KernelTest, MatMul) {
  Tensor a = *Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = *Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor out = *RunSingleOp(MakeNode("MatMul", {"a", "b"}, {"y"}), {a, b});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 2}, {58, 64, 139, 154})));
}

TEST(KernelTest, GemmWithBias) {
  Tensor x = *Tensor::FromData({1, 2}, {1, 2});
  Tensor w = *Tensor::FromData({2, 2}, {1, 0, 0, 1});
  Tensor b = Tensor::FromVector({10, 20});
  Node node = MakeNode("Gemm", {"x", "w", "b"}, {"y"});
  Tensor out = *RunSingleOp(std::move(node), {x, w, b});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({1, 2}, {11, 22})));
}

TEST(KernelTest, ReluSigmoidTanh) {
  Tensor x = *Tensor::FromData({1, 3}, {-1, 0, 2});
  Tensor relu = *RunSingleOp(MakeNode("Relu", {"x"}, {"y"}), {x});
  EXPECT_TRUE(relu.Equals(*Tensor::FromData({1, 3}, {0, 0, 2})));
  Tensor sig = *RunSingleOp(MakeNode("Sigmoid", {"x"}, {"y"}), {x});
  EXPECT_NEAR(sig.raw()[1], 0.5f, 1e-6f);
  EXPECT_NEAR(sig.raw()[2], 1.0f / (1.0f + std::exp(-2.0f)), 1e-6f);
  Tensor th = *RunSingleOp(MakeNode("Tanh", {"x"}, {"y"}), {x});
  EXPECT_NEAR(th.raw()[0], std::tanh(-1.0f), 1e-6f);
}

TEST(KernelTest, SoftmaxRows) {
  Tensor x = *Tensor::FromData({2, 2}, {0, 0, 1, 3});
  Tensor out = *RunSingleOp(MakeNode("Softmax", {"x"}, {"y"}), {x});
  EXPECT_NEAR(out.At(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(out.At(1, 0) + out.At(1, 1), 1.0f, 1e-6f);
  EXPECT_GT(out.At(1, 1), out.At(1, 0));
}

TEST(KernelTest, ConcatAxis1) {
  Tensor a = *Tensor::FromData({2, 1}, {1, 2});
  Tensor b = *Tensor::FromData({2, 2}, {3, 4, 5, 6});
  Tensor out = *RunSingleOp(MakeNode("Concat", {"a", "b"}, {"y"}), {a, b});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 3}, {1, 3, 4, 2, 5, 6})));
}

TEST(KernelTest, GatherColumns) {
  Tensor x = *Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Node node = MakeNode("GatherColumns", {"x"}, {"y"});
  node.attrs["indices"] = std::vector<std::int64_t>{2, 0};
  Tensor out = *RunSingleOp(std::move(node), {x});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 2}, {3, 1, 6, 4})));
}

TEST(KernelTest, GatherColumnsOutOfRangeFails) {
  Tensor x = Tensor::Zeros({1, 2});
  Node node = MakeNode("GatherColumns", {"x"}, {"y"});
  node.attrs["indices"] = std::vector<std::int64_t>{5};
  EXPECT_FALSE(RunSingleOp(std::move(node), {x}).ok());
}

TEST(KernelTest, OneHot) {
  Tensor x = *Tensor::FromData({3, 1}, {0, 2, 7});  // 7 out of range
  Node node = MakeNode("OneHot", {"x"}, {"y"});
  node.attrs["depth"] = static_cast<std::int64_t>(3);
  Tensor out = *RunSingleOp(std::move(node), {x});
  EXPECT_TRUE(out.Equals(
      *Tensor::FromData({3, 3}, {1, 0, 0, 0, 0, 1, 0, 0, 0})));
}

TEST(KernelTest, Scaler) {
  Tensor x = *Tensor::FromData({2, 2}, {10, 100, 20, 200});
  Node node = MakeNode("Scaler", {"x"}, {"y"});
  node.attrs["offset"] = std::vector<double>{10.0, 100.0};
  node.attrs["scale"] = std::vector<double>{0.5, 0.1};
  Tensor out = *RunSingleOp(std::move(node), {x});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({2, 2}, {0, 0, 5, 10})));
}

TEST(KernelTest, ArgMaxAndReduceSum) {
  Tensor x = *Tensor::FromData({2, 3}, {1, 5, 2, 9, 0, 3});
  Tensor am = *RunSingleOp(MakeNode("ArgMax", {"x"}, {"y"}), {x});
  EXPECT_TRUE(am.Equals(*Tensor::FromData({2, 1}, {1, 0})));
  Tensor rs = *RunSingleOp(MakeNode("ReduceSum", {"x"}, {"y"}), {x});
  EXPECT_TRUE(rs.Equals(*Tensor::FromData({2, 1}, {8, 12})));
}

TEST(KernelTest, ComparisonOps) {
  Tensor a = *Tensor::FromData({1, 3}, {1, 2, 3});
  Tensor b = *Tensor::FromData({1, 3}, {2, 2, 2});
  EXPECT_TRUE(RunSingleOp(MakeNode("Less", {"a", "b"}, {"y"}), {a, b})
                  ->Equals(*Tensor::FromData({1, 3}, {1, 0, 0})));
  EXPECT_TRUE(RunSingleOp(MakeNode("LessOrEqual", {"a", "b"}, {"y"}), {a, b})
                  ->Equals(*Tensor::FromData({1, 3}, {1, 1, 0})));
  EXPECT_TRUE(RunSingleOp(MakeNode("Greater", {"a", "b"}, {"y"}), {a, b})
                  ->Equals(*Tensor::FromData({1, 3}, {0, 0, 1})));
  EXPECT_TRUE(RunSingleOp(MakeNode("Equal", {"a", "b"}, {"y"}), {a, b})
                  ->Equals(*Tensor::FromData({1, 3}, {0, 1, 0})));
}

TEST(KernelTest, TreeEnsembleSingleTree) {
  // Tree: x0 <= 5 ? 1 : (x1 <= 0 ? 2 : 3)
  Node node = MakeNode("TreeEnsemble", {"x"}, {"y"});
  node.attrs["roots"] = Tensor::FromVector({0});
  node.attrs["feature"] = Tensor::FromVector({0, -1, 1, -1, -1});
  node.attrs["threshold"] = Tensor::FromVector({5, 0, 0, 0, 0});
  node.attrs["left"] = Tensor::FromVector({1, -1, 3, -1, -1});
  node.attrs["right"] = Tensor::FromVector({2, -1, 4, -1, -1});
  node.attrs["value"] = Tensor::FromVector({0, 1, 0, 2, 3});
  Tensor x = *Tensor::FromData({3, 2}, {4, 0, 6, -1, 6, 1});
  Tensor out = *RunSingleOp(std::move(node), {x});
  EXPECT_TRUE(out.Equals(*Tensor::FromData({3, 1}, {1, 2, 3})));
}

TEST(KernelTest, TreeEnsembleAverageAndSigmoid) {
  // Two single-leaf trees with values 0 and 2 -> average 1; sigmoid(1).
  Node node = MakeNode("TreeEnsemble", {"x"}, {"y"});
  node.attrs["roots"] = Tensor::FromVector({0, 1});
  node.attrs["feature"] = Tensor::FromVector({-1, -1});
  node.attrs["threshold"] = Tensor::FromVector({0, 0});
  node.attrs["left"] = Tensor::FromVector({-1, -1});
  node.attrs["right"] = Tensor::FromVector({-1, -1});
  node.attrs["value"] = Tensor::FromVector({0, 2});
  node.attrs["aggregate"] = static_cast<std::int64_t>(1);
  node.attrs["post"] = static_cast<std::int64_t>(1);
  Tensor x = Tensor::Zeros({1, 1});
  Tensor out = *RunSingleOp(std::move(node), {x});
  EXPECT_NEAR(out.raw()[0], 1.0f / (1.0f + std::exp(-1.0f)), 1e-6f);
}

TEST(GraphTest, ValidateCatchesMissingProducer) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"nope"}, {"y"}));
  graph.AddOutput("y");
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(GraphTest, ValidateCatchesDuplicateProducer) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddNode(MakeNode("Neg", {"x"}, {"y"}));
  graph.AddOutput("y");
  EXPECT_FALSE(graph.Validate().ok());
}

TEST(GraphTest, TopologicalOrderDetectsCycle) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Add", {"x", "b"}, {"a"}));
  graph.AddNode(MakeNode("Add", {"a", "x"}, {"b"}));
  graph.AddOutput("b");
  EXPECT_FALSE(graph.TopologicalOrder().ok());
}

TEST(GraphTest, ExecutesOutOfOrderNodes) {
  // Nodes appended in reverse dataflow order still execute correctly.
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"mid"}, {"y"}));
  graph.AddNode(MakeNode("Neg", {"x"}, {"mid"}));
  graph.AddOutput("y");
  TensorMap in;
  in["x"] = *Tensor::FromData({1, 2}, {-3, 4});
  TensorMap out = *ExecuteGraph(graph, in);
  EXPECT_TRUE(out.at("y").Equals(*Tensor::FromData({1, 2}, {3, 0})));
}

TEST(GraphTest, MissingInputIsError) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddOutput("y");
  EXPECT_FALSE(ExecuteGraph(graph, {}).ok());
}

TEST(GraphTest, UnknownOpIsError) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Conv3DTranspose", {"x"}, {"y"}));
  graph.AddOutput("y");
  TensorMap in;
  in["x"] = Tensor::Zeros({1, 1});
  auto result = ExecuteGraph(graph, in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(GraphTest, SerializeRoundTrip) {
  Graph graph;
  graph.AddInput("x");
  graph.AddInitializer("w", *Tensor::FromData({2, 1}, {0.5f, -1.0f}));
  Node node = MakeNode("Gemm", {"x", "w"}, {"y"});
  node.attrs["alpha"] = 1.5;
  node.attrs["tag"] = std::string("test");
  node.attrs["dims"] = std::vector<std::int64_t>{2, 1};
  graph.AddNode(std::move(node));
  graph.AddOutput("y");

  BinaryWriter w;
  graph.Serialize(&w);
  const std::string buf = w.Release();
  BinaryReader r(buf);
  Graph back = *Graph::Deserialize(&r);
  EXPECT_EQ(back.inputs(), graph.inputs());
  EXPECT_EQ(back.outputs(), graph.outputs());
  EXPECT_EQ(back.nodes().size(), 1u);
  EXPECT_EQ(*back.nodes()[0].GetFloatAttr("alpha"), 1.5);
  EXPECT_EQ(*back.nodes()[0].GetStringAttr("tag"), "test");

  TensorMap in;
  in["x"] = *Tensor::FromData({1, 2}, {2, 2});
  TensorMap out = *ExecuteGraph(back, in);
  EXPECT_NEAR(out.at("y").raw()[0], -1.0f, 1e-6f);
}

TEST(GraphOptimizerTest, ConstantFolding) {
  Graph graph;
  graph.AddInput("x");
  graph.AddInitializer("a", Tensor::FromVector({1, 2}));
  graph.AddInitializer("b", Tensor::FromVector({3, 4}));
  graph.AddNode(MakeNode("Add", {"a", "b"}, {"c"}));   // fully constant
  graph.AddNode(MakeNode("Add", {"x", "c"}, {"y"}));   // depends on input
  graph.AddOutput("y");
  GraphOptStats stats;
  ASSERT_TRUE(OptimizeGraph(&graph, &stats).ok());
  EXPECT_EQ(stats.constants_folded, 1u);
  EXPECT_EQ(graph.nodes().size(), 1u);
  TensorMap in;
  in["x"] = Tensor::FromVector({10, 10});
  TensorMap out = *ExecuteGraph(graph, in);
  EXPECT_TRUE(out.at("y").Equals(Tensor::FromVector({14, 16})));
}

TEST(GraphOptimizerTest, IdentityElimination) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Identity", {"x"}, {"a"}));
  graph.AddNode(MakeNode("Identity", {"a"}, {"b"}));
  graph.AddNode(MakeNode("Relu", {"b"}, {"y"}));
  graph.AddOutput("y");
  GraphOptStats stats;
  ASSERT_TRUE(OptimizeGraph(&graph, &stats).ok());
  EXPECT_EQ(stats.identities_removed, 2u);
  EXPECT_EQ(graph.nodes().size(), 1u);
}

TEST(GraphOptimizerTest, GemmFusion) {
  Graph graph;
  graph.AddInput("x");
  graph.AddInitializer("w", *Tensor::FromData({2, 2}, {1, 0, 0, 1}));
  graph.AddInitializer("b", Tensor::FromVector({5, 5}));
  graph.AddNode(MakeNode("MatMul", {"x", "w"}, {"mm"}));
  graph.AddNode(MakeNode("Add", {"mm", "b"}, {"y"}));
  graph.AddOutput("y");
  GraphOptStats stats;
  ASSERT_TRUE(OptimizeGraph(&graph, &stats).ok());
  EXPECT_EQ(stats.gemms_fused, 1u);
  EXPECT_EQ(graph.CountOps("Gemm"), 1u);
  EXPECT_EQ(graph.CountOps("MatMul"), 0u);
  TensorMap in;
  in["x"] = *Tensor::FromData({1, 2}, {1, 2});
  TensorMap out = *ExecuteGraph(graph, in);
  EXPECT_TRUE(out.at("y").Equals(*Tensor::FromData({1, 2}, {6, 7})));
}

TEST(GraphOptimizerTest, DeadNodeElimination) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddNode(MakeNode("Neg", {"x"}, {"unused"}));
  graph.AddOutput("y");
  GraphOptStats stats;
  ASSERT_TRUE(OptimizeGraph(&graph, &stats).ok());
  EXPECT_EQ(stats.dead_nodes_removed, 1u);
  EXPECT_EQ(graph.nodes().size(), 1u);
}

TEST(SessionTest, CreateRunAndStats) {
  Graph graph;
  graph.AddInput("x");
  graph.AddInitializer("w", *Tensor::FromData({2, 1}, {1.0f, 1.0f}));
  graph.AddNode(MakeNode("MatMul", {"x", "w"}, {"y"}));
  graph.AddOutput("y");
  auto session = std::move(InferenceSession::Create(std::move(graph))).value();
  RunStats stats;
  Tensor out = *session->RunSingle(*Tensor::FromData({1, 2}, {3, 4}), &stats);
  EXPECT_NEAR(out.raw()[0], 7.0f, 1e-6f);
  EXPECT_GT(stats.flops, 0.0);
  EXPECT_GE(stats.wall_micros, 0.0);
}

TEST(SessionTest, AcceleratorUsesCostModel) {
  Graph graph;
  graph.AddInput("x");
  graph.AddInitializer("w", *Tensor::FromData({2, 2}, {1, 0, 0, 1}));
  graph.AddNode(MakeNode("MatMul", {"x", "w"}, {"y"}));
  graph.AddOutput("y");
  SessionOptions options;
  options.device = DeviceSpec::Accelerator(/*launch_overhead_us=*/100.0,
                                           /*flops_per_us=*/1000.0);
  auto session = std::move(InferenceSession::Create(std::move(graph), options)).value();
  RunStats stats;
  (void)*session->RunSingle(*Tensor::FromData({1, 2}, {1, 2}), &stats);
  // simulated = overhead + flops/throughput.
  EXPECT_NEAR(stats.simulated_micros, 100.0 + stats.flops / 1000.0, 1e-9);
}

TEST(SessionTest, RoundTripBytes) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddOutput("y");
  auto session = std::move(InferenceSession::Create(std::move(graph))).value();
  auto session2 = std::move(InferenceSession::FromBytes(session->ToBytes())).value();
  Tensor out = *session2->RunSingle(*Tensor::FromData({1, 1}, {-1}));
  EXPECT_EQ(out.raw()[0], 0.0f);
}

TEST(SessionCacheTest, HitsAndEviction) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddOutput("y");
  BinaryWriter w;
  graph.Serialize(&w);
  const std::string bytes = w.Release();

  SessionCache cache(2);
  auto a = *cache.GetOrCreate("m1", bytes);
  auto b = *cache.GetOrCreate("m1", bytes);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  (void)*cache.GetOrCreate("m2", bytes);
  (void)*cache.GetOrCreate("m3", bytes);  // evicts m1 (capacity 2)
  EXPECT_EQ(cache.size(), 2u);
  (void)*cache.GetOrCreate("m1", bytes);  // miss again
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(SessionCacheTest, Invalidate) {
  Graph graph;
  graph.AddInput("x");
  graph.AddNode(MakeNode("Relu", {"x"}, {"y"}));
  graph.AddOutput("y");
  BinaryWriter w;
  graph.Serialize(&w);
  const std::string bytes = w.Release();
  SessionCache cache(4);
  (void)*cache.GetOrCreate("m", bytes);
  cache.Invalidate("m");
  EXPECT_EQ(cache.size(), 0u);
}

TEST(KernelRegistryTest, SupportedOps) {
  EXPECT_TRUE(IsOpSupported("Gemm"));
  EXPECT_TRUE(IsOpSupported("TreeEnsemble"));
  EXPECT_FALSE(IsOpSupported("Attention"));
  EXPECT_GE(SupportedOps().size(), 20u);
}

}  // namespace
}  // namespace raven::nnrt
