// Edge-case suite for the cross-query inference micro-batch scheduler
// (src/server/predict_batcher): a lone straggler must flush on its window
// deadline, concurrent submissions against one model must coalesce
// byte-identically, different models must never share a tensor, a zero
// window must degenerate to the per-morsel solo path, errors must reach
// every member of a failed batch, and Shutdown must release every pending
// waiter promptly — the server's shutdown-under-load guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nnrt/graph.h"
#include "nnrt/session.h"
#include "server/predict_batcher.h"
#include "tensor/tensor.h"

namespace raven::server {
namespace {

using Clock = std::chrono::steady_clock;

/// A minimal row-independent model: y = x . w, x [N, 3], w [3, 2]. Every
/// registered NNRT kernel computes output row i from input row i alone;
/// MatMul is the simplest representative.
std::shared_ptr<nnrt::InferenceSession> MakeMatmulSession(
    std::vector<float> weights) {
  nnrt::Graph graph;
  graph.AddInput("x");
  graph.AddOutput("y");
  graph.AddInitializer("w", *Tensor::FromData({3, 2}, std::move(weights)));
  nnrt::Node node;
  node.op_type = "MatMul";
  node.name = "mm";
  node.inputs = {"x", "w"};
  node.outputs = {"y"};
  graph.AddNode(std::move(node));
  auto session = nnrt::InferenceSession::Create(std::move(graph));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::shared_ptr<nnrt::InferenceSession>(std::move(session).value());
}

Tensor MakeRows(std::int64_t rows, float seed) {
  std::vector<float> data;
  data.reserve(static_cast<std::size_t>(rows) * 3);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (int c = 0; c < 3; ++c) {
      data.push_back(seed + static_cast<float>(r) * 0.5f +
                     static_cast<float>(c) * 0.25f);
    }
  }
  return *Tensor::FromData({rows, 3}, std::move(data));
}

runtime::InferenceBatcher::Request MakeRequest(
    const std::string& key,
    const std::shared_ptr<nnrt::InferenceSession>& session,
    const Tensor* input, std::int64_t window_micros,
    std::int64_t max_batch_rows) {
  runtime::InferenceBatcher::Request request;
  request.key = key;
  request.session = session;
  request.input = input;
  request.window_micros = window_micros;
  request.max_batch_rows = max_batch_rows;
  return request;
}

TEST(PredictBatcherTest, SingleStragglerFlushesOnDeadline) {
  auto session = MakeMatmulSession({1, 2, 3, 4, 5, 6});
  PredictBatcher batcher;
  const Tensor input = MakeRows(1, 1.0f);
  const Tensor solo = *session->RunSingle(input);

  nnrt::RunStats stats;
  auto result = batcher.Score(
      MakeRequest("m", session, &input, /*window_micros=*/3000,
                  /*max_batch_rows=*/64),
      &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Equals(solo));

  const PredictBatcher::Stats s = batcher.stats();
  EXPECT_EQ(s.submissions, 1);
  EXPECT_EQ(s.batches_flushed, 1);
  EXPECT_EQ(s.deadline_flushes, 1);
  EXPECT_EQ(s.full_flushes, 0);
  EXPECT_EQ(s.rows_coalesced, 0);  // a batch of one coalesces nothing
  EXPECT_EQ(s.solo_runs, 0);
}

TEST(PredictBatcherTest, CoalescesConcurrentSubmissionsByteIdentically) {
  auto session = MakeMatmulSession({1, 2, 3, 4, 5, 6});
  PredictBatcher batcher;
  constexpr int kThreads = 8;
  // Mixed submission sizes: slicing must respect each waiter's row count,
  // not assume single-row requests.
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  for (int i = 0; i < kThreads; ++i) {
    inputs.push_back(MakeRows(1 + (i % 3), static_cast<float>(i)));
    expected.push_back(*session->RunSingle(inputs.back()));
  }

  std::vector<Result<Tensor>> results(kThreads, Status::Internal("unset"));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      nnrt::RunStats stats;
      results[i] = batcher.Score(
          MakeRequest("m", session, &inputs[i], /*window_micros=*/50000,
                      /*max_batch_rows=*/256),
          &stats);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].status().ToString();
    EXPECT_TRUE(results[i]->Equals(expected[i])) << "thread " << i;
  }
  const PredictBatcher::Stats s = batcher.stats();
  EXPECT_EQ(s.submissions, kThreads);
  // Thread scheduling decides the exact grouping, but coalescing must have
  // happened: strictly fewer physical calls than submissions.
  EXPECT_LT(s.batches_flushed, kThreads);
  EXPECT_GT(s.rows_coalesced, 0);
}

TEST(PredictBatcherTest, MixedModelsNeverCoalesce) {
  // Different weights => provably different outputs if rows ever crossed.
  auto session_a = MakeMatmulSession({1, 2, 3, 4, 5, 6});
  auto session_b = MakeMatmulSession({-7, 1, 0.5f, 2, -3, 9});
  PredictBatcher batcher;
  constexpr int kPerModel = 3;
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  for (int i = 0; i < 2 * kPerModel; ++i) {
    const auto& session = (i % 2 == 0) ? session_a : session_b;
    inputs.push_back(MakeRows(1, static_cast<float>(i)));
    expected.push_back(*session->RunSingle(inputs.back()));
  }

  std::vector<Result<Tensor>> results(inputs.size(),
                                      Status::Internal("unset"));
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    threads.emplace_back([&, i] {
      const bool a = i % 2 == 0;
      nnrt::RunStats stats;
      results[i] = batcher.Score(
          MakeRequest(a ? "model-a" : "model-b", a ? session_a : session_b,
                      &inputs[i], /*window_micros=*/20000,
                      /*max_batch_rows=*/kPerModel),
          &stats);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_TRUE(results[i]->Equals(expected[i]))
        << "submission " << i << " was scored by the wrong model";
  }
  // Two distinct groups => at least two physical calls.
  EXPECT_GE(batcher.stats().batches_flushed, 2);
}

TEST(PredictBatcherTest, ZeroWindowDegeneratesToSoloPath) {
  auto session = MakeMatmulSession({1, 2, 3, 4, 5, 6});
  PredictBatcher batcher;
  const Tensor input = MakeRows(4, 2.0f);
  const Tensor solo = *session->RunSingle(input);
  nnrt::RunStats stats;
  auto result = batcher.Score(
      MakeRequest("m", session, &input, /*window_micros=*/0,
                  /*max_batch_rows=*/64),
      &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Equals(solo));
  const PredictBatcher::Stats s = batcher.stats();
  EXPECT_EQ(s.solo_runs, 1);
  EXPECT_EQ(s.batches_flushed, 0);  // never entered a group
}

TEST(PredictBatcherTest, FullMorselsSkipTheWindow) {
  auto session = MakeMatmulSession({1, 2, 3, 4, 5, 6});
  PredictBatcher batcher;
  // At the cap: already amortized, batching again would only add latency.
  const Tensor input = MakeRows(8, 3.0f);
  nnrt::RunStats stats;
  const auto start = Clock::now();
  auto result = batcher.Score(
      MakeRequest("m", session, &input, /*window_micros=*/1000000,
                  /*max_batch_rows=*/8),
      &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Equals(*session->RunSingle(input)));
  EXPECT_EQ(batcher.stats().solo_runs, 1);
  EXPECT_LT(Clock::now() - start, std::chrono::milliseconds(500))
      << "a full morsel must not wait out the batch window";
}

TEST(PredictBatcherTest, FullGroupFlushesBeforeDeadline) {
  auto session = MakeMatmulSession({1, 2, 3, 4, 5, 6});
  PredictBatcher batcher;
  const Tensor a = MakeRows(2, 1.0f);
  const Tensor b = MakeRows(2, 9.0f);
  const Tensor expected_a = *session->RunSingle(a);
  const Tensor expected_b = *session->RunSingle(b);

  // 1s window (the knob's cap): if the full-group wake were broken this
  // test would visibly stall; instead the second submission tops the group
  // off at max_batch_rows=4 and both return in milliseconds.
  const auto start = Clock::now();
  Result<Tensor> result_a = Status::Internal("unset");
  std::thread leader([&] {
    nnrt::RunStats stats;
    result_a = batcher.Score(
        MakeRequest("m", session, &a, /*window_micros=*/1000000,
                    /*max_batch_rows=*/4),
        &stats);
  });
  // Make sure the leader is in first so the follower's rows top it off.
  while (batcher.stats().submissions == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  nnrt::RunStats stats;
  auto result_b = batcher.Score(
      MakeRequest("m", session, &b, /*window_micros=*/1000000,
                  /*max_batch_rows=*/4),
      &stats);
  leader.join();
  const auto elapsed = Clock::now() - start;

  ASSERT_TRUE(result_a.ok());
  ASSERT_TRUE(result_b.ok());
  EXPECT_TRUE(result_a->Equals(expected_a));
  EXPECT_TRUE(result_b->Equals(expected_b));
  const PredictBatcher::Stats s = batcher.stats();
  EXPECT_EQ(s.full_flushes, 1);
  EXPECT_EQ(s.rows_coalesced, 4);
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));
}

TEST(PredictBatcherTest, ErrorReachesEveryMemberWithoutHanging) {
  auto session = MakeMatmulSession({1, 2, 3, 4, 5, 6});
  PredictBatcher batcher;
  // Width 4 against [3, 2] weights: the shared MatMul fails, and BOTH
  // waiters must see the error (a follower left waiting would hang).
  const Tensor bad_a = *Tensor::FromData({1, 4}, {1, 2, 3, 4});
  const Tensor bad_b = *Tensor::FromData({1, 4}, {5, 6, 7, 8});
  Result<Tensor> result_a = Status::OK();
  std::thread t([&] {
    nnrt::RunStats stats;
    result_a = batcher.Score(
        MakeRequest("m", session, &bad_a, /*window_micros=*/30000,
                    /*max_batch_rows=*/2),
        &stats);
  });
  while (batcher.stats().submissions == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  nnrt::RunStats stats;
  auto result_b = batcher.Score(
      MakeRequest("m", session, &bad_b, /*window_micros=*/30000,
                  /*max_batch_rows=*/2),
      &stats);
  t.join();
  EXPECT_FALSE(result_a.ok());
  EXPECT_FALSE(result_b.ok());
}

TEST(PredictBatcherTest, ShutdownReleasesPendingLeaderPromptly) {
  auto session = MakeMatmulSession({1, 2, 3, 4, 5, 6});
  PredictBatcher batcher;
  const Tensor input = MakeRows(1, 4.0f);
  const Tensor solo = *session->RunSingle(input);
  const auto start = Clock::now();
  Result<Tensor> result = Status::Internal("unset");
  std::thread leader([&] {
    nnrt::RunStats stats;
    result = batcher.Score(
        MakeRequest("m", session, &input, /*window_micros=*/1000000,
                    /*max_batch_rows=*/64),
        &stats);
  });
  while (batcher.stats().submissions == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  batcher.Shutdown();
  leader.join();
  // Drained, not dropped: the pending row still ran, byte-identically.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Equals(solo));
  EXPECT_LT(Clock::now() - start, std::chrono::milliseconds(500));
  // After Shutdown new submissions bypass the window entirely.
  nnrt::RunStats stats;
  auto late = batcher.Score(
      MakeRequest("m", session, &input, /*window_micros=*/1000000,
                  /*max_batch_rows=*/64),
      &stats);
  ASSERT_TRUE(late.ok());
  EXPECT_TRUE(late->Equals(solo));
  EXPECT_EQ(batcher.stats().solo_runs, 1);
}

TEST(PredictBatcherTest, ShutdownUnderLoadReleasesAllWaiters) {
  auto session = MakeMatmulSession({1, 2, 3, 4, 5, 6});
  PredictBatcher batcher;
  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const Tensor input = MakeRows(1, static_cast<float>(t * 100 + i));
        const Tensor solo = *session->RunSingle(input);
        nnrt::RunStats stats;
        auto result = batcher.Score(
            MakeRequest("m", session, &input, /*window_micros=*/2000,
                        /*max_batch_rows=*/4),
            &stats);
        // Shutdown drains — it never errors a submission out.
        if (!result.ok() || !result->Equals(solo)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  batcher.Shutdown();  // mid-load: every in-flight waiter must come back
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const PredictBatcher::Stats s = batcher.stats();
  EXPECT_EQ(s.rows_submitted, kThreads * kIters);
  // Conservation: every submitted row either flushed in a batch or ran
  // solo after the close — none vanished, none double-ran.
  EXPECT_EQ(s.rows_flushed + s.solo_runs, kThreads * kIters);
}

}  // namespace
}  // namespace raven::server
