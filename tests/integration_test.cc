// End-to-end tests through the public RavenContext API: store models, run
// inference queries, inspect EXPLAIN output, and exercise the governance
// features the paper motivates (transactional model updates, auditing,
// session caching).

#include <gtest/gtest.h>

#include "data/flight.h"
#include "data/hospital.h"
#include "raven/raven.h"
#include "test_util.h"

namespace raven {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = data::MakeHospitalDataset(3000, 61);
    ASSERT_TRUE(ctx_.RegisterTable("patient_info", data_.patient_info).ok());
    ASSERT_TRUE(ctx_.RegisterTable("blood_tests", data_.blood_tests).ok());
    ASSERT_TRUE(
        ctx_.RegisterTable("prenatal_tests", data_.prenatal_tests).ok());
    pipeline_ = *data::TrainHospitalTree(data_, 7);
    ASSERT_TRUE(ctx_.InsertModel("duration_of_stay",
                                 data::HospitalTreeScript(), pipeline_).ok());
  }

  const std::string kRunningExample =
      test_util::RunningExampleSql("duration_of_stay");

  data::HospitalDataset data_;
  RavenContext ctx_;
  ml::ModelPipeline pipeline_;
};

TEST_F(IntegrationTest, RunningExampleEndToEnd) {
  auto result = ctx_.Query(kRunningExample);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.ColumnNames(),
            (std::vector<std::string>{"id", "length_of_stay"}));
  EXPECT_GT(result->table.num_rows(), 0);
  // Every returned row satisfies both predicates by construction: verify
  // against ground truth.
  const auto& ids = (*result->table.GetColumn("id"))->data;
  const auto& preds = (*result->table.GetColumn("length_of_stay"))->data;
  const auto& pregnant = (*data_.joined.GetColumn("pregnant"))->data;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(pregnant[static_cast<std::size_t>(ids[i])], 1.0);
    EXPECT_GT(preds[i], 7.0);
  }
  // Optimizations fired and the report records them.
  EXPECT_GT(result->optimization.TotalApplications(), 0u);
  EXPECT_FALSE(result->generated_sql.empty());
  EXPECT_GT(result->total_millis, 0.0);
}

TEST_F(IntegrationTest, ResultsMatchDirectPipelineEvaluation) {
  auto result = ctx_.Query(
      "WITH data AS (SELECT * FROM patient_info "
      "  JOIN blood_tests ON id = id JOIN prenatal_tests ON id = id) "
      "SELECT id, p FROM PREDICT(MODEL='duration_of_stay', DATA=data) "
      "WITH(p float)");
  ASSERT_TRUE(result.ok());
  Tensor x = *data_.joined.ToTensor(pipeline_.input_columns);
  Tensor expected = *pipeline_.Predict(x);
  const auto& actual = (*result->table.GetColumn("p"))->data;
  ASSERT_EQ(static_cast<std::int64_t>(actual.size()), expected.dim(0));
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected.raw()[static_cast<std::int64_t>(i)],
                2e-3);
  }
}

TEST_F(IntegrationTest, ExplainShowsPlansAndRules) {
  auto explain = ctx_.Explain(kRunningExample);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("Unified IR"), std::string::npos);
  EXPECT_NE(explain->find("Optimized IR"), std::string::npos);
  EXPECT_NE(explain->find("predicate_model_pruning"), std::string::npos);
  EXPECT_NE(explain->find("Generated SQL"), std::string::npos);
}

TEST_F(IntegrationTest, GroupedInferenceQueryEndToEnd) {
  // The paper's signature grouped shape through the public API, in
  // parallel: per-group PREDICT score distribution, HAVING cut, sorted by
  // score descending.
  ctx_.execution_options().parallelism = 8;
  auto result = ctx_.Query(
      "WITH data AS (SELECT * FROM patient_info "
      "  JOIN blood_tests ON id = id JOIN prenatal_tests ON id = id) "
      "SELECT pregnant, AVG(p) AS mean_los, COUNT(*) AS n "
      "FROM PREDICT(MODEL='duration_of_stay', DATA=data) WITH(p float) "
      "GROUP BY pregnant HAVING COUNT(*) > 5 ORDER BY 2 DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.ColumnNames(),
            (std::vector<std::string>{"pregnant", "mean_los", "n"}));
  ASSERT_EQ(result->table.num_rows(), 2);  // pregnant in {0, 1}
  const auto& means = (*result->table.GetColumn("mean_los"))->data;
  EXPECT_GE(means[0], means[1]);  // ORDER BY 2 DESC
  EXPECT_EQ(result->execution.partitions_used, 8);
}

TEST_F(IntegrationTest, ExplainShowsParallelCostRowsForGroupByAndOrderBy) {
  ctx_.execution_options().parallelism = 8;
  auto explain = ctx_.Explain(
      "WITH data AS (SELECT * FROM patient_info "
      "  JOIN blood_tests ON id = id JOIN prenatal_tests ON id = id) "
      "SELECT pregnant, AVG(p) AS mean_los "
      "FROM PREDICT(MODEL='duration_of_stay', DATA=data) WITH(p float) "
      "GROUP BY pregnant ORDER BY 2 DESC");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  // Parallelism-aware cost rows for every operator, the new ones included.
  EXPECT_NE(explain->find("parallel(dop=8)"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("operators (subtree totals):"), std::string::npos);
  EXPECT_NE(explain->find("GroupBy rows="), std::string::npos) << *explain;
  EXPECT_NE(explain->find("OrderBy rows="), std::string::npos) << *explain;
  EXPECT_NE(explain->find("par(dop=8)="), std::string::npos) << *explain;
  // The optimized plan keeps the grouped shape in the printed IR.
  EXPECT_NE(explain->find("GroupBy [RA] keys=[pregnant]"), std::string::npos)
      << *explain;
}

TEST_F(IntegrationTest, TransactionalModelUpdateChangesResults) {
  const std::string sql =
      "WITH data AS (SELECT * FROM patient_info "
      "  JOIN blood_tests ON id = id JOIN prenatal_tests ON id = id) "
      "SELECT p FROM PREDICT(MODEL='duration_of_stay', DATA=data) "
      "WITH(p float) LIMIT 10";
  auto before = ctx_.Query(sql);
  ASSERT_TRUE(before.ok());
  // Deploy a retrained (shallower) model under the same name.
  auto v2 = *data::TrainHospitalTree(data_, 2);
  ASSERT_TRUE(
      ctx_.UpdateModel("duration_of_stay", data::HospitalTreeScript(), v2)
          .ok());
  auto after = ctx_.Query(sql);
  ASSERT_TRUE(after.ok());
  EXPECT_NE((*before->table.GetColumn("p"))->data,
            (*after->table.GetColumn("p"))->data);
  // Audit trail recorded both operations.
  ASSERT_GE(ctx_.catalog().AuditLog().size(), 2u);
  EXPECT_NE(ctx_.catalog().AuditLog().back().find("UPDATE"),
            std::string::npos);
}

TEST_F(IntegrationTest, ForestQueryViaNnTranslation) {
  auto forest = *data::TrainHospitalForest(data_, 6, 6);
  ASSERT_TRUE(
      ctx_.InsertModel("los_rf", data::HospitalForestScript(), forest).ok());
  auto result = ctx_.Query(
      "WITH data AS (SELECT * FROM patient_info "
      "  JOIN blood_tests ON id = id JOIN prenatal_tests ON id = id) "
      "SELECT id, p FROM PREDICT(MODEL='los_rf', DATA=data) WITH(p float) "
      "WHERE pregnant = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Forests are not inlined; they go through NN translation.
  bool translated = false;
  for (const auto& [rule, fired] : result->optimization.rule_applications) {
    if (rule == "nn_translation" && fired > 0) translated = true;
  }
  EXPECT_TRUE(translated);
  EXPECT_GT(result->execution.nn_wall_micros, 0.0);
}

TEST_F(IntegrationTest, FlightCategoricalPredicateQuery) {
  auto flight_data = data::MakeFlightDataset(4000, 62);
  ASSERT_TRUE(ctx_.RegisterTable("flights", flight_data.flights).ok());
  auto logreg = *data::TrainFlightLogreg(flight_data, 0.01);
  ASSERT_TRUE(
      ctx_.InsertModel("delay", data::FlightLogregScript(), logreg).ok());
  auto result = ctx_.Query(
      "SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) WITH(p float) "
      "WHERE dest = 'AP7' AND p > 0.5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& ids = (*result->table.GetColumn("id"))->data;
  const auto& dest = (*flight_data.flights.GetColumn("dest"))->data;
  for (double id : ids) {
    EXPECT_EQ(dest[static_cast<std::size_t>(id)], 7.0);  // 'AP7' is code 7
  }
}

TEST_F(IntegrationTest, SessionCacheHitsAcrossQueries) {
  // Force the NNRT path (disable inlining) and repeat a query: the second
  // run must reuse the cached inference session (paper §5 observation ii).
  ctx_.optimizer_options().model_inlining = false;
  const std::string sql =
      "WITH data AS (SELECT * FROM patient_info "
      "  JOIN blood_tests ON id = id JOIN prenatal_tests ON id = id) "
      "SELECT p FROM PREDICT(MODEL='duration_of_stay', DATA=data) "
      "WITH(p float) LIMIT 5";
  ASSERT_TRUE(ctx_.Query(sql).ok());
  const auto hits_before = ctx_.session_cache().hits();
  ASSERT_TRUE(ctx_.Query(sql).ok());
  EXPECT_GT(ctx_.session_cache().hits(), hits_before);
}

TEST_F(IntegrationTest, QueryErrorsSurfaceCleanly) {
  EXPECT_FALSE(ctx_.Query("SELECT * FROM nope").ok());
  EXPECT_FALSE(
      ctx_.Query("SELECT * FROM PREDICT(MODEL='missing', DATA=patient_info)")
          .ok());
  EXPECT_FALSE(ctx_.Query("COMPLETELY INVALID").ok());
}

TEST_F(IntegrationTest, ClusteredModelEndToEnd) {
  auto flight_data = data::MakeFlightDataset(3000, 63);
  ASSERT_TRUE(ctx_.RegisterTable("flights2", flight_data.flights).ok());
  auto logreg = *data::TrainFlightLogreg(flight_data, 0.0);
  ASSERT_TRUE(
      ctx_.InsertModel("delay2", data::FlightLogregScript(), logreg).ok());
  const std::string sql =
      "SELECT id, p FROM PREDICT(MODEL='delay2', DATA=flights2) "
      "WITH(p float)";
  auto reference = ctx_.Query(sql);
  ASSERT_TRUE(reference.ok());
  optimizer::ClusteringOptions options;
  options.k = 6;
  ASSERT_TRUE(ctx_.BuildClusteredModel("delay2", "flights2", options).ok());
  auto clustered = ctx_.Query(sql);
  ASSERT_TRUE(clustered.ok());
  bool used_clustering = false;
  for (const auto& [rule, fired] : clustered->optimization.rule_applications) {
    if (rule == "model_clustering" && fired > 0) used_clustering = true;
  }
  EXPECT_TRUE(used_clustering);
  const auto& e = (*reference->table.GetColumn("p"))->data;
  const auto& a = (*clustered->table.GetColumn("p"))->data;
  ASSERT_EQ(e.size(), a.size());
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_NEAR(e[i], a[i], 2e-3) << "row " << i;
  }
}

TEST_F(IntegrationTest, ParallelExecutionOption) {
  ctx_.execution_options().parallelism = 4;
  auto result = ctx_.Query(
      "SELECT id, p FROM "
      "PREDICT(MODEL='duration_of_stay', DATA=patient_info_joined_missing)");
  EXPECT_FALSE(result.ok());  // bad table still errors cleanly

  // Single-table parallel predict works and matches sequential.
  ASSERT_TRUE(ctx_.RegisterTable("patients", data_.joined).ok());
  const std::string sql =
      "SELECT id, p FROM PREDICT(MODEL='duration_of_stay', DATA=patients) "
      "WITH(p float)";
  auto parallel = ctx_.Query(sql);
  ASSERT_TRUE(parallel.ok());
  ctx_.execution_options().parallelism = 1;
  auto sequential = ctx_.Query(sql);
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ((*parallel->table.GetColumn("p"))->data,
            (*sequential->table.GetColumn("p"))->data);
}

}  // namespace
}  // namespace raven
