// Observability-layer tests: the obs::Trace span arena (nesting, worker
// splicing, the wire round trip, the 4096-span cap), the obs metrics
// primitives (counters, gauges, log-bucket histograms, quantile
// interpolation, Prometheus text rendering), and the EXPLAIN ANALYZE /
// StatsCollector accounting contract — fused chains own exactly one slot
// on the chain head, aggregates surface sink + rescan as separate slots,
// and instrumented execution returns byte-identical results.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/hospital.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "raven/raven.h"
#include "test_util.h"

namespace raven::obs {
namespace {

const TraceSpan* FindSpan(const std::vector<TraceSpan>& spans,
                          const std::string& name) {
  for (const TraceSpan& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(TraceTest, StartEndSpanRecordsNestingAndDetail) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  const std::int64_t outer = trace.StartSpan("parse");
  const std::int64_t inner = trace.StartSpan("lex", outer);
  EXPECT_EQ(outer, 1);
  EXPECT_EQ(inner, 2);
  trace.EndSpan(inner, "tokens=7");
  trace.EndSpan(outer);

  const std::vector<TraceSpan> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(spans[0].name, "parse");
  EXPECT_EQ(spans[0].parent, 0);
  EXPECT_GE(spans[0].duration_micros, 0);
  EXPECT_EQ(spans[1].parent, outer);
  EXPECT_EQ(spans[1].detail, "tokens=7");
  // The child closed before the parent, so it cannot outlast it.
  EXPECT_LE(spans[1].start_micros + spans[1].duration_micros,
            spans[0].start_micros + spans[0].duration_micros);
}

TEST(TraceTest, UnclosedSpanStaysOpenAndUnknownEndIsIgnored) {
  Trace trace;
  const std::int64_t id = trace.StartSpan("execute");
  trace.EndSpan(0);    // "no span" handle from a capped arena
  trace.EndSpan(999);  // never handed out
  const std::vector<TraceSpan> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].id, id);
  EXPECT_EQ(spans[0].duration_micros, -1) << "open spans carry -1";
}

TEST(TraceTest, AddSpanStoresExplicitTiming) {
  Trace trace;
  const std::int64_t id =
      trace.AddSpan("op:Scan(patients)", 0, 120, 340, "rows=600");
  const std::vector<TraceSpan> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].id, id);
  EXPECT_EQ(spans[0].start_micros, 120);
  EXPECT_EQ(spans[0].duration_micros, 340);
  EXPECT_EQ(spans[0].detail, "rows=600");
}

TEST(TraceTest, SpliceOffsetsIdsAndRebasesWorkerTimes) {
  Trace trace;
  const std::int64_t exchange = trace.StartSpan("exchange");

  // A worker-local tree: ids 1..2, times relative to the worker's start.
  std::vector<TraceSpan> worker(2);
  worker[0] = TraceSpan{1, 0, "execute", 5, 100, "mode=sequential"};
  worker[1] = TraceSpan{2, 1, "fragment.decode", 6, 10, ""};
  trace.Splice(exchange, 1000, worker);
  trace.EndSpan(exchange);

  const std::vector<TraceSpan> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  const TraceSpan* grafted = FindSpan(spans, "execute");
  const TraceSpan* decode = FindSpan(spans, "fragment.decode");
  ASSERT_NE(grafted, nullptr);
  ASSERT_NE(decode, nullptr);
  // Worker-local roots hang off the exchange; internal links are
  // preserved through the id offset; times re-base onto coordinator time.
  EXPECT_EQ(grafted->parent, exchange);
  EXPECT_EQ(decode->parent, grafted->id);
  EXPECT_EQ(grafted->start_micros, 1005);
  EXPECT_EQ(decode->start_micros, 1006);
  EXPECT_EQ(grafted->duration_micros, 100);
  // Ids handed out after the splice do not collide with grafted ones.
  const std::int64_t next = trace.StartSpan("after");
  EXPECT_GT(next, decode->id);
}

TEST(TraceTest, ArenaCapsAtMaxSpansAndReportsDrops) {
  Trace trace;
  for (std::size_t i = 0; i < Trace::kMaxSpans; ++i) {
    ASSERT_GT(trace.AddSpan("s", 0, 0, 1), 0);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(trace.AddSpan("overflow", 0, 0, 1), 0);
    EXPECT_EQ(trace.StartSpan("overflow"), 0);
  }
  EXPECT_EQ(trace.Snapshot().size(), Trace::kMaxSpans);
  const std::string json = trace.RenderJsonLine("q", 1);
  EXPECT_NE(json.find("\"dropped_spans\":20"), std::string::npos) << json;
}

TEST(TraceTest, SerializeDeserializeRoundTrip) {
  std::vector<TraceSpan> spans(3);
  spans[0] = TraceSpan{1, 0, "execute", 0, 500, "mode=parallel dop=4"};
  spans[1] = TraceSpan{2, 1, "op:Fused[Filter+Project]", 3, 90, "rows=12"};
  spans[2] =
      TraceSpan{3, 1, std::string("odd\0name", 8), -7, 0, "detail \"q\""};
  const std::string bytes = Trace::SerializeSpans(spans);

  auto decoded = Trace::DeserializeSpans(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ((*decoded)[i].id, spans[i].id);
    EXPECT_EQ((*decoded)[i].parent, spans[i].parent);
    EXPECT_EQ((*decoded)[i].name, spans[i].name);
    EXPECT_EQ((*decoded)[i].start_micros, spans[i].start_micros);
    EXPECT_EQ((*decoded)[i].duration_micros, spans[i].duration_micros);
    EXPECT_EQ((*decoded)[i].detail, spans[i].detail);
  }
  // Truncation anywhere is a clean error, never a partial parse.
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{1}}) {
    EXPECT_FALSE(Trace::DeserializeSpans(bytes.substr(0, cut)).ok())
        << "cut=" << cut;
  }
}

TEST(TraceTest, JsonEscapeCoversQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(TraceTest, RenderJsonLineEmitsEscapedSpans) {
  Trace trace;
  trace.AddSpan("exec\"ute", 0, 3, 40, "k=\"v\"");
  const std::string json =
      trace.RenderJsonLine("SELECT \"x\"\nFROM t", 12345);
  EXPECT_NE(json.find("\"query\":\"SELECT \\\"x\\\"\\nFROM t\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"total_micros\":12345"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"exec\\\"ute\""), std::string::npos);
  EXPECT_NE(json.find("\"start_micros\":3"), std::string::npos);
  EXPECT_NE(json.find("\"duration_micros\":40"), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"k=\\\"v\\\"\""), std::string::npos);
  EXPECT_EQ(json.find("dropped_spans"), std::string::npos)
      << "no drops => no dropped_spans key";
  EXPECT_EQ(json.find('\n'), std::string::npos) << "one line, always";
}

TEST(TraceTest, RenderTreeIndentsByParentage) {
  Trace trace;
  const std::int64_t execute = trace.AddSpan("execute", 0, 0, 100);
  trace.AddSpan("op:Scan(t)", execute, 0, 20, "rows=5");
  trace.AddSpan("parse", 0, 0, 3);
  const std::string tree = trace.RenderTree();
  EXPECT_NE(tree.find("execute  start=0us dur=100us"), std::string::npos)
      << tree;
  EXPECT_NE(tree.find("\n  op:Scan(t)  start=0us dur=20us  rows=5"),
            std::string::npos)
      << tree;
  EXPECT_NE(tree.find("\nparse"), std::string::npos) << tree;
}

TEST(TraceTest, ScopedSpanIsNoOpOnNullTrace) {
  {
    ScopedSpan null_span(nullptr, "anything");
    EXPECT_EQ(null_span.id(), 0);
    null_span.SetDetail("ignored");
  }
  Trace trace;
  {
    ScopedSpan span(&trace, "admission.wait");
    EXPECT_GT(span.id(), 0);
    span.SetDetail("wait_micros=0");
  }
  const std::vector<TraceSpan> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "admission.wait");
  EXPECT_EQ(spans[0].detail, "wait_micros=0");
  EXPECT_GE(spans[0].duration_micros, 0);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAddsAndSets) {
  Counter c;
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.Value(), 7);
  c.Set(100);  // scrape-time fill from a lifetime source
  EXPECT_EQ(c.Value(), 100);
}

TEST(MetricsTest, GaugeHoldsPointInTimeValue) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
}

TEST(MetricsTest, LogBucketsGrowGeometrically) {
  const std::vector<double> bounds = LogBuckets(0.5, 2.0, 4);
  EXPECT_EQ(bounds, (std::vector<double>{0.5, 1.0, 2.0, 4.0}));
}

TEST(MetricsTest, HistogramObservesIntoLeInclusiveBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // bucket le=1
  h.Observe(1.0);  // le is inclusive: still bucket le=1
  h.Observe(3.0);  // bucket le=4
  h.Observe(99.0);  // +Inf
  EXPECT_EQ(h.Count(), 4);
  EXPECT_EQ(h.Sum(), 103.5);
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 0);
  EXPECT_EQ(h.BucketCount(2), 1);
  EXPECT_EQ(h.BucketCount(3), 1) << "+Inf bucket";
}

TEST(MetricsTest, QuantileInterpolatesInsideContainingBucket) {
  Histogram empty({1.0, 2.0});
  EXPECT_EQ(empty.Quantile(0.5), 0.0);

  Histogram h({10.0, 20.0});
  h.Observe(5.0);
  // One observation in [0, 10): the median interpolates to mid-bucket and
  // the max clamps to the bucket's upper bound.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);

  // Everything in +Inf: the conservative answer is the last finite bound.
  Histogram overflow({10.0});
  overflow.Observe(1e9);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.5), 10.0);
}

TEST(MetricsTest, RegistryRendersPrometheusTextFormat) {
  MetricsRegistry registry;
  Counter* served = registry.AddCounter("test_served_total",
                                        "Statements served.");
  Gauge* ratio = registry.AddGauge("test_hit_ratio", "Cache hit ratio.");
  Histogram* lat = registry.AddHistogram("test_latency_seconds",
                                         "Latency.", {0.0005, 0.001});
  served->Add(3);
  ratio->Set(0.0005);  // exercises shortest-round-trip float rendering
  lat->Observe(0.0004);
  lat->Observe(0.001);
  lat->Observe(5.0);

  const std::string out = registry.Render();
  EXPECT_NE(out.find("# HELP test_served_total Statements served.\n"
                     "# TYPE test_served_total counter\n"
                     "test_served_total 3\n"),
            std::string::npos)
      << out;
  // No %.17g artifacts: the bound renders as written.
  EXPECT_NE(out.find("test_hit_ratio 0.0005\n"), std::string::npos) << out;
  EXPECT_NE(out.find("# TYPE test_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(out.find("test_latency_seconds_bucket{le=\"0.0005\"} 1\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("test_latency_seconds_bucket{le=\"0.001\"} 2\n"),
            std::string::npos)
      << "buckets are cumulative";
  EXPECT_NE(out.find("test_latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("test_latency_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(out.find("test_latency_seconds_sum "), std::string::npos);
}

TEST(MetricsTest, LabeledSeriesShareOneFamilyHeader) {
  MetricsRegistry registry;
  registry.AddCounter("test_backend_total", "Per-backend.",
                      "backend=\"simd\"")
      ->Add(1);
  registry.AddCounter("test_backend_total", "Per-backend.",
                      "backend=\"reference\"")
      ->Add(2);
  const std::string out = registry.Render();
  std::size_t headers = 0;
  for (std::size_t pos = out.find("# TYPE test_backend_total");
       pos != std::string::npos;
       pos = out.find("# TYPE test_backend_total", pos + 1)) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u) << out;
  EXPECT_NE(out.find("test_backend_total{backend=\"simd\"} 1\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("test_backend_total{backend=\"reference\"} 2\n"),
            std::string::npos)
      << out;
}

}  // namespace
}  // namespace raven::obs

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE / StatsCollector accounting contract
// ---------------------------------------------------------------------------

namespace raven {
namespace {

void ExpectTablesIdentical(const relational::Table& expected,
                           const relational::Table& actual) {
  ASSERT_EQ(expected.ColumnNames(), actual.ColumnNames());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  for (std::int64_t c = 0; c < expected.num_columns(); ++c) {
    const auto& lhs = expected.columns()[static_cast<std::size_t>(c)].data;
    const auto& rhs = actual.columns()[static_cast<std::size_t>(c)].data;
    for (std::size_t r = 0; r < lhs.size(); ++r) {
      ASSERT_TRUE(lhs[r] == rhs[r] ||
                  (std::isnan(lhs[r]) && std::isnan(rhs[r])))
          << "col " << c << " row " << r << ": " << lhs[r]
          << " != " << rhs[r];
    }
  }
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hospital_ = data::MakeHospitalDataset(600, 13);
    ASSERT_NO_FATAL_FAILURE(
        test_util::RegisterHospitalTables(&ctx_.catalog(), hospital_));
    test_util::InsertHospitalTreeModel(&ctx_.catalog(), hospital_, 4);
    ASSERT_FALSE(HasFailure()) << "fixture setup failed";
  }

  data::HospitalDataset hospital_;
  RavenContext ctx_;
};

TEST_F(ExplainAnalyzeTest, FusedChainOwnsOneSlotOnTheChainHead) {
  auto analyzed =
      ctx_.ExplainAnalyze("SELECT id, age FROM patients WHERE age > 40");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  ASSERT_GE(analyzed->stats.fused_chains, 1) << analyzed->text;

  std::int64_t fused_slots = 0;
  for (const auto& op : analyzed->stats.operators) {
    EXPECT_NE(op.node, nullptr) << op.op << " lost its IR node identity";
    if (op.op.rfind("Fused[", 0) == 0) ++fused_slots;
    // Swallowed chain stages never own a slot of their own: the fused
    // operator is one pass per chunk, so per-stage counters cannot exist.
    EXPECT_NE(op.op, "Filter") << analyzed->text;
  }
  EXPECT_EQ(fused_slots, analyzed->stats.fused_chains) << analyzed->text;
  EXPECT_NE(analyzed->text.find("[Fused["), std::string::npos)
      << analyzed->text;
  EXPECT_NE(analyzed->text.find("[in Fused["), std::string::npos)
      << analyzed->text;
}

TEST_F(ExplainAnalyzeTest, AggregateSurfacesSinkAndRescanAsSeparateSlots) {
  // Parallel execution materializes the grouped aggregate between
  // pipelines; sequential runs keep it in one pass and the rescan slot
  // never exists — the two-slot contract is a parallel-plan property.
  ctx_.execution_options().parallelism = 4;
  auto analyzed = ctx_.ExplainAnalyze(
      "SELECT gender, COUNT(*) AS n, AVG(age) AS a FROM patients "
      "GROUP BY gender");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();

  // One IR node, two physical operators: the grouped sink and the later
  // scan of its materialized result must not share counters.
  bool two_slot_node = false;
  const auto& ops = analyzed->stats.operators;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      if (ops[i].node == ops[j].node && ops[i].op != ops[j].op) {
        two_slot_node = true;
      }
    }
  }
  EXPECT_TRUE(two_slot_node) << analyzed->text;
  EXPECT_NE(analyzed->text.find("[GroupBy:"), std::string::npos)
      << analyzed->text;
  EXPECT_NE(analyzed->text.find("[Materialized(GroupBy):"),
            std::string::npos)
      << analyzed->text;
}

TEST_F(ExplainAnalyzeTest, ScanCountersReportActualRowsAndOpenMicros) {
  auto analyzed = ctx_.ExplainAnalyze("SELECT id FROM patients");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  const runtime::OperatorStats* scan = nullptr;
  for (const auto& op : analyzed->stats.operators) {
    if (op.op.rfind("Scan(", 0) == 0) scan = &op;
  }
  ASSERT_NE(scan, nullptr) << analyzed->text;
  EXPECT_EQ(scan->rows, 600);
  EXPECT_GT(scan->chunks, 0);
  EXPECT_GE(scan->open_micros, 0.0);
  EXPECT_GE(scan->wall_micros, 0.0);
}

TEST_F(ExplainAnalyzeTest, ResultTableIsByteIdenticalToPlainExecution) {
  const std::string sql =
      "SELECT id, age, bp FROM patients WHERE bp > 90 ORDER BY id";
  for (std::int64_t dop : {1, 8}) {
    SCOPED_TRACE("dop=" + std::to_string(dop));
    ctx_.execution_options().parallelism = dop;
    auto plain = ctx_.Query(sql);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    auto analyzed = ctx_.ExplainAnalyze(sql);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    ASSERT_NO_FATAL_FAILURE(
        ExpectTablesIdentical(plain->table, analyzed->table));
  }
}

TEST_F(ExplainAnalyzeTest, TotalsReportModeResultRowsAndPredictScoring) {
  // Keep a real Predict operator in the plan: inlining would compile the
  // small tree model into CASE expressions and score nothing via NNRT.
  ctx_.optimizer_options().model_inlining = false;
  auto analyzed = ctx_.ExplainAnalyze(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(p float) WHERE p > 5");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  const std::string& text = analyzed->text;
  EXPECT_NE(text.find("=== EXPLAIN ANALYZE ==="), std::string::npos);
  EXPECT_NE(text.find("=== Execution totals ==="), std::string::npos);
  EXPECT_NE(text.find("mode="), std::string::npos);
  EXPECT_NE(text.find("result_rows=" +
                      std::to_string(analyzed->table.num_rows())),
            std::string::npos)
      << text;
  // The PREDICT line distinguishes rows *scored* from rows returned: the
  // model sees every patient; the WHERE prunes afterwards.
  EXPECT_EQ(analyzed->stats.rows_out, 600);
  EXPECT_NE(text.find("rows_scored=600"), std::string::npos) << text;
  EXPECT_NE(text.find("predict_batches="), std::string::npos) << text;
  EXPECT_NE(text.find("total_millis="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, TraceRecordsExecuteSpanWithOperatorAggregates) {
  obs::Trace trace;
  ctx_.execution_options().trace = &trace;
  auto result =
      ctx_.Query("SELECT gender, COUNT(*) AS n FROM patients GROUP BY gender");
  ctx_.execution_options().trace = nullptr;
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const std::vector<obs::TraceSpan> spans = trace.Snapshot();
  const obs::TraceSpan* execute = nullptr;
  std::int64_t op_spans = 0;
  for (const auto& s : spans) {
    if (s.name == "execute") execute = &s;
  }
  ASSERT_NE(execute, nullptr);
  EXPECT_NE(execute->detail.find("mode="), std::string::npos)
      << execute->detail;
  for (const auto& s : spans) {
    if (s.name.rfind("op:", 0) == 0) {
      ++op_spans;
      EXPECT_EQ(s.parent, execute->id) << s.name;
      EXPECT_NE(s.detail.find("rows="), std::string::npos) << s.name;
    }
  }
  EXPECT_GT(op_spans, 0);
}

}  // namespace
}  // namespace raven
