#ifndef RAVEN_OPTIMIZER_COST_MODEL_H_
#define RAVEN_OPTIMIZER_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ir/ir.h"
#include "relational/catalog.h"

namespace raven::optimizer {

/// Cardinality and cost estimate for a plan subtree. Units are abstract
/// "work units" (roughly: one scalar op). This is the seed of the paper's
/// planned cost-based Cascades optimizer (§4.3): the heuristic pipeline
/// uses it today to choose between model inlining and NN translation, and
/// EXPLAIN surfaces it.
struct PlanCost {
  double output_rows = 0.0;
  double total_cost = 0.0;
};

/// Per-row scoring cost of a model pipeline (featurization + predictor).
double PipelineRowCost(const ml::ModelPipeline& pipeline);

/// Static per-row cost of an NNRT graph (sum of kernel flop estimates for a
/// single-row batch).
double NnGraphRowCost(const nnrt::Graph& graph);

/// Estimates cardinality and cost bottom-up. Filters use a fixed 0.4
/// selectivity unless the predicate is a conjunction (0.4 per conjunct);
/// joins assume key-FK matches (|left| rows out).
///
/// `parallelism` > 1 costs the plan as the morsel-driven parallel executor
/// runs it: scans, filters, projections, model scoring, join build/probe
/// and (grouped-)aggregate accumulation divide across workers, while
/// per-worker startup, the ordered result merge, an ORDER BY's stable sort
/// (a sequential gather-and-sort tail), the GROUP BY striped-table merge,
/// and any subtree under a LIMIT (which executes sequentially) do not.
/// This keeps the optimizer honest about plans that parallelize well
/// versus ones that are merge- or startup-bound.
Result<PlanCost> EstimateCost(const ir::IrNode& node,
                              const relational::Catalog& catalog,
                              std::int64_t parallelism = 1);

/// The dop×workers case: costs the plan as ExecutionMode::kDistributed runs
/// it over a pool of `workers`. Each maximal distributable fragment
/// (row-wise chain over one scan, ir::CollectDistributableFragments) has
/// its compute divided across the pool, plus the fragment-shipping tax the
/// in-process modes never pay: serializing the scan partition out and the
/// result rows back over the worker pipes, and a per-partition frame
/// overhead. The remainder above the fragments stays sequential, exactly
/// like the executor runs it. `workers` <= 1 degenerates to the sequential
/// estimate. EXPLAIN surfaces this as the "distributed(workers=N)" row so
/// plans that are shipping-bound (cheap fragments, wide scans) are visibly
/// worse than their in-process costing.
Result<PlanCost> EstimateDistributedCost(const ir::IrNode& node,
                                         const relational::Catalog& catalog,
                                         std::int64_t workers);

/// One per-operator EXPLAIN cost row: an operator of `root`'s plan with its
/// subtree's cardinality and cost run sequentially and at the requested
/// parallelism *within the enclosing plan* — the worker-startup and final
/// result-merge tail are charged to the root row only, and subtrees under a
/// LIMIT are costed at dop 1, exactly like the executor runs them.
struct OperatorCostRow {
  const ir::IrNode* node = nullptr;
  int depth = 0;  ///< nesting depth under the plan root (for indentation)
  double output_rows = 0.0;
  double sequential_cost = 0.0;
  double parallel_cost = 0.0;
  /// The runtime fuses this operator into its parent (both are part of one
  /// filter/project/PREDICT chain executing as a single pass per chunk, see
  /// ir::IsFusablePipelineKind). Cost numbers are unchanged — fusion saves
  /// operator-boundary copies, not the per-row work this model counts —
  /// but EXPLAIN marks the row so the printed tree matches execution.
  bool fused_into_parent = false;
};

/// Costs every operator of the plan in one bottom-up pass per dop (O(plan
/// size), not one EstimateCost call per node) and returns the rows in
/// preorder; rows.front() is the root and matches EstimateCost(root, ...).
Result<std::vector<OperatorCostRow>> EstimateOperatorCosts(
    const ir::IrNode& root, const relational::Catalog& catalog,
    std::int64_t parallelism);

}  // namespace raven::optimizer

#endif  // RAVEN_OPTIMIZER_COST_MODEL_H_
