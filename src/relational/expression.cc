#include "relational/expression.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace raven::relational {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

Status ColumnRefExpr::Evaluate(const DataChunk& chunk,
                               std::vector<double>* out) const {
  RAVEN_ASSIGN_OR_RETURN(std::int64_t idx, chunk.ColumnIndex(name_));
  *out = chunk.cols[static_cast<std::size_t>(idx)];
  return Status::OK();
}

Status LiteralExpr::Evaluate(const DataChunk& chunk,
                             std::vector<double>* out) const {
  out->assign(static_cast<std::size_t>(chunk.num_rows()), value_);
  return Status::OK();
}

std::string LiteralExpr::ToString() const {
  std::ostringstream os;
  os << value_;
  return os.str();
}

Status ParamExpr::Evaluate(const DataChunk& chunk,
                           std::vector<double>* out) const {
  (void)chunk;
  (void)out;
  return Status::ExecutionError("unbound prepared-statement parameter ?" +
                                std::to_string(index_ + 1) +
                                " (EXECUTE must bind every ? placeholder)");
}

std::string ParamExpr::ToString() const {
  return "?" + std::to_string(index_ + 1);
}

// The Evaluate() implementations below allocate fresh temporaries per
// interior node per chunk — acceptable for the reference interpreter, and
// exactly the overhead KernelProgram's register pool removes on the query
// path. Keep any semantic change here mirrored in kernel.cc: the two
// engines must stay bit-identical (enforced by kernel_test.cc).
Status CompareExpr::Evaluate(const DataChunk& chunk,
                             std::vector<double>* out) const {
  std::vector<double> l;
  std::vector<double> r;
  RAVEN_RETURN_IF_ERROR(lhs_->Evaluate(chunk, &l));
  RAVEN_RETURN_IF_ERROR(rhs_->Evaluate(chunk, &r));
  out->resize(l.size());
  switch (op_) {
    case CompareOp::kEq:
      for (std::size_t i = 0; i < l.size(); ++i) (*out)[i] = l[i] == r[i];
      break;
    case CompareOp::kNe:
      for (std::size_t i = 0; i < l.size(); ++i) (*out)[i] = l[i] != r[i];
      break;
    case CompareOp::kLt:
      for (std::size_t i = 0; i < l.size(); ++i) (*out)[i] = l[i] < r[i];
      break;
    case CompareOp::kLe:
      for (std::size_t i = 0; i < l.size(); ++i) (*out)[i] = l[i] <= r[i];
      break;
    case CompareOp::kGt:
      for (std::size_t i = 0; i < l.size(); ++i) (*out)[i] = l[i] > r[i];
      break;
    case CompareOp::kGe:
      for (std::size_t i = 0; i < l.size(); ++i) (*out)[i] = l[i] >= r[i];
      break;
  }
  return Status::OK();
}

std::string CompareExpr::ToString() const {
  return "(" + lhs_->ToString() + " " + CompareOpToString(op_) + " " +
         rhs_->ToString() + ")";
}

Status ArithExpr::Evaluate(const DataChunk& chunk,
                           std::vector<double>* out) const {
  std::vector<double> l;
  std::vector<double> r;
  RAVEN_RETURN_IF_ERROR(lhs_->Evaluate(chunk, &l));
  RAVEN_RETURN_IF_ERROR(rhs_->Evaluate(chunk, &r));
  out->resize(l.size());
  switch (op_) {
    case ArithOp::kAdd:
      for (std::size_t i = 0; i < l.size(); ++i) (*out)[i] = l[i] + r[i];
      break;
    case ArithOp::kSub:
      for (std::size_t i = 0; i < l.size(); ++i) (*out)[i] = l[i] - r[i];
      break;
    case ArithOp::kMul:
      for (std::size_t i = 0; i < l.size(); ++i) (*out)[i] = l[i] * r[i];
      break;
    case ArithOp::kDiv:
      for (std::size_t i = 0; i < l.size(); ++i) (*out)[i] = l[i] / r[i];
      break;
  }
  return Status::OK();
}

std::string ArithExpr::ToString() const {
  const char* op = "?";
  switch (op_) {
    case ArithOp::kAdd:
      op = "+";
      break;
    case ArithOp::kSub:
      op = "-";
      break;
    case ArithOp::kMul:
      op = "*";
      break;
    case ArithOp::kDiv:
      op = "/";
      break;
  }
  return "(" + lhs_->ToString() + " " + op + " " + rhs_->ToString() + ")";
}

Status LogicalExpr::Evaluate(const DataChunk& chunk,
                             std::vector<double>* out) const {
  std::vector<double> l;
  RAVEN_RETURN_IF_ERROR(lhs_->Evaluate(chunk, &l));
  if (op_ == LogicalOp::kNot) {
    out->resize(l.size());
    for (std::size_t i = 0; i < l.size(); ++i) (*out)[i] = l[i] == 0.0;
    return Status::OK();
  }
  if (rhs_ == nullptr) {
    return Status::InvalidArgument("binary logical op missing rhs");
  }
  std::vector<double> r;
  RAVEN_RETURN_IF_ERROR(rhs_->Evaluate(chunk, &r));
  out->resize(l.size());
  if (op_ == LogicalOp::kAnd) {
    for (std::size_t i = 0; i < l.size(); ++i) {
      (*out)[i] = (l[i] != 0.0 && r[i] != 0.0) ? 1.0 : 0.0;
    }
  } else {
    for (std::size_t i = 0; i < l.size(); ++i) {
      (*out)[i] = (l[i] != 0.0 || r[i] != 0.0) ? 1.0 : 0.0;
    }
  }
  return Status::OK();
}

std::string LogicalExpr::ToString() const {
  if (op_ == LogicalOp::kNot) return "NOT " + lhs_->ToString();
  return "(" + lhs_->ToString() +
         (op_ == LogicalOp::kAnd ? " AND " : " OR ") + rhs_->ToString() + ")";
}

Status CaseWhenExpr::Evaluate(const DataChunk& chunk,
                              std::vector<double>* out) const {
  const std::size_t n = static_cast<std::size_t>(chunk.num_rows());
  std::vector<double> else_vals;
  if (else_ != nullptr) {
    RAVEN_RETURN_IF_ERROR(else_->Evaluate(chunk, &else_vals));
  } else {
    else_vals.assign(n, 0.0);
  }
  *out = std::move(else_vals);
  std::vector<bool> decided(n, false);
  std::vector<double> cond;
  std::vector<double> val;
  for (const auto& arm : arms_) {
    RAVEN_RETURN_IF_ERROR(arm.when->Evaluate(chunk, &cond));
    RAVEN_RETURN_IF_ERROR(arm.then->Evaluate(chunk, &val));
    for (std::size_t i = 0; i < n; ++i) {
      if (!decided[i] && cond[i] != 0.0) {
        (*out)[i] = val[i];
        decided[i] = true;
      }
    }
  }
  return Status::OK();
}

std::string CaseWhenExpr::ToString() const {
  std::ostringstream os;
  os << "CASE";
  for (const auto& arm : arms_) {
    os << " WHEN " << arm.when->ToString() << " THEN "
       << arm.then->ToString();
  }
  if (else_ != nullptr) os << " ELSE " << else_->ToString();
  os << " END";
  return os.str();
}

ExprPtr CaseWhenExpr::Clone() const {
  std::vector<Arm> arms;
  arms.reserve(arms_.size());
  for (const auto& arm : arms_) {
    arms.push_back(Arm{arm.when->Clone(), arm.then->Clone()});
  }
  return std::make_unique<CaseWhenExpr>(std::move(arms),
                                        else_ ? else_->Clone() : nullptr);
}

void CaseWhenExpr::CollectColumns(std::set<std::string>* out) const {
  for (const auto& arm : arms_) {
    arm.when->CollectColumns(out);
    arm.then->CollectColumns(out);
  }
  if (else_ != nullptr) else_->CollectColumns(out);
}

Status InExpr::Evaluate(const DataChunk& chunk,
                        std::vector<double>* out) const {
  std::vector<double> v;
  RAVEN_RETURN_IF_ERROR(input_->Evaluate(chunk, &v));
  out->resize(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    bool found = false;
    for (double candidate : values_) {
      if (v[i] == candidate) {
        found = true;
        break;
      }
    }
    (*out)[i] = found ? 1.0 : 0.0;
  }
  return Status::OK();
}

std::string InExpr::ToString() const {
  std::ostringstream os;
  os << input_->ToString() << " IN (";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << ", ";
    os << values_[i];
  }
  os << ")";
  return os.str();
}

ExprPtr Col(const std::string& name) {
  return std::make_unique<ColumnRefExpr>(name);
}
ExprPtr Lit(double value) { return std::make_unique<LiteralExpr>(value); }
ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<CompareExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CompareOp::kEq, std::move(lhs), std::move(rhs));
}
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CompareOp::kLt, std::move(lhs), std::move(rhs));
}
ExprPtr Le(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CompareOp::kLe, std::move(lhs), std::move(rhs));
}
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CompareOp::kGt, std::move(lhs), std::move(rhs));
}
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CompareOp::kGe, std::move(lhs), std::move(rhs));
}
ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(lhs),
                                       std::move(rhs));
}
ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<LogicalExpr>(LogicalOp::kOr, std::move(lhs),
                                       std::move(rhs));
}
ExprPtr Not(ExprPtr operand) {
  return std::make_unique<LogicalExpr>(LogicalOp::kNot, std::move(operand),
                                       nullptr);
}

void SerializeExpr(const Expr& expr, BinaryWriter* writer) {
  writer->WriteU8(static_cast<std::uint8_t>(expr.kind()));
  switch (expr.kind()) {
    case Expr::Kind::kColumnRef:
      writer->WriteString(static_cast<const ColumnRefExpr&>(expr).name());
      return;
    case Expr::Kind::kLiteral:
      writer->WriteF64(static_cast<const LiteralExpr&>(expr).value());
      return;
    case Expr::Kind::kCompare: {
      const auto& cmp = static_cast<const CompareExpr&>(expr);
      writer->WriteU8(static_cast<std::uint8_t>(cmp.op()));
      SerializeExpr(cmp.lhs(), writer);
      SerializeExpr(cmp.rhs(), writer);
      return;
    }
    case Expr::Kind::kArith: {
      const auto& arith = static_cast<const ArithExpr&>(expr);
      writer->WriteU8(static_cast<std::uint8_t>(arith.op()));
      SerializeExpr(arith.lhs(), writer);
      SerializeExpr(arith.rhs(), writer);
      return;
    }
    case Expr::Kind::kLogical: {
      const auto& logical = static_cast<const LogicalExpr&>(expr);
      writer->WriteU8(static_cast<std::uint8_t>(logical.op()));
      SerializeExpr(logical.lhs(), writer);
      writer->WriteBool(logical.rhs() != nullptr);
      if (logical.rhs() != nullptr) SerializeExpr(*logical.rhs(), writer);
      return;
    }
    case Expr::Kind::kCaseWhen: {
      const auto& cw = static_cast<const CaseWhenExpr&>(expr);
      writer->WriteU64(cw.arms().size());
      for (const auto& arm : cw.arms()) {
        SerializeExpr(*arm.when, writer);
        SerializeExpr(*arm.then, writer);
      }
      writer->WriteBool(cw.else_expr() != nullptr);
      if (cw.else_expr() != nullptr) SerializeExpr(*cw.else_expr(), writer);
      return;
    }
    case Expr::Kind::kIn: {
      const auto& in = static_cast<const InExpr&>(expr);
      SerializeExpr(in.input(), writer);
      writer->WriteF64Vector(in.values());
      return;
    }
    case Expr::Kind::kParam:
      writer->WriteI64(static_cast<const ParamExpr&>(expr).index());
      return;
  }
}

namespace {

constexpr int kMaxExprDepth = 128;

Result<ExprPtr> DeserializeExprAt(BinaryReader* reader, int depth) {
  if (depth > kMaxExprDepth) {
    return Status::ParseError("expression tree too deep (corrupt payload?)");
  }
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t tag, reader->ReadU8());
  if (tag > static_cast<std::uint8_t>(Expr::Kind::kParam)) {
    return Status::ParseError("unknown expression kind code " +
                              std::to_string(tag));
  }
  switch (static_cast<Expr::Kind>(tag)) {
    case Expr::Kind::kColumnRef: {
      RAVEN_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
      return ExprPtr(std::make_unique<ColumnRefExpr>(std::move(name)));
    }
    case Expr::Kind::kLiteral: {
      RAVEN_ASSIGN_OR_RETURN(double value, reader->ReadF64());
      return ExprPtr(std::make_unique<LiteralExpr>(value));
    }
    case Expr::Kind::kCompare: {
      RAVEN_ASSIGN_OR_RETURN(std::uint8_t op, reader->ReadU8());
      if (op > static_cast<std::uint8_t>(CompareOp::kGe)) {
        return Status::ParseError("unknown compare op code");
      }
      RAVEN_ASSIGN_OR_RETURN(ExprPtr lhs,
                             DeserializeExprAt(reader, depth + 1));
      RAVEN_ASSIGN_OR_RETURN(ExprPtr rhs,
                             DeserializeExprAt(reader, depth + 1));
      return ExprPtr(std::make_unique<CompareExpr>(static_cast<CompareOp>(op),
                                           std::move(lhs), std::move(rhs)));
    }
    case Expr::Kind::kArith: {
      RAVEN_ASSIGN_OR_RETURN(std::uint8_t op, reader->ReadU8());
      if (op > static_cast<std::uint8_t>(ArithOp::kDiv)) {
        return Status::ParseError("unknown arithmetic op code");
      }
      RAVEN_ASSIGN_OR_RETURN(ExprPtr lhs,
                             DeserializeExprAt(reader, depth + 1));
      RAVEN_ASSIGN_OR_RETURN(ExprPtr rhs,
                             DeserializeExprAt(reader, depth + 1));
      return ExprPtr(std::make_unique<ArithExpr>(static_cast<ArithOp>(op),
                                         std::move(lhs), std::move(rhs)));
    }
    case Expr::Kind::kLogical: {
      RAVEN_ASSIGN_OR_RETURN(std::uint8_t op, reader->ReadU8());
      if (op > static_cast<std::uint8_t>(LogicalOp::kNot)) {
        return Status::ParseError("unknown logical op code");
      }
      RAVEN_ASSIGN_OR_RETURN(ExprPtr lhs,
                             DeserializeExprAt(reader, depth + 1));
      RAVEN_ASSIGN_OR_RETURN(bool has_rhs, reader->ReadBool());
      ExprPtr rhs;
      if (has_rhs) {
        RAVEN_ASSIGN_OR_RETURN(rhs, DeserializeExprAt(reader, depth + 1));
      }
      return ExprPtr(std::make_unique<LogicalExpr>(static_cast<LogicalOp>(op),
                                           std::move(lhs), std::move(rhs)));
    }
    case Expr::Kind::kCaseWhen: {
      RAVEN_ASSIGN_OR_RETURN(std::uint64_t n, reader->ReadU64());
      if (n > reader->remaining()) {
        return Status::ParseError("implausible CASE arm count");
      }
      std::vector<CaseWhenExpr::Arm> arms;
      arms.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        CaseWhenExpr::Arm arm;
        RAVEN_ASSIGN_OR_RETURN(arm.when,
                               DeserializeExprAt(reader, depth + 1));
        RAVEN_ASSIGN_OR_RETURN(arm.then,
                               DeserializeExprAt(reader, depth + 1));
        arms.push_back(std::move(arm));
      }
      RAVEN_ASSIGN_OR_RETURN(bool has_else, reader->ReadBool());
      ExprPtr else_expr;
      if (has_else) {
        RAVEN_ASSIGN_OR_RETURN(else_expr,
                               DeserializeExprAt(reader, depth + 1));
      }
      return ExprPtr(std::make_unique<CaseWhenExpr>(std::move(arms),
                                            std::move(else_expr)));
    }
    case Expr::Kind::kIn: {
      RAVEN_ASSIGN_OR_RETURN(ExprPtr input,
                             DeserializeExprAt(reader, depth + 1));
      RAVEN_ASSIGN_OR_RETURN(std::vector<double> values,
                             reader->ReadF64Vector());
      return ExprPtr(std::make_unique<InExpr>(std::move(input), std::move(values)));
    }
    case Expr::Kind::kParam: {
      RAVEN_ASSIGN_OR_RETURN(std::int64_t index, reader->ReadI64());
      if (index < 0) {
        return Status::ParseError("negative parameter index");
      }
      return ExprPtr(std::make_unique<ParamExpr>(index));
    }
  }
  return Status::ParseError("unreachable expression kind");
}

}  // namespace

Result<ExprPtr> DeserializeExpr(BinaryReader* reader) {
  return DeserializeExprAt(reader, 0);
}

std::vector<const Expr*> ExtractConjuncts(const Expr& expr) {
  std::vector<const Expr*> out;
  if (expr.kind() == Expr::Kind::kLogical) {
    const auto& logical = static_cast<const LogicalExpr&>(expr);
    if (logical.op() == LogicalOp::kAnd) {
      auto l = ExtractConjuncts(logical.lhs());
      auto r = ExtractConjuncts(*logical.rhs());
      out.insert(out.end(), l.begin(), l.end());
      out.insert(out.end(), r.begin(), r.end());
      return out;
    }
  }
  out.push_back(&expr);
  return out;
}

std::optional<SimplePredicate> MatchSimplePredicate(const Expr& expr) {
  if (expr.kind() != Expr::Kind::kCompare) return std::nullopt;
  const auto& cmp = static_cast<const CompareExpr&>(expr);
  const Expr& l = cmp.lhs();
  const Expr& r = cmp.rhs();
  if (l.kind() == Expr::Kind::kColumnRef && r.kind() == Expr::Kind::kLiteral) {
    return SimplePredicate{
        static_cast<const ColumnRefExpr&>(l).name(), cmp.op(),
        static_cast<const LiteralExpr&>(r).value()};
  }
  if (l.kind() == Expr::Kind::kLiteral && r.kind() == Expr::Kind::kColumnRef) {
    return SimplePredicate{
        static_cast<const ColumnRefExpr&>(r).name(), FlipCompareOp(cmp.op()),
        static_cast<const LiteralExpr&>(l).value()};
  }
  return std::nullopt;
}

ExprPtr ConjoinClones(const std::vector<const Expr*>& conjuncts) {
  ExprPtr out;
  for (const Expr* c : conjuncts) {
    out = out == nullptr ? c->Clone() : And(std::move(out), c->Clone());
  }
  return out;
}

std::int64_t MaxParamIndex(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kParam:
      return static_cast<const ParamExpr&>(expr).index();
    case Expr::Kind::kColumnRef:
    case Expr::Kind::kLiteral:
      return -1;
    case Expr::Kind::kCompare: {
      const auto& cmp = static_cast<const CompareExpr&>(expr);
      return std::max(MaxParamIndex(cmp.lhs()), MaxParamIndex(cmp.rhs()));
    }
    case Expr::Kind::kArith: {
      const auto& arith = static_cast<const ArithExpr&>(expr);
      return std::max(MaxParamIndex(arith.lhs()), MaxParamIndex(arith.rhs()));
    }
    case Expr::Kind::kLogical: {
      const auto& logical = static_cast<const LogicalExpr&>(expr);
      std::int64_t out = MaxParamIndex(logical.lhs());
      if (logical.rhs() != nullptr) {
        out = std::max(out, MaxParamIndex(*logical.rhs()));
      }
      return out;
    }
    case Expr::Kind::kCaseWhen: {
      const auto& cw = static_cast<const CaseWhenExpr&>(expr);
      std::int64_t out = -1;
      for (const auto& arm : cw.arms()) {
        out = std::max(out, MaxParamIndex(*arm.when));
        out = std::max(out, MaxParamIndex(*arm.then));
      }
      if (cw.else_expr() != nullptr) {
        out = std::max(out, MaxParamIndex(*cw.else_expr()));
      }
      return out;
    }
    case Expr::Kind::kIn:
      return MaxParamIndex(static_cast<const InExpr&>(expr).input());
  }
  return -1;
}

Result<ExprPtr> BindParameters(const Expr& expr,
                               const std::vector<double>& values) {
  switch (expr.kind()) {
    case Expr::Kind::kParam: {
      const std::int64_t index = static_cast<const ParamExpr&>(expr).index();
      if (index < 0 || index >= static_cast<std::int64_t>(values.size())) {
        return Status::InvalidArgument(
            "parameter ?" + std::to_string(index + 1) + " is out of range (" +
            std::to_string(values.size()) + " values bound)");
      }
      return Lit(values[static_cast<std::size_t>(index)]);
    }
    case Expr::Kind::kColumnRef:
    case Expr::Kind::kLiteral:
      return expr.Clone();
    case Expr::Kind::kCompare: {
      const auto& cmp = static_cast<const CompareExpr&>(expr);
      RAVEN_ASSIGN_OR_RETURN(ExprPtr lhs, BindParameters(cmp.lhs(), values));
      RAVEN_ASSIGN_OR_RETURN(ExprPtr rhs, BindParameters(cmp.rhs(), values));
      return ExprPtr(std::make_unique<CompareExpr>(cmp.op(), std::move(lhs),
                                                   std::move(rhs)));
    }
    case Expr::Kind::kArith: {
      const auto& arith = static_cast<const ArithExpr&>(expr);
      RAVEN_ASSIGN_OR_RETURN(ExprPtr lhs, BindParameters(arith.lhs(), values));
      RAVEN_ASSIGN_OR_RETURN(ExprPtr rhs, BindParameters(arith.rhs(), values));
      return ExprPtr(std::make_unique<ArithExpr>(arith.op(), std::move(lhs),
                                                 std::move(rhs)));
    }
    case Expr::Kind::kLogical: {
      const auto& logical = static_cast<const LogicalExpr&>(expr);
      RAVEN_ASSIGN_OR_RETURN(ExprPtr lhs,
                             BindParameters(logical.lhs(), values));
      ExprPtr rhs;
      if (logical.rhs() != nullptr) {
        RAVEN_ASSIGN_OR_RETURN(rhs, BindParameters(*logical.rhs(), values));
      }
      return ExprPtr(std::make_unique<LogicalExpr>(logical.op(),
                                                   std::move(lhs),
                                                   std::move(rhs)));
    }
    case Expr::Kind::kCaseWhen: {
      const auto& cw = static_cast<const CaseWhenExpr&>(expr);
      std::vector<CaseWhenExpr::Arm> arms;
      arms.reserve(cw.arms().size());
      for (const auto& arm : cw.arms()) {
        CaseWhenExpr::Arm bound;
        RAVEN_ASSIGN_OR_RETURN(bound.when, BindParameters(*arm.when, values));
        RAVEN_ASSIGN_OR_RETURN(bound.then, BindParameters(*arm.then, values));
        arms.push_back(std::move(bound));
      }
      ExprPtr else_expr;
      if (cw.else_expr() != nullptr) {
        RAVEN_ASSIGN_OR_RETURN(else_expr,
                               BindParameters(*cw.else_expr(), values));
      }
      return ExprPtr(std::make_unique<CaseWhenExpr>(std::move(arms),
                                                    std::move(else_expr)));
    }
    case Expr::Kind::kIn: {
      const auto& in = static_cast<const InExpr&>(expr);
      RAVEN_ASSIGN_OR_RETURN(ExprPtr input,
                             BindParameters(in.input(), values));
      return ExprPtr(std::make_unique<InExpr>(std::move(input), in.values()));
    }
  }
  return Status::Internal("unreachable expression kind in BindParameters");
}

}  // namespace raven::relational
