// Server serving-path benchmark: QPS and latency percentiles of the
// concurrent query server under 1 / 4 / 16 clients, cold vs warm plan
// cache. Each benchmark iteration runs a fixed batch of statements split
// across N client threads over real unix-socket connections, measures
// every statement's round-trip latency, and reports:
//
//   qps      statements completed per wall second of the batch
//   p50_us   median round-trip latency
//   p99_us   99th-percentile round-trip latency
//   hit_pct  plan-cache hit rate over the batch
//
// Cold runs clear the plan cache before every batch (every statement pays
// parse + optimize); warm runs pre-warm it once, so the serving path is
// cache-lookup + execute — the difference is the compilation tax the
// cache removes from the hot path. Wired into tools/bench.sh (--smoke
// keeps the row count small).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "data/flight.h"
#include "data/hospital.h"
#include "raven/raven.h"
#include "server/client.h"
#include "server/query_server.h"

namespace {

using raven::bench::Must;
using raven::bench::MustOk;

constexpr std::int64_t kRows = 20000;

/// The served statement mix: hot PREDICT + aggregation shapes a serving
/// tier would see, all of them cacheable.
const std::vector<std::string>& StatementMix() {
  static auto* mix = new std::vector<std::string>{
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > 7 LIMIT 50",
      "SELECT gender, COUNT(*) AS n, MIN(age) AS youngest FROM patients "
      "GROUP BY gender",
      "SELECT airline, COUNT(*) AS flights FROM flights WHERE distance > "
      "400 GROUP BY airline",
      "SELECT id, age, bp FROM patients WHERE bp > 100 ORDER BY id LIMIT "
      "25",
  };
  return *mix;
}

struct ServerHarness {
  raven::RavenContext ctx;
  /// Two listeners over one engine: `warm` has a normal plan cache,
  /// `cold` has capacity 0 so EVERY statement pays parse + optimize.
  /// (Clearing a shared cache per batch would not do: a batch replays the
  /// same 4-statement mix, so all but the first 4 statements would hit —
  /// "cold" would silently measure the warm path.)
  std::unique_ptr<raven::server::QueryServer> warm;
  std::unique_ptr<raven::server::QueryServer> cold;

  ServerHarness() {
    const auto& hospital = raven::bench::Hospital(kRows);
    MustOk(ctx.RegisterTable("patients", hospital.joined), "patients");
    MustOk(ctx.InsertModel(
               "los", raven::data::HospitalTreeScript(),
               Must(raven::data::TrainHospitalTree(hospital, 5), "train")),
           "los");
    const auto& flight = raven::bench::Flight(kRows);
    MustOk(ctx.RegisterTable("flights", flight.flights), "flights");
    raven::server::QueryServerOptions options;
    options.unix_socket_path =
        "/tmp/raven_bench_server_warm_" + std::to_string(::getpid()) +
        ".sock";
    options.plan_cache_capacity = 64;
    options.admission.max_concurrent = 8;
    options.admission.max_queue = 64;
    options.default_execution.parallelism = 2;
    warm = std::make_unique<raven::server::QueryServer>(&ctx, options);
    MustOk(warm->Start(), "warm server start");
    options.unix_socket_path =
        "/tmp/raven_bench_server_cold_" + std::to_string(::getpid()) +
        ".sock";
    options.plan_cache_capacity = 0;
    cold = std::make_unique<raven::server::QueryServer>(&ctx, options);
    MustOk(cold->Start(), "cold server start");
  }

  ~ServerHarness() {
    warm->Stop();
    cold->Stop();
  }
};

ServerHarness& Harness() {
  static auto* harness = new ServerHarness();
  return *harness;
}

void BM_ServerThroughput(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const bool warm = state.range(1) != 0;
  ServerHarness& harness = Harness();
  raven::server::QueryServer& server =
      warm ? *harness.warm : *harness.cold;
  const auto& mix = StatementMix();
  // Fixed statements-per-batch so QPS is comparable across client counts.
  const int total_statements = clients * 24;

  if (warm) {
    // One pass primes every mix entry; the measured batches then hit.
    raven::server::ServerClient primer;
    MustOk(primer.ConnectUnix(server.unix_socket_path()), "connect");
    for (const auto& sql : mix) {
      auto response = primer.Query(sql);
      if (!response.ok() ||
          response->kind != raven::server::ServerResponseKind::kTable) {
        state.SkipWithError("warmup statement failed");
        return;
      }
    }
  }

  std::vector<double> latencies;
  std::int64_t hits = 0;
  std::int64_t served = 0;
  double batch_seconds = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::vector<double>> per_client(
        static_cast<std::size_t>(clients));
    std::atomic<std::int64_t> batch_hits{0};
    std::atomic<bool> failed{false};
    state.ResumeTiming();

    raven::Timer batch_timer;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int tid = 0; tid < clients; ++tid) {
      threads.emplace_back([&, tid] {
        raven::server::ServerClient client;
        if (!client.ConnectUnix(server.unix_socket_path()).ok()) {
          failed.store(true);
          return;
        }
        auto& mine = per_client[static_cast<std::size_t>(tid)];
        const int per_thread = total_statements / clients;
        for (int i = 0; i < per_thread; ++i) {
          const std::string& sql = mix[static_cast<std::size_t>(
              (tid + i) % static_cast<int>(mix.size()))];
          raven::Timer timer;
          auto response = client.Query(sql);
          if (!response.ok() ||
              response->kind !=
                  raven::server::ServerResponseKind::kTable) {
            failed.store(true);
            return;
          }
          mine.push_back(timer.ElapsedMicros());
          if (response->plan_cache_hit) batch_hits.fetch_add(1);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    batch_seconds += batch_timer.ElapsedSeconds();

    if (failed.load()) {
      state.SkipWithError("client statement failed");
      return;
    }
    for (const auto& mine : per_client) {
      latencies.insert(latencies.end(), mine.begin(), mine.end());
      served += static_cast<std::int64_t>(mine.size());
    }
    hits += batch_hits.load();
  }

  if (!latencies.empty() && batch_seconds > 0) {
    std::sort(latencies.begin(), latencies.end());
    auto percentile = [&latencies](double p) {
      const auto index = static_cast<std::size_t>(
          p * static_cast<double>(latencies.size() - 1));
      return latencies[index];
    };
    state.counters["qps"] = static_cast<double>(served) / batch_seconds;
    state.counters["p50_us"] = percentile(0.50);
    state.counters["p99_us"] = percentile(0.99);
    state.counters["hit_pct"] =
        100.0 * static_cast<double>(hits) / static_cast<double>(served);
  }
}

BENCHMARK(BM_ServerThroughput)
    ->ArgNames({"clients", "warm"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
