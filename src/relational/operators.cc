#include "relational/operators.h"

#include <algorithm>
#include <mutex>

#include "common/thread_pool.h"

namespace raven::relational {

ScanOperator::ScanOperator(const Table* table, std::int64_t begin,
                           std::int64_t end)
    : table_(table), begin_(begin),
      end_(end < 0 ? table->num_rows() : end) {}

Status ScanOperator::Open() {
  cursor_ = begin_;
  if (begin_ < 0 || end_ > table_->num_rows() || begin_ > end_) {
    return Status::OutOfRange("scan range invalid");
  }
  return Status::OK();
}

Result<bool> ScanOperator::Next(DataChunk* out) {
  if (cursor_ >= end_) return false;
  const std::int64_t n = std::min(kChunkSize, end_ - cursor_);
  out->names.clear();
  out->cols.clear();
  out->names.reserve(static_cast<std::size_t>(table_->num_columns()));
  out->cols.reserve(static_cast<std::size_t>(table_->num_columns()));
  for (const auto& col : table_->columns()) {
    out->names.push_back(col.name);
    out->cols.emplace_back(col.data.begin() + cursor_,
                           col.data.begin() + cursor_ + n);
  }
  cursor_ += n;
  return true;
}

Result<bool> FilterOperator::Next(DataChunk* out) {
  DataChunk chunk;
  std::vector<double> mask;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
    if (!more) return false;
    RAVEN_RETURN_IF_ERROR(predicate_->Evaluate(chunk, &mask));
    // Compact matching rows.
    std::vector<std::int64_t> selected;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i] != 0.0) selected.push_back(static_cast<std::int64_t>(i));
    }
    if (selected.empty()) continue;  // fully filtered; pull next chunk
    out->names = chunk.names;
    out->cols.assign(chunk.cols.size(), {});
    for (std::size_t c = 0; c < chunk.cols.size(); ++c) {
      out->cols[c].reserve(selected.size());
      for (std::int64_t i : selected) {
        out->cols[c].push_back(chunk.cols[c][static_cast<std::size_t>(i)]);
      }
    }
    return true;
  }
}

Result<bool> ProjectOperator::Next(DataChunk* out) {
  DataChunk chunk;
  RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
  if (!more) return false;
  out->names = names_;
  out->cols.assign(exprs_.size(), {});
  for (std::size_t e = 0; e < exprs_.size(); ++e) {
    RAVEN_RETURN_IF_ERROR(exprs_[e]->Evaluate(chunk, &out->cols[e]));
  }
  return true;
}

Status HashJoinOperator::Open() {
  RAVEN_RETURN_IF_ERROR(left_->Open());
  RAVEN_RETURN_IF_ERROR(right_->Open());
  // Materialize the build (right) side.
  build_names_.clear();
  build_cols_.clear();
  hash_.clear();
  DataChunk chunk;
  std::int64_t key_idx = -1;
  std::int64_t row_id = 0;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, right_->Next(&chunk));
    if (!more) break;
    if (build_names_.empty()) {
      build_names_ = chunk.names;
      build_cols_.assign(chunk.cols.size(), {});
      RAVEN_ASSIGN_OR_RETURN(key_idx, chunk.ColumnIndex(right_key_));
    }
    const std::int64_t n = chunk.num_rows();
    for (std::size_t c = 0; c < chunk.cols.size(); ++c) {
      build_cols_[c].insert(build_cols_[c].end(), chunk.cols[c].begin(),
                            chunk.cols[c].end());
    }
    for (std::int64_t i = 0; i < n; ++i) {
      hash_[chunk.cols[static_cast<std::size_t>(key_idx)]
                      [static_cast<std::size_t>(i)]]
          .push_back(row_id + i);
    }
    row_id += n;
  }
  return Status::OK();
}

Result<bool> HashJoinOperator::Next(DataChunk* out) {
  DataChunk chunk;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, left_->Next(&chunk));
    if (!more) return false;
    RAVEN_ASSIGN_OR_RETURN(std::int64_t key_idx,
                           chunk.ColumnIndex(left_key_));
    // Output schema: all probe columns, then build columns whose names do
    // not collide with probe columns (the equi-key dedupes naturally).
    if (build_emit_cols_.empty()) {
      for (std::size_t c = 0; c < build_names_.size(); ++c) {
        bool shadowed = false;
        for (const auto& name : chunk.names) {
          if (name == build_names_[c]) {
            shadowed = true;
            break;
          }
        }
        if (!shadowed) build_emit_cols_.push_back(c);
      }
    }
    out->names = chunk.names;
    for (std::size_t c : build_emit_cols_) {
      out->names.push_back(build_names_[c]);
    }
    out->cols.assign(out->names.size(), {});
    const std::int64_t n = chunk.num_rows();
    for (std::int64_t i = 0; i < n; ++i) {
      const double key = chunk.cols[static_cast<std::size_t>(key_idx)]
                                   [static_cast<std::size_t>(i)];
      auto it = hash_.find(key);
      if (it == hash_.end()) continue;
      for (std::int64_t build_row : it->second) {
        for (std::size_t c = 0; c < chunk.cols.size(); ++c) {
          out->cols[c].push_back(chunk.cols[c][static_cast<std::size_t>(i)]);
        }
        for (std::size_t e = 0; e < build_emit_cols_.size(); ++e) {
          out->cols[chunk.cols.size() + e].push_back(
              build_cols_[build_emit_cols_[e]]
                         [static_cast<std::size_t>(build_row)]);
        }
      }
    }
    if (out->num_rows() > 0) return true;
    // All probe rows missed; continue with the next chunk.
  }
}

Status UnionAllOperator::Open() {
  for (auto& child : children_) {
    RAVEN_RETURN_IF_ERROR(child->Open());
  }
  current_ = 0;
  return Status::OK();
}

Result<bool> UnionAllOperator::Next(DataChunk* out) {
  while (current_ < children_.size()) {
    RAVEN_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
    if (more) return true;
    ++current_;
  }
  return false;
}

Result<bool> LimitOperator::Next(DataChunk* out) {
  if (emitted_ >= limit_) return false;
  RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  const std::int64_t n = out->num_rows();
  if (emitted_ + n > limit_) {
    const std::int64_t keep = limit_ - emitted_;
    for (auto& col : out->cols) col.resize(static_cast<std::size_t>(keep));
  }
  emitted_ += out->num_rows();
  return true;
}

Result<bool> PredictOperator::Next(DataChunk* out) {
  DataChunk chunk;
  RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
  if (!more) return false;
  const std::int64_t n = chunk.num_rows();
  const std::int64_t k = static_cast<std::int64_t>(input_columns_.size());
  Tensor input = Tensor::Zeros({n, k});
  for (std::int64_t j = 0; j < k; ++j) {
    RAVEN_ASSIGN_OR_RETURN(
        std::int64_t idx,
        chunk.ColumnIndex(input_columns_[static_cast<std::size_t>(j)]));
    const auto& col = chunk.cols[static_cast<std::size_t>(idx)];
    for (std::int64_t r = 0; r < n; ++r) {
      input.raw()[r * k + j] =
          static_cast<float>(col[static_cast<std::size_t>(r)]);
    }
  }
  RAVEN_ASSIGN_OR_RETURN(std::vector<double> preds, scorer_(input));
  if (static_cast<std::int64_t>(preds.size()) != n) {
    return Status::ExecutionError("scorer returned " +
                                  std::to_string(preds.size()) +
                                  " predictions for " + std::to_string(n) +
                                  " rows");
  }
  *out = std::move(chunk);
  out->names.push_back(output_name_);
  out->cols.push_back(std::move(preds));
  return true;
}

Result<bool> AggregateOperator::Next(DataChunk* out) {
  if (done_) return false;
  done_ = true;
  struct Acc {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::int64_t count = 0;
  };
  std::vector<Acc> accs(aggs_.size());
  DataChunk chunk;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
    if (!more) break;
    const std::int64_t n = chunk.num_rows();
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
      Acc& acc = accs[a];
      if (aggs_[a].kind == AggKind::kCount) {
        acc.count += n;
        continue;
      }
      RAVEN_ASSIGN_OR_RETURN(std::int64_t idx,
                             chunk.ColumnIndex(aggs_[a].column));
      const auto& col = chunk.cols[static_cast<std::size_t>(idx)];
      for (double v : col) {
        if (acc.count == 0) {
          acc.min = v;
          acc.max = v;
        } else {
          acc.min = std::min(acc.min, v);
          acc.max = std::max(acc.max, v);
        }
        acc.sum += v;
        ++acc.count;
      }
    }
  }
  out->names.clear();
  out->cols.clear();
  for (std::size_t a = 0; a < aggs_.size(); ++a) {
    double v = 0.0;
    switch (aggs_[a].kind) {
      case AggKind::kCount:
        v = static_cast<double>(accs[a].count);
        break;
      case AggKind::kSum:
        v = accs[a].sum;
        break;
      case AggKind::kAvg:
        v = accs[a].count > 0
                ? accs[a].sum / static_cast<double>(accs[a].count)
                : 0.0;
        break;
      case AggKind::kMin:
        v = accs[a].min;
        break;
      case AggKind::kMax:
        v = accs[a].max;
        break;
    }
    out->names.push_back(aggs_[a].output_name);
    out->cols.push_back({v});
  }
  return true;
}

Result<Table> MaterializeAll(PhysicalOperator* root) {
  RAVEN_RETURN_IF_ERROR(root->Open());
  Table out;
  DataChunk chunk;
  bool first = true;
  std::vector<std::vector<double>> cols;
  std::vector<std::string> names;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, root->Next(&chunk));
    if (!more) break;
    if (first) {
      names = chunk.names;
      cols.assign(chunk.cols.size(), {});
      first = false;
    }
    for (std::size_t c = 0; c < chunk.cols.size(); ++c) {
      cols[c].insert(cols[c].end(), chunk.cols[c].begin(),
                     chunk.cols[c].end());
    }
  }
  for (std::size_t c = 0; c < names.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(out.AddNumericColumn(names[c], std::move(cols[c])));
  }
  return out;
}

Result<Table> ExecutePartitionedParallel(const Table& base,
                                         std::int64_t num_partitions,
                                         const PartitionPlanFactory& factory) {
  const std::int64_t n = base.num_rows();
  num_partitions = std::max<std::int64_t>(1, std::min(num_partitions, n));
  const std::int64_t per = (n + num_partitions - 1) / num_partitions;
  std::vector<Result<Table>> results(
      static_cast<std::size_t>(num_partitions),
      Result<Table>(Status::Internal("partition not executed")));
  ThreadPool::Global().ParallelFor(
      static_cast<std::size_t>(num_partitions), [&](std::size_t p) {
        const std::int64_t begin = static_cast<std::int64_t>(p) * per;
        const std::int64_t end = std::min(n, begin + per);
        OperatorPtr plan = factory(begin, end);
        results[p] = plan == nullptr
                         ? Result<Table>(Status::ExecutionError(
                               "partition plan construction failed"))
                         : MaterializeAll(plan.get());
      });
  Table merged;
  std::vector<std::vector<double>> cols;
  std::vector<std::string> names;
  bool first = true;
  for (auto& result : results) {
    if (!result.ok()) return result.status();
    Table& part = result.value();
    if (part.num_columns() == 0) continue;  // partition produced no rows
    if (first) {
      names = part.ColumnNames();
      cols.assign(names.size(), {});
      first = false;
    }
    if (part.ColumnNames() != names) {
      return Status::ExecutionError("partition schema mismatch");
    }
    for (std::size_t c = 0; c < names.size(); ++c) {
      auto& src = part.mutable_columns()[c].data;
      cols[c].insert(cols[c].end(), src.begin(), src.end());
    }
  }
  for (std::size_t c = 0; c < names.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(
        merged.AddNumericColumn(names[c], std::move(cols[c])));
  }
  return merged;
}

}  // namespace raven::relational
