// Suite for the concurrent query server (src/server): protocol round
// trips, plan-cache and admission-controller units, end-to-end statement
// handling over real sockets, hostile-client handling (disconnect
// mid-query, malformed frames, oversized statements), and the TSan soak —
// 8 concurrent clients of mixed SELECT / PREDICT / prepared-statement
// traffic whose results must be byte-identical to in-process execution
// while a ninth client disconnects mid-query and the admission queue
// fills and sheds.

#include <gtest/gtest.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "data/flight.h"
#include "data/hospital.h"
#include "raven/raven.h"
#include "runtime/worker_protocol.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/plan_cache.h"
#include "server/query_server.h"
#include "server/server_protocol.h"
#include "test_util.h"

namespace raven::server {
namespace {

using relational::Table;

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/raven_server_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

std::vector<std::vector<double>> TableRows(const Table& t) {
  std::vector<std::vector<double>> rows(
      static_cast<std::size_t>(t.num_rows()));
  for (const auto& col : t.columns()) {
    for (std::int64_t r = 0; r < t.num_rows(); ++r) {
      rows[static_cast<std::size_t>(r)].push_back(
          col.data[static_cast<std::size_t>(r)]);
    }
  }
  return rows;
}

/// Bitwise-exact table comparison; row order ignored unless `ordered`
/// (sorting both sides). The soak's byte-identical acceptance bar.
void ExpectTablesIdentical(const Table& expected, const Table& actual,
                           bool ordered) {
  ASSERT_EQ(expected.ColumnNames(), actual.ColumnNames());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  auto lhs = TableRows(expected);
  auto rhs = TableRows(actual);
  if (!ordered) {
    std::sort(lhs.begin(), lhs.end());
    std::sort(rhs.begin(), rhs.end());
  }
  EXPECT_EQ(lhs, rhs);
}

// ---------------------------------------------------------------------------
// Protocol round trips
// ---------------------------------------------------------------------------

TEST(ServerProtocolTest, ClientRequestRoundTrip) {
  ClientRequest request;
  request.command = ClientCommand::kExecute;
  request.sql = "SELECT 1";
  request.statement_name = "hot";
  request.params = {1.5, -3.0, 42.0};
  auto decoded = DecodeClientRequest(EncodeClientRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->command, ClientCommand::kExecute);
  EXPECT_EQ(decoded->sql, "SELECT 1");
  EXPECT_EQ(decoded->statement_name, "hot");
  EXPECT_EQ(decoded->params, request.params);
}

TEST(ServerProtocolTest, ResponseRoundTripAllKinds) {
  {
    ServerResponse response;
    response.kind = ServerResponseKind::kTable;
    Table table;
    ASSERT_TRUE(table.AddNumericColumn("x", {1.0, 2.0, 3.0}).ok());
    response.table = std::move(table);
    response.plan_cache_hit = true;
    response.queue_wait_micros = 12.5;
    response.total_millis = 3.25;
    auto decoded = DecodeServerResponse(EncodeServerResponse(response));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->kind, ServerResponseKind::kTable);
    EXPECT_EQ(decoded->table.num_rows(), 3);
    EXPECT_TRUE(decoded->plan_cache_hit);
    EXPECT_DOUBLE_EQ(decoded->queue_wait_micros, 12.5);
  }
  {
    ServerResponse response;
    response.kind = ServerResponseKind::kError;
    response.code = StatusCode::kParseError;
    response.message = "boom";
    auto decoded = DecodeServerResponse(EncodeServerResponse(response));
    ASSERT_TRUE(decoded.ok());
    Status status = ResponseStatus(decoded.value());
    EXPECT_EQ(status.code(), StatusCode::kParseError);
    EXPECT_EQ(status.message(), "boom");
  }
  {
    ServerResponse response;
    response.kind = ServerResponseKind::kBusy;
    response.message = "later";
    auto decoded = DecodeServerResponse(EncodeServerResponse(response));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(ResponseStatus(decoded.value()).code(),
              StatusCode::kServerBusy);
  }
  {
    ServerResponse response;
    response.kind = ServerResponseKind::kStats;
    response.stats = {{"hits", 3}, {"misses", 7}};
    auto decoded = DecodeServerResponse(EncodeServerResponse(response));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->stats.size(), 2u);
    EXPECT_EQ(decoded->stats[0].first, "hits");
    EXPECT_EQ(decoded->stats[1].second, 7);
  }
}

TEST(ServerProtocolTest, MalformedPayloadsFailCleanly) {
  EXPECT_FALSE(DecodeClientRequest("").ok());
  EXPECT_FALSE(DecodeClientRequest("\xff").ok());
  EXPECT_FALSE(DecodeServerResponse("\xff").ok());
  // Truncation anywhere must error, never crash.
  ClientRequest request;
  request.command = ClientCommand::kQuery;
  request.sql = "SELECT * FROM patients";
  const std::string encoded = EncodeClientRequest(request);
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(DecodeClientRequest(encoded.substr(0, cut)).ok())
        << "cut=" << cut;
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(DecodeClientRequest(encoded + "x").ok());
}

// ---------------------------------------------------------------------------
// Plan cache unit
// ---------------------------------------------------------------------------

std::shared_ptr<const CachedPlan> MakePlan(const std::string& table) {
  auto plan = std::make_shared<CachedPlan>();
  plan->plan = std::make_shared<const ir::IrPlan>(
      ir::IrPlan(ir::IrNode::TableScan(table)));
  plan->fingerprint = ir::PlanFingerprint(*plan->plan->root());
  return plan;
}

TEST(PlanCacheTest, HitMissEvictInvalidate) {
  PlanCache cache(2);
  EXPECT_EQ(cache.Get("a", 1), nullptr);  // miss
  cache.Put("a", 1, MakePlan("t1"));
  auto hit = cache.Get("a", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->fingerprint, MakePlan("t1")->fingerprint);

  // Same key at a newer catalog version: the entry is stale — dropped and
  // counted as an invalidation.
  EXPECT_EQ(cache.Get("a", 2), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.stats().entries, 0);

  // LRU eviction at capacity 2: touching "b" makes "c" the LRU victim.
  cache.Put("b", 2, MakePlan("t2"));
  cache.Put("c", 2, MakePlan("t3"));
  ASSERT_NE(cache.Get("b", 2), nullptr);
  cache.Put("d", 2, MakePlan("t4"));  // evicts c
  EXPECT_EQ(cache.Get("c", 2), nullptr);
  ASSERT_NE(cache.Get("b", 2), nullptr);
  ASSERT_NE(cache.Get("d", 2), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.Get("b", 2), nullptr);
}

TEST(PlanCacheTest, DistinctFingerprintsForDistinctPlans) {
  EXPECT_NE(MakePlan("alpha")->fingerprint, MakePlan("beta")->fingerprint);
  EXPECT_EQ(MakePlan("alpha")->fingerprint, MakePlan("alpha")->fingerprint);
}

// ---------------------------------------------------------------------------
// Admission controller unit
// ---------------------------------------------------------------------------

TEST(AdmissionTest, ShedsWhenSlotsAndQueueFull) {
  AdmissionOptions options;
  options.max_concurrent = 2;
  options.max_queue = 0;
  AdmissionController admission(options);
  auto t1 = admission.Admit();
  auto t2 = admission.Admit();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto t3 = admission.Admit();
  ASSERT_FALSE(t3.ok());
  EXPECT_EQ(t3.status().code(), StatusCode::kServerBusy);
  EXPECT_EQ(admission.stats().shed, 1);
  EXPECT_EQ(admission.stats().active, 2);
  { auto release = std::move(t1).value(); }  // free one slot
  auto t4 = admission.Admit();
  EXPECT_TRUE(t4.ok());
  EXPECT_EQ(admission.stats().active, 2);
}

TEST(AdmissionTest, QueueTimeoutSheds) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 1;
  options.queue_timeout_millis = 50;
  AdmissionController admission(options);
  auto held = admission.Admit();
  ASSERT_TRUE(held.ok());
  auto queued = admission.Admit();  // waits 50 ms, then sheds
  ASSERT_FALSE(queued.ok());
  EXPECT_EQ(queued.status().code(), StatusCode::kServerBusy);
  EXPECT_EQ(admission.stats().timeouts, 1);
  EXPECT_EQ(admission.stats().ever_queued, 1);
}

TEST(AdmissionTest, QueuedCallerWakesOnRelease) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 4;
  options.queue_timeout_millis = 30000;
  AdmissionController admission(options);
  auto held = admission.Admit();
  ASSERT_TRUE(held.ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&admission, &admitted] {
    auto ticket = admission.Admit();
    EXPECT_TRUE(ticket.ok());
    if (ticket.ok()) {
      EXPECT_GT(ticket->queue_wait_micros(), 0.0);
    }
    admitted.store(true);
  });
  // Give the waiter time to enqueue, then free the slot.
  while (admission.stats().queued == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(admitted.load());
  { auto release = std::move(held).value(); }
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(admission.stats().peak_queued, 1);
}

// ---------------------------------------------------------------------------
// End-to-end fixture
// ---------------------------------------------------------------------------

class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hospital_ = data::MakeHospitalDataset(1500, 11);
    ASSERT_NO_FATAL_FAILURE(
        test_util::RegisterHospitalTables(&ctx_.catalog(), hospital_));
    test_util::InsertHospitalTreeModel(&ctx_.catalog(), hospital_, 5);
    flight_ = data::MakeFlightDataset(1000, 7);
    ASSERT_NO_FATAL_FAILURE(
        test_util::RegisterFlightTable(&ctx_.catalog(), flight_));
    auto logreg = data::TrainFlightLogreg(flight_, 0.01);
    ASSERT_TRUE(logreg.ok()) << logreg.status().ToString();
    ASSERT_TRUE(ctx_.catalog()
                    .InsertModel("delay", data::FlightLogregScript(),
                                 logreg->ToBytes())
                    .ok());
    ASSERT_FALSE(HasFailure()) << "fixture setup failed";
  }

  /// In-process ground truth; call before the server takes traffic (the
  /// server owns the optimizer's costing knobs while serving).
  Table Expected(const std::string& sql) {
    auto result = ctx_.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? std::move(result).value().table : Table();
  }

  QueryServerOptions DefaultOptions() {
    QueryServerOptions options;
    options.unix_socket_path = UniqueSocketPath();
    options.default_execution.parallelism = 4;
    return options;
  }

  data::HospitalDataset hospital_;
  data::FlightDataset flight_;
  RavenContext ctx_;
};

TEST_F(QueryServerTest, StatementsMatchInProcessExecution) {
  const std::vector<std::pair<std::string, bool>> cases = {
      {"SELECT id, age, bp FROM patients WHERE bp > 95 ORDER BY id LIMIT 50",
       true},
      {"SELECT gender, COUNT(*) AS n, MIN(age) AS youngest FROM patients "
       "GROUP BY gender",
       false},
      {"SELECT pi.id, bp FROM patient_info AS pi JOIN blood_tests AS bt "
       "ON pi.id = bt.id WHERE age > 40",
       false},
      {"SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) "
       "WITH(p float) WHERE p > 6",
       false},
  };
  std::vector<Table> expected;
  expected.reserve(cases.size());
  for (const auto& [sql, ordered] : cases) {
    (void)ordered;
    expected.push_back(Expected(sql));
  }
  ASSERT_FALSE(HasFailure());

  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(cases[i].first);
    auto response = client.Query(cases[i].first);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->kind, ServerResponseKind::kTable)
        << response->message;
    ASSERT_NO_FATAL_FAILURE(ExpectTablesIdentical(
        expected[i], response->table, cases[i].second));
  }
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(QueryServerTest, TcpListenerServes) {
  QueryServerOptions options = DefaultOptions();
  options.unix_socket_path.clear();
  options.tcp_port = 0;  // kernel-assigned
  const Table expected = Expected("SELECT COUNT(*) AS n FROM flights");
  QueryServer server(&ctx_, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.tcp_port(), 0);
  ServerClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  auto response = client.Query("SELECT COUNT(*) AS n FROM flights");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->kind, ServerResponseKind::kTable);
  ExpectTablesIdentical(expected, response->table, true);
}

TEST_F(QueryServerTest, PlanCacheHitsAcrossSessionsAndSpellings) {
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient first;
  ASSERT_TRUE(first.ConnectUnix(server.unix_socket_path()).ok());
  const std::string sql = "SELECT COUNT(*) AS n FROM patients WHERE age > 30";
  auto cold = first.Query(sql);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->kind, ServerResponseKind::kTable) << cold->message;
  EXPECT_FALSE(cold->plan_cache_hit);
  auto warm = first.Query(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  // Normalization: whitespace, newlines, and comments hit the same entry —
  // and so does a different connection.
  ServerClient second;
  ASSERT_TRUE(second.ConnectUnix(server.unix_socket_path()).ok());
  auto respelled = second.Query(
      "SELECT   COUNT(*) AS n\n FROM patients -- comment\n WHERE age > 30");
  ASSERT_TRUE(respelled.ok());
  ASSERT_EQ(respelled->kind, ServerResponseKind::kTable)
      << respelled->message;
  EXPECT_TRUE(respelled->plan_cache_hit);
  ExpectTablesIdentical(cold->table, respelled->table, true);
  const PlanCacheStats stats = server.plan_cache().stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST_F(QueryServerTest, CatalogChangeInvalidatesCachedPlans) {
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());
  const std::string sql = "SELECT COUNT(*) AS n FROM patients";
  ASSERT_TRUE(client.Query(sql).ok());
  auto warm = client.Query(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  // Any catalog mutation (here: a transactional model update) must stop
  // the cached plan from being served.
  auto stored = ctx_.catalog().GetModel("los");
  ASSERT_TRUE(stored.ok());
  ASSERT_TRUE(ctx_.catalog()
                  .UpdateModel("los", stored->script, stored->pipeline_bytes)
                  .ok());
  auto replanned = client.Query(sql);
  ASSERT_TRUE(replanned.ok());
  ASSERT_EQ(replanned->kind, ServerResponseKind::kTable)
      << replanned->message;
  EXPECT_FALSE(replanned->plan_cache_hit);
  EXPECT_GE(server.plan_cache().stats().invalidations, 1);
}

TEST_F(QueryServerTest, PreparedStatementsBindAndMatchLiterals) {
  const Table expected5 = Expected(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > 5 ORDER BY id");
  const Table expected75 = Expected(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > 7.5 ORDER BY id");
  ASSERT_FALSE(HasFailure());
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());

  auto prepared = client.Query(
      "PREPARE hot AS SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(p float) WHERE p > ? ORDER BY id");
  ASSERT_TRUE(prepared.ok());
  ASSERT_EQ(prepared->kind, ServerResponseKind::kAck) << prepared->message;

  // SQL-level EXECUTE and the binary fast path must agree with the
  // literal-substituted in-process query, for every binding.
  auto via_sql = client.Query("EXECUTE hot (5)");
  ASSERT_TRUE(via_sql.ok());
  ASSERT_EQ(via_sql->kind, ServerResponseKind::kTable) << via_sql->message;
  EXPECT_TRUE(via_sql->plan_cache_hit);  // parse+optimize skipped
  ExpectTablesIdentical(expected5, via_sql->table, true);

  auto via_binary = client.ExecutePrepared("hot", {7.5});
  ASSERT_TRUE(via_binary.ok());
  ASSERT_EQ(via_binary->kind, ServerResponseKind::kTable)
      << via_binary->message;
  ExpectTablesIdentical(expected75, via_binary->table, true);

  // Arity and name errors are diagnosable, and the connection survives.
  auto wrong_arity = client.ExecutePrepared("hot", {1.0, 2.0});
  ASSERT_TRUE(wrong_arity.ok());
  EXPECT_EQ(wrong_arity->kind, ServerResponseKind::kError);
  auto unknown = client.ExecutePrepared("nope", {});
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->kind, ServerResponseKind::kError);
  // A bare statement with placeholders is rejected with a pointer to
  // PREPARE.
  auto unbound = client.Query("SELECT id FROM patients WHERE age > ?");
  ASSERT_TRUE(unbound.ok());
  ASSERT_EQ(unbound->kind, ServerResponseKind::kError);
  EXPECT_NE(unbound->message.find("PREPARE"), std::string::npos);
  // A SET that changes the planning profile re-plans the template on the
  // next EXECUTE (same answers, fresh costing targets).
  ASSERT_EQ(client.Query("SET parallelism = 2")->kind,
            ServerResponseKind::kAck);
  auto after_set = client.ExecutePrepared("hot", {5.0});
  ASSERT_TRUE(after_set.ok());
  ASSERT_EQ(after_set->kind, ServerResponseKind::kTable)
      << after_set->message;
  ExpectTablesIdentical(expected5, after_set->table, true);
}

TEST_F(QueryServerTest, SessionKnobsApplyPerSession) {
  const Table expected = Expected(
      "SELECT gender, COUNT(*) AS n FROM patients GROUP BY gender");
  ASSERT_FALSE(HasFailure());
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());
  for (const char* knob : {"SET parallelism = 8", "SET morsel_rows = 128"}) {
    auto set = client.Query(knob);
    ASSERT_TRUE(set.ok());
    ASSERT_EQ(set->kind, ServerResponseKind::kAck) << set->message;
  }
  auto response = client.Query(
      "SELECT gender, COUNT(*) AS n FROM patients GROUP BY gender");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->kind, ServerResponseKind::kTable) << response->message;
  ExpectTablesIdentical(expected, response->table, false);
  // Bad knobs and values error without dropping the session.
  auto bad_knob = client.Query("SET warp_drive = 9");
  ASSERT_TRUE(bad_knob.ok());
  EXPECT_EQ(bad_knob->kind, ServerResponseKind::kError);
  auto bad_value = client.Query("SET parallelism = purple");
  ASSERT_TRUE(bad_value.ok());
  EXPECT_EQ(bad_value->kind, ServerResponseKind::kError);
  // Disabling the wedged-worker guard remotely is not a session knob.
  auto no_guard =
      client.Query("SET distributed_frame_timeout_millis = -1");
  ASSERT_TRUE(no_guard.ok());
  EXPECT_EQ(no_guard->kind, ServerResponseKind::kError);
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(QueryServerTest, DistributedModeServesThroughWorkerPool) {
  const Table expected = Expected(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > 6");
  ASSERT_FALSE(HasFailure());
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());
  ASSERT_TRUE(client.Query("SET mode = distributed").ok());
  ASSERT_TRUE(client.Query("SET distributed_workers = 2").ok());
  auto response = client.Query(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > 6");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->kind, ServerResponseKind::kTable) << response->message;
  ExpectTablesIdentical(expected, response->table, false);
  // The distributed run went through the real pool (or degraded cleanly
  // in-process if the worker binary were missing — in this build it isn't).
  EXPECT_NE(ctx_.executor().worker_pool(), nullptr);
}

TEST_F(QueryServerTest, TempViewsAreSessionScoped) {
  const Table expected = Expected(
      "SELECT COUNT(*) AS n FROM flights WHERE distance > 500");
  ASSERT_FALSE(HasFailure());
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient first;
  ASSERT_TRUE(first.ConnectUnix(server.unix_socket_path()).ok());
  auto created = first.Query(
      "CREATE VIEW long_haul AS SELECT * FROM flights WHERE distance > 500");
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created->kind, ServerResponseKind::kAck) << created->message;
  auto through_view = first.Query("SELECT COUNT(*) AS n FROM long_haul");
  ASSERT_TRUE(through_view.ok());
  ASSERT_EQ(through_view->kind, ServerResponseKind::kTable)
      << through_view->message;
  ExpectTablesIdentical(expected, through_view->table, true);

  // Views can stack on earlier views.
  ASSERT_EQ(first.Query("CREATE VIEW long_haul_am AS SELECT * FROM "
                        "long_haul WHERE dep_hour < 12")
                ->kind,
            ServerResponseKind::kAck);
  EXPECT_EQ(first.Query("SELECT COUNT(*) AS n FROM long_haul_am")->kind,
            ServerResponseKind::kTable);

  // Another session does not see them.
  ServerClient second;
  ASSERT_TRUE(second.ConnectUnix(server.unix_socket_path()).ok());
  auto other = second.Query("SELECT COUNT(*) AS n FROM long_haul");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->kind, ServerResponseKind::kError);

  // DROP removes it; a broken body never sticks.
  ASSERT_EQ(first.Query("DROP VIEW long_haul_am")->kind,
            ServerResponseKind::kAck);
  EXPECT_EQ(first.Query("SELECT COUNT(*) AS n FROM long_haul_am")->kind,
            ServerResponseKind::kError);
  EXPECT_EQ(first.Query("CREATE VIEW broken AS SELECT nope FROM nowhere")
                ->kind,
            ServerResponseKind::kError);
  EXPECT_EQ(first.Query("SELECT COUNT(*) AS n FROM broken")->kind,
            ServerResponseKind::kError);
  // Hostile names fail at CREATE (they would otherwise poison every later
  // statement once spliced in as a CTE).
  EXPECT_EQ(first.Query("CREATE VIEW 9bad AS SELECT id FROM flights")->kind,
            ServerResponseKind::kError);
  EXPECT_EQ(first.Query("CREATE VIEW select AS SELECT id FROM flights")
                ->kind,
            ServerResponseKind::kError);
  // ...and the session keeps working afterwards.
  EXPECT_EQ(first.Query("SELECT COUNT(*) AS n FROM flights")->kind,
            ServerResponseKind::kTable);
}

TEST_F(QueryServerTest, ShowStatsReportsServingCounters) {
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());
  ASSERT_TRUE(client.Query("SELECT COUNT(*) AS n FROM patients").ok());
  ASSERT_TRUE(client.Query("SELECT COUNT(*) AS n FROM patients").ok());
  auto stats = client.Query("SHOW STATS");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->kind, ServerResponseKind::kStats);
  std::map<std::string, std::int64_t> by_key(stats->stats.begin(),
                                             stats->stats.end());
  EXPECT_EQ(by_key["queries_served"], 2);
  EXPECT_EQ(by_key["plan_cache_hits"], 1);
  EXPECT_EQ(by_key["plan_cache_misses"], 1);
  EXPECT_EQ(by_key["sessions_active"], 1);
  EXPECT_GE(by_key["catalog_version"], 1);
  EXPECT_EQ(by_key["queries_shed"], 0);
}

TEST_F(QueryServerTest, ResultRowCapSheddsOversizedResults) {
  QueryServerOptions options = DefaultOptions();
  options.admission.max_result_rows = 10;
  QueryServer server(&ctx_, options);
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());
  auto capped = client.Query("SELECT id FROM patients");
  ASSERT_TRUE(capped.ok());
  ASSERT_EQ(capped->kind, ServerResponseKind::kError);
  EXPECT_NE(capped->message.find("cap"), std::string::npos);
  auto under_cap = client.Query("SELECT id FROM patients LIMIT 5");
  ASSERT_TRUE(under_cap.ok());
  EXPECT_EQ(under_cap->kind, ServerResponseKind::kTable);
}

TEST_F(QueryServerTest, OversizedAndHostileStatementsRejected) {
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());
  // Over the frontend's statement-length cap: clean parse error. The
  // padding is a comment (trailing whitespace would be trimmed away).
  std::string huge = "SELECT id FROM patients WHERE age > 1 --";
  huge.append(2u << 20, 'x');
  auto too_long = client.Query(huge);
  ASSERT_TRUE(too_long.ok());
  ASSERT_EQ(too_long->kind, ServerResponseKind::kError);
  EXPECT_EQ(too_long->code, StatusCode::kParseError);
  EXPECT_NE(too_long->message.find("limit"), std::string::npos);
  // Deep nesting: clean parse error, no stack blowout.
  std::string deep = "SELECT id FROM patients WHERE ";
  deep.append(5000, '(');
  deep += "age > 1";
  deep.append(5000, ')');
  auto too_deep = client.Query(deep);
  ASSERT_TRUE(too_deep.ok());
  ASSERT_EQ(too_deep->kind, ServerResponseKind::kError);
  EXPECT_EQ(too_deep->code, StatusCode::kParseError);
  EXPECT_NE(too_deep->message.find("nesting"), std::string::npos);
  // A garbage frame over a raw socket gets an error response — frames are
  // length-delimited, so the stream stays in sync and the connection
  // remains usable.
  const int raw = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server.unix_socket_path().c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_TRUE(runtime::WriteFrame(raw, "\xffgarbage payload").ok());
  auto garbage_reply = runtime::ReadFrame(raw, 30000);
  ASSERT_TRUE(garbage_reply.ok()) << garbage_reply.status().ToString();
  auto decoded = DecodeServerResponse(garbage_reply.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, ServerResponseKind::kError);
  ClientRequest ping;
  ping.command = ClientCommand::kPing;
  ASSERT_TRUE(runtime::WriteFrame(raw, EncodeClientRequest(ping)).ok());
  auto ping_reply = runtime::ReadFrame(raw, 30000);
  ASSERT_TRUE(ping_reply.ok());
  auto pong = DecodeServerResponse(ping_reply.value());
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->kind, ServerResponseKind::kAck);
  ::close(raw);

  auto after = client.Query("SELECT COUNT(*) AS n FROM patients");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->kind, ServerResponseKind::kTable);
}

TEST_F(QueryServerTest, OversizedFrameHeaderRejectedBeforeAllocation) {
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  const int raw = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server.unix_socket_path().c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Header claims half a GiB — over the server's request cap. The server
  // must refuse without allocating the claimed buffer, answer with an
  // error frame, and hang up (the unread payload desyncs the stream).
  const std::uint32_t huge = 512u << 20;
  char header[4];
  std::memcpy(header, &huge, 4);
  ASSERT_EQ(::write(raw, header, 4), 4);
  auto reply = runtime::ReadFrame(raw, 30000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto decoded = DecodeServerResponse(reply.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, ServerResponseKind::kError);
  EXPECT_NE(decoded->message.find("cap"), std::string::npos)
      << decoded->message;
  ::close(raw);
  // Other clients are unaffected.
  ServerClient survivor;
  ASSERT_TRUE(survivor.ConnectUnix(server.unix_socket_path()).ok());
  EXPECT_TRUE(survivor.Ping().ok());
}

TEST_F(QueryServerTest, IdleConnectionsAreDroppedAfterTimeout) {
  QueryServerOptions options = DefaultOptions();
  // Window sized with sanitizer headroom: pings spaced well inside it
  // must survive, silence well past it must not.
  options.idle_timeout_millis = 400;
  QueryServer server(&ctx_, options);
  ASSERT_TRUE(server.Start().ok());
  ServerClient idler;
  ASSERT_TRUE(idler.ConnectUnix(server.unix_socket_path()).ok());
  // Say nothing past the idle window: the server reclaims the slot, so a
  // later request fails at the transport (idle sockets cannot pin
  // max_connections slots forever).
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  auto late = idler.Ping();
  EXPECT_FALSE(late.ok());
  // An active client chatting within the window is unaffected.
  ServerClient chatty;
  ASSERT_TRUE(chatty.ConnectUnix(server.unix_socket_path()).ok());
  for (int i = 0; i < 5; ++i) {
    auto pong = chatty.Ping();
    ASSERT_TRUE(pong.ok());
    EXPECT_EQ(pong->kind, ServerResponseKind::kAck);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

TEST_F(QueryServerTest, ConnectionLimitTurnsExtrasAwayWithBusy) {
  QueryServerOptions options = DefaultOptions();
  options.max_connections = 2;
  QueryServer server(&ctx_, options);
  ASSERT_TRUE(server.Start().ok());
  ServerClient first;
  ServerClient second;
  ASSERT_TRUE(first.ConnectUnix(server.unix_socket_path()).ok());
  ASSERT_TRUE(second.ConnectUnix(server.unix_socket_path()).ok());
  ASSERT_TRUE(first.Ping().ok());
  ASSERT_TRUE(second.Ping().ok());
  // The third connection is greeted with a busy frame and closed.
  ServerClient extra;
  ASSERT_TRUE(extra.ConnectUnix(server.unix_socket_path()).ok());
  auto turned_away = extra.Ping();
  // Either our ping crossed the busy frame in flight (we read the busy
  // response) or the socket was already closed (transport error); both
  // are acceptable — what matters is that a slot frees up afterwards.
  if (turned_away.ok()) {
    EXPECT_EQ(turned_away->kind, ServerResponseKind::kBusy);
  }
  first.Close();
  // The freed slot admits a new connection (poll loop reaps within a tick).
  ServerClient replacement;
  bool admitted = false;
  for (int attempt = 0; attempt < 50 && !admitted; ++attempt) {
    replacement.Close();
    if (!replacement.ConnectUnix(server.unix_socket_path()).ok()) break;
    auto ping = replacement.Ping();
    admitted = ping.ok() && ping->kind == ServerResponseKind::kAck;
    if (!admitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(admitted);
}

TEST_F(QueryServerTest, DeterministicShedAndRecovery) {
  QueryServerOptions options = DefaultOptions();
  options.admission.max_concurrent = 1;
  options.admission.max_queue = 0;
  QueryServer server(&ctx_, options);
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());
  {
    // Occupy the only execution slot from inside the process: every client
    // query during this window must shed with kBusy — deterministically.
    auto slot = server.admission().Admit();
    ASSERT_TRUE(slot.ok());
    auto shed = client.Query("SELECT COUNT(*) AS n FROM patients");
    ASSERT_TRUE(shed.ok());
    ASSERT_EQ(shed->kind, ServerResponseKind::kBusy) << shed->message;
    EXPECT_EQ(ResponseStatus(shed.value()).code(), StatusCode::kServerBusy);
  }
  // Slot released: the same session recovers without reconnecting.
  auto recovered = client.Query("SELECT COUNT(*) AS n FROM patients");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->kind, ServerResponseKind::kTable)
      << recovered->message;
  EXPECT_GE(server.admission().stats().shed, 1);
}

TEST_F(QueryServerTest, DisconnectMidQueryLeavesServerHealthy) {
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  for (int round = 0; round < 5; ++round) {
    ServerClient doomed;
    ASSERT_TRUE(doomed.ConnectUnix(server.unix_socket_path()).ok());
    ClientRequest request;
    request.command = ClientCommand::kQuery;
    request.sql =
        "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) "
        "WITH(p float) WHERE p > 2";
    ASSERT_TRUE(doomed.Send(request).ok());
    // Vanish without reading the response — sometimes before the server
    // even parses, sometimes mid-execution.
    if (round % 2 == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(round));
    }
    doomed.Abort();
  }
  ServerClient survivor;
  ASSERT_TRUE(survivor.ConnectUnix(server.unix_socket_path()).ok());
  auto response = survivor.Query("SELECT COUNT(*) AS n FROM patients");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->kind, ServerResponseKind::kTable);
  server.Stop();  // joins every connection thread without hanging
}

// ---------------------------------------------------------------------------
// Soak: the acceptance bar. 8 concurrent clients of mixed traffic, all
// results byte-identical to in-process execution, while client 9
// disconnects mid-query in a loop and the admission queue fills and sheds.
// Runs TSan-clean (ctest label `server` is part of the tsan CI leg).
// ---------------------------------------------------------------------------

TEST_F(QueryServerTest, SoakMixedTrafficEightClients) {
  struct SoakCase {
    std::string sql;
    bool ordered;
    Table expected;
  };
  // No SUM/AVG: their float partials merge in dop-dependent order, and the
  // bar here is bitwise identity. COUNT/MIN/MAX are exact at any dop.
  std::vector<SoakCase> cases = {
      {"SELECT id, age, bp FROM patients WHERE bp > 95 ORDER BY id LIMIT 50",
       true, Table()},
      {"SELECT gender, COUNT(*) AS n, MIN(age) AS youngest, MAX(bp) AS peak "
       "FROM patients GROUP BY gender",
       false, Table()},
      {"SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
       "WHERE p > 6",
       false, Table()},
      {"SELECT pi.id, bp FROM patient_info AS pi JOIN blood_tests AS bt ON "
       "pi.id = bt.id WHERE age > 40",
       false, Table()},
      {"SELECT airline, day_of_week, COUNT(*) AS n FROM flights WHERE "
       "distance > 300 GROUP BY airline, day_of_week HAVING COUNT(*) > 2",
       false, Table()},
      {"SELECT dest, MIN(distance) AS shortest FROM flights GROUP BY dest "
       "ORDER BY 2 DESC LIMIT 10",
       true, Table()},
  };
  for (auto& soak_case : cases) {
    soak_case.expected = Expected(soak_case.sql);
  }
  const std::string prepared_sql =
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > ? ORDER BY id";
  const std::vector<double> param_values = {5.0, 7.5};
  std::vector<Table> prepared_expected;
  prepared_expected.push_back(Expected(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > 5 ORDER BY id"));
  prepared_expected.push_back(Expected(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > 7.5 ORDER BY id"));
  ASSERT_FALSE(HasFailure());

  QueryServerOptions options = DefaultOptions();
  // Two slots against 8 clients keeps the queue busy; depth 6 holds all
  // waiting soak clients, so sheds come from the deliberate slot-pinning
  // window and the chaos client — pressure without starving the traffic.
  options.admission.max_concurrent = 2;
  options.admission.max_queue = 6;
  options.admission.queue_timeout_millis = 120000;
  // Cross-query micro-batching ON for the whole soak: the byte-identity
  // bar below also proves coalesced PREDICT rows scatter back exactly.
  options.default_execution.predict_batch_window_micros = 1000;
  options.default_execution.predict_max_batch_rows = 256;
  QueryServer server(&ctx_, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kIterations = 30;
  std::atomic<std::int64_t> comparisons{0};
  std::atomic<std::int64_t> busy{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int tid = 0; tid < kClients; ++tid) {
    clients.emplace_back([&, tid] {
      ServerClient client;
      Status connected = client.ConnectUnix(server.unix_socket_path());
      EXPECT_TRUE(connected.ok()) << connected.ToString();
      if (!connected.ok()) return;
      auto prep = client.Query("PREPARE soak AS " + prepared_sql);
      EXPECT_TRUE(prep.ok() && prep->kind == ServerResponseKind::kAck);
      const int shapes = static_cast<int>(cases.size()) +
                         static_cast<int>(param_values.size());
      for (int iter = 0; iter < kIterations; ++iter) {
        const int pick = (tid + iter) % shapes;
        const Table* expected = nullptr;
        bool ordered = false;
        bool compared = false;
        // A real client backs off and retries on kBusy; shed responses are
        // still counted, but sustained pressure (sanitizer slowdowns, the
        // 150 ms pinned-slot window) must not starve the soak of
        // comparisons — so the retry budget is wall time, not attempts.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (std::chrono::steady_clock::now() < deadline) {
          Result<ServerResponse> response = Status::Internal("unset");
          if (pick < static_cast<int>(cases.size())) {
            response =
                client.Query(cases[static_cast<std::size_t>(pick)].sql);
            expected = &cases[static_cast<std::size_t>(pick)].expected;
            ordered = cases[static_cast<std::size_t>(pick)].ordered;
          } else {
            const std::size_t p =
                static_cast<std::size_t>(pick) - cases.size();
            response = client.ExecutePrepared("soak", {param_values[p]});
            expected = &prepared_expected[p];
            ordered = true;
          }
          ASSERT_TRUE(response.ok()) << response.status().ToString();
          if (response->kind == ServerResponseKind::kBusy) {
            busy.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            continue;
          }
          ASSERT_EQ(response->kind, ServerResponseKind::kTable)
              << response->message;
          ASSERT_NO_FATAL_FAILURE(
              ExpectTablesIdentical(*expected, response->table, ordered));
          comparisons.fetch_add(1);
          compared = true;
          break;
        }
        ASSERT_TRUE(compared) << "kBusy sheds for 30 s straight";
      }
    });
  }

  // Client 9: connects, fires a PREDICT, and vanishes mid-flight — over
  // and over. The server must stay healthy throughout.
  std::thread chaos([&server] {
    for (int round = 0; round < 10; ++round) {
      ServerClient doomed;
      if (!doomed.ConnectUnix(server.unix_socket_path()).ok()) continue;
      ClientRequest request;
      request.command = ClientCommand::kQuery;
      request.sql =
          "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) "
          "WITH(p float) WHERE p > 1";
      (void)doomed.Send(request);
      std::this_thread::sleep_for(std::chrono::milliseconds(round % 4));
      doomed.Abort();
    }
  });

  // Pin the execution slots for a moment mid-soak so arrivals must queue —
  // and, with the queue this small, shed. This exercises the queue-full
  // path deterministically rather than hoping for the right interleaving.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    auto slot_a = server.admission().Admit();
    auto slot_b = server.admission().Admit();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }

  for (auto& client : clients) client.join();
  chaos.join();

  // The soak only proves something if real traffic flowed and compared:
  // with retry-on-busy, every iteration must eventually land.
  EXPECT_EQ(comparisons.load(), kClients * kIterations);
  const AdmissionController::Stats admission = server.admission().stats();
  EXPECT_GT(admission.ever_queued + admission.shed, 0)
      << "admission never saw pressure — the soak was vacuous";
  EXPECT_EQ(admission.active, 0);
  EXPECT_EQ(admission.queued, 0);
  // The chaos client's shed responses never reach it, so the soak clients
  // can only have observed a subset of the sheds admission counted.
  EXPECT_LE(busy.load(), admission.shed);

  // And the server is still fully functional.
  ServerClient survivor;
  ASSERT_TRUE(survivor.ConnectUnix(server.unix_socket_path()).ok());
  auto stats = survivor.Query("SHOW STATS");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->kind, ServerResponseKind::kStats);
  std::map<std::string, std::int64_t> by_key(stats->stats.begin(),
                                             stats->stats.end());
  EXPECT_GT(by_key["queries_served"], 0);
  EXPECT_GT(by_key["plan_cache_hits"], 0);
  EXPECT_GT(by_key["prepared_executions"], 0);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Cross-query inference micro-batching
// ---------------------------------------------------------------------------

TEST_F(QueryServerTest, BatchedPredictsCoalesceAcrossQueriesByteIdentically) {
  // 'delay' is the NNRT-lowered model ('los' is a small tree the optimizer
  // inlines into a CASE projection — nothing to batch there).
  const std::string sql =
      "SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) WITH(p float) "
      "WHERE p > 0.5";
  const Table expected = Expected(sql);
  ASSERT_FALSE(HasFailure());

  QueryServerOptions options = DefaultOptions();
  options.default_execution.predict_batch_window_micros = 3000;
  options.default_execution.predict_max_batch_rows = 512;
  // Small morsels: each scorer submission stays under max_batch_rows, so
  // concurrent queries' morsels are eligible to share NNRT calls.
  options.default_execution.morsel_rows = 64;
  QueryServer server(&ctx_, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 6;
  constexpr int kIterations = 5;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int tid = 0; tid < kClients; ++tid) {
    clients.emplace_back([&] {
      ServerClient client;
      Status connected = client.ConnectUnix(server.unix_socket_path());
      ASSERT_TRUE(connected.ok()) << connected.ToString();
      for (int i = 0; i < kIterations; ++i) {
        auto response = client.Query(sql);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        ASSERT_EQ(response->kind, ServerResponseKind::kTable)
            << response->message;
        ASSERT_NO_FATAL_FAILURE(
            ExpectTablesIdentical(expected, response->table, false));
      }
    });
  }
  for (auto& client : clients) client.join();

  // Identity held above; now prove the sharing actually happened (6
  // clients x dop-4 morsel pipelines against one model cannot all have
  // flown solo).
  const ServerStats stats = server.Snapshot();
  EXPECT_GT(stats.batches_flushed, 0);
  EXPECT_GT(stats.rows_coalesced, 0)
      << "no cross-query coalescing happened — concurrent PREDICT morsels "
         "never shared an NNRT call";
  EXPECT_GT(stats.batch_occupancy, 100);  // > 1 row per physical call, x100
  EXPECT_GT(stats.epoll_wakeups, 0);
  server.Stop();
}

TEST_F(QueryServerTest, ExplainReportsBatchEligiblePredicts) {
  QueryServerOptions options = DefaultOptions();
  QueryServer server(&ctx_, options);
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());
  auto plain = client.Query(
      "EXPLAIN SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) "
      "WITH(p float) WHERE p > 0.5");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_EQ(plain->kind, ServerResponseKind::kAck) << plain->message;
  EXPECT_NE(plain->message.find("batch-eligible: Predict(delay)"),
            std::string::npos)
      << plain->message;
  EXPECT_NE(plain->message.find("batch_window_micros = 0"),
            std::string::npos)
      << plain->message;
  // The knob report tracks the session's SET state.
  auto set = client.Query("SET batch_window_micros = 500");
  ASSERT_TRUE(set.ok() && set->kind == ServerResponseKind::kAck)
      << set->message;
  auto tuned = client.Query(
      "EXPLAIN SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) "
      "WITH(p float) WHERE p > 6");
  ASSERT_TRUE(tuned.ok());
  ASSERT_EQ(tuned->kind, ServerResponseKind::kAck);
  EXPECT_NE(tuned->message.find("batch_window_micros = 500"),
            std::string::npos)
      << tuned->message;
  // A model-free statement has nothing to batch — and says nothing.
  auto scan = client.Query("EXPLAIN SELECT id FROM patients WHERE age > 40");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->kind, ServerResponseKind::kAck);
  EXPECT_EQ(scan->message.find("batch-eligible"), std::string::npos);
}

TEST_F(QueryServerTest, StopUnderBatchedLoadDrainsPendingPredicts) {
  QueryServerOptions options = DefaultOptions();
  // Long windows and a cap groups never reach: without the Stop-path
  // batcher drain, in-flight PREDICT morsels would each sit out their full
  // window during shutdown.
  options.default_execution.predict_batch_window_micros = 500000;
  options.default_execution.predict_max_batch_rows = 65536;
  options.default_execution.morsel_rows = 64;
  QueryServer server(&ctx_, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 6;
  std::atomic<std::int64_t> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int tid = 0; tid < kClients; ++tid) {
    clients.emplace_back([&] {
      ServerClient client;
      if (!client.ConnectUnix(server.unix_socket_path()).ok()) return;
      for (int i = 0; i < 50; ++i) {
        auto response = client.Query(
            "SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) "
            "WITH(p float) WHERE p > 0.5");
        // Stop() severs connections; transport errors are the expected
        // way out. Any response that does arrive must be well-formed.
        if (!response.ok()) return;
        if (response->kind != ServerResponseKind::kTable) return;
        completed.fetch_add(1);
      }
    });
  }
  // Let real batched load build up, then stop under it.
  while (completed.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto stop_start = std::chrono::steady_clock::now();
  server.Stop();
  const auto stop_elapsed = std::chrono::steady_clock::now() - stop_start;
  for (auto& client : clients) client.join();

  // Stop waited only for in-flight statements (which drain their batch
  // groups immediately), never a full 500 ms window per pending morsel —
  // and no PREDICT waiter was left blocked, or the joins above would hang.
  EXPECT_LT(stop_elapsed, std::chrono::seconds(30));
  EXPECT_GT(completed.load(), 0);
  EXPECT_FALSE(server.running());
}

// ---------------------------------------------------------------------------
// Batch-occupancy rounding, NNRT knobs/stats, and the artifact cold start
// ---------------------------------------------------------------------------

TEST(ServerStatsTest, BatchOccupancyRoundsHalfUpAndZeroIsExplicit) {
  // Zero batches is explicitly 0 — not a division fault, not stale data.
  EXPECT_EQ(ServerStats::BatchOccupancyX100(0, 0), 0);
  EXPECT_EQ(ServerStats::BatchOccupancyX100(5, 0), 0);
  EXPECT_EQ(ServerStats::BatchOccupancyX100(0, 5), 0);
  // Round half-up, not truncate: 1/3 rows per batch is 33.33 -> 33,
  // 2/3 is 66.67 -> 67 (truncation used to report 66).
  EXPECT_EQ(ServerStats::BatchOccupancyX100(1, 3), 33);
  EXPECT_EQ(ServerStats::BatchOccupancyX100(2, 3), 67);
  // Exactly .5 rounds up: 1/8 rows per batch = 12.5 -> 13.
  EXPECT_EQ(ServerStats::BatchOccupancyX100(1, 8), 13);
  // Whole ratios stay exact.
  EXPECT_EQ(ServerStats::BatchOccupancyX100(5, 2), 250);
  EXPECT_EQ(ServerStats::BatchOccupancyX100(64, 1), 6400);
}

TEST_F(QueryServerTest, NnBackendAndSessionCacheKnobs) {
  const std::string sql =
      "SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) WITH(p float) "
      "WHERE p > 0.5";
  const Table expected = Expected(sql);
  ASSERT_FALSE(HasFailure());
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());

  // The SIMD backend is bit-identical to reference, so the result must be
  // byte-identical to in-process execution.
  auto set_simd = client.Query("SET nn_backend = simd");
  ASSERT_TRUE(set_simd.ok());
  ASSERT_EQ(set_simd->kind, ServerResponseKind::kAck) << set_simd->message;
  auto simd_result = client.Query(sql);
  ASSERT_TRUE(simd_result.ok());
  ASSERT_EQ(simd_result->kind, ServerResponseKind::kTable)
      << simd_result->message;
  ExpectTablesIdentical(expected, simd_result->table, false);

  // EXPLAIN reports the session's backend, and fp16 carries its accuracy
  // caveat.
  auto set_fp16 = client.Query("SET nn_backend = fp16");
  ASSERT_TRUE(set_fp16.ok());
  ASSERT_EQ(set_fp16->kind, ServerResponseKind::kAck) << set_fp16->message;
  auto explained = client.Query("EXPLAIN " + sql);
  ASSERT_TRUE(explained.ok());
  ASSERT_EQ(explained->kind, ServerResponseKind::kAck);
  EXPECT_NE(explained->message.find("nn_backend = fp16"), std::string::npos)
      << explained->message;
  EXPECT_NE(explained->message.find("rounded to fp16"), std::string::npos)
      << explained->message;

  // Bad values error without dropping the session.
  auto bad_backend = client.Query("SET nn_backend = avx512");
  ASSERT_TRUE(bad_backend.ok());
  EXPECT_EQ(bad_backend->kind, ServerResponseKind::kError);

  // The session-cache capacity knob is server-wide and bounded.
  auto set_cap = client.Query("SET nn_session_cache_capacity = 16");
  ASSERT_TRUE(set_cap.ok());
  EXPECT_EQ(set_cap->kind, ServerResponseKind::kAck) << set_cap->message;
  EXPECT_EQ(ctx_.session_cache().capacity(), 16u);
  auto cap_negative = client.Query("SET nn_session_cache_capacity = -1");
  ASSERT_TRUE(cap_negative.ok());
  EXPECT_EQ(cap_negative->kind, ServerResponseKind::kError);
  auto cap_huge = client.Query("SET nn_session_cache_capacity = 100000");
  ASSERT_TRUE(cap_huge.ok());
  EXPECT_EQ(cap_huge->kind, ServerResponseKind::kError);
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(QueryServerTest, ShowStatsReportsNnCounters) {
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());
  const std::string sql =
      "SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) WITH(p float) "
      "WHERE p > 0.5";
  ASSERT_TRUE(client.Query(sql).ok());
  ASSERT_TRUE(client.Query(sql).ok());
  auto stats = client.Query("SHOW STATS");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->kind, ServerResponseKind::kStats);
  std::map<std::string, std::int64_t> by_key(stats->stats.begin(),
                                             stats->stats.end());
  ASSERT_TRUE(by_key.count("nn_session_hits"));
  ASSERT_TRUE(by_key.count("nn_artifact_rejects"));
  EXPECT_GE(by_key["nn_session_misses"], 1);
  EXPECT_GE(by_key["nn_session_hits"], 1);
  EXPECT_GE(by_key["nn_session_entries"], 1);
  EXPECT_GE(by_key["nn_graph_optimizations"], 1);
  // Per-op profiling feeds SHOW STATS through the shared profiler.
  EXPECT_GT(by_key["nn_ops_profiled"], 0);
  // No artifact dir attached here.
  EXPECT_EQ(by_key["nn_artifact_hits"], 0);
  EXPECT_EQ(by_key["nn_artifact_writes"], 0);
}

// ---------------------------------------------------------------------------
// Observability: tracing, the slow-query log, metrics, EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

/// Minimal HTTP/1.0 GET against the loopback metrics listener; returns the
/// raw response (status line, headers, body).
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(QueryServerTest, TraceKnobAndVerbRecordSessionScopedSpanTrees) {
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());

  auto before = client.Query("SHOW TRACE");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->kind, ServerResponseKind::kAck);
  EXPECT_NE(before->message.find("(no trace recorded"), std::string::npos)
      << before->message;

  ASSERT_EQ(client.Query("SET trace = on")->kind, ServerResponseKind::kAck);
  auto traced = client.Query("SELECT COUNT(*) AS n FROM flights");
  ASSERT_TRUE(traced.ok());
  ASSERT_EQ(traced->kind, ServerResponseKind::kTable) << traced->message;
  auto tree = client.Query("SHOW TRACE");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->kind, ServerResponseKind::kAck);
  for (const char* span : {"plan_cache.lookup", "parse", "optimize",
                           "admission.wait", "execute", "op:"}) {
    EXPECT_NE(tree->message.find(span), std::string::npos)
        << "missing span '" << span << "' in:\n"
        << tree->message;
  }

  // TRACE <statement> really executes the statement and answers with the
  // tree instead of the rows; its plan probe shows up as a cache hit.
  auto verb = client.Query("TRACE SELECT COUNT(*) AS n FROM flights");
  ASSERT_TRUE(verb.ok());
  ASSERT_EQ(verb->kind, ServerResponseKind::kAck) << verb->message;
  EXPECT_NE(verb->message.find("execute"), std::string::npos)
      << verb->message;
  EXPECT_NE(verb->message.find("hit"), std::string::npos) << verb->message;

  // Errors pass through; a bare TRACE is rejected.
  EXPECT_EQ(client.Query("TRACE")->kind, ServerResponseKind::kError);
  EXPECT_EQ(client.Query("TRACE SELECT nope FROM missing")->kind,
            ServerResponseKind::kError);

  // The recorded tree is session state, not server state.
  ServerClient other;
  ASSERT_TRUE(other.ConnectUnix(server.unix_socket_path()).ok());
  auto fresh = other.Query("SHOW TRACE");
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh->message.find("(no trace recorded"), std::string::npos);
}

TEST_F(QueryServerTest, SlowQueryLogAppendsJsonSpanTreesOverThreshold) {
  const std::string log_path = "/tmp/raven_server_test_slow_" +
                               std::to_string(::getpid()) + ".jsonl";
  std::remove(log_path.c_str());
  QueryServerOptions options = DefaultOptions();
  options.slow_query_log_path = log_path;
  QueryServer server(&ctx_, options);
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());

  // No threshold set: nothing logs, however slow the statement.
  ASSERT_EQ(client.Query("SELECT COUNT(*) AS n FROM flights")->kind,
            ServerResponseKind::kTable);
  {
    std::FILE* f = std::fopen(log_path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << "log not opened at Start";
    std::fseek(f, 0, SEEK_END);
    EXPECT_EQ(std::ftell(f), 0) << "logged without a threshold";
    std::fclose(f);
  }

  // Threshold 1 ms; a many-to-many self join is reliably over it.
  ASSERT_EQ(client.Query("SET slow_query_millis = 1")->kind,
            ServerResponseKind::kAck);
  const std::string heavy =
      "SELECT COUNT(*) AS n FROM flights AS f "
      "JOIN flights AS g ON f.airline = g.airline";
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(client.Query(heavy)->kind, ServerResponseKind::kTable);
  }

  auto stats = client.Query("SHOW STATS");
  ASSERT_TRUE(stats.ok());
  std::map<std::string, std::int64_t> by_key(stats->stats.begin(),
                                             stats->stats.end());
  ASSERT_TRUE(by_key.count("slow_queries"));
  EXPECT_GE(by_key["slow_queries"], 1);

  server.Stop();  // flushes and closes the log
  std::ifstream log(log_path);
  ASSERT_TRUE(log.good());
  std::string line;
  int json_lines = 0;
  while (std::getline(log, line)) {
    EXPECT_NE(line.find("\"query\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"total_micros\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"spans\":["), std::string::npos) << line;
    EXPECT_NE(line.find("\"name\":\"execute\""), std::string::npos) << line;
    ++json_lines;
  }
  EXPECT_GE(json_lines, 1);
  EXPECT_EQ(json_lines, by_key["slow_queries"]);
  std::remove(log_path.c_str());
}

TEST_F(QueryServerTest, ShowMetricsAndHttpScrapeExportTheSameRegistry) {
  QueryServerOptions options = DefaultOptions();
  options.metrics_port = 0;  // kernel-assigned
  QueryServer server(&ctx_, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.metrics_tcp_port(), 0);
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());

  const std::string sql = "SELECT COUNT(*) AS n FROM flights";
  ASSERT_EQ(client.Query(sql)->kind, ServerResponseKind::kTable);
  ASSERT_EQ(client.Query(sql)->kind, ServerResponseKind::kTable);
  EXPECT_EQ(server.query_latency_histogram().Count(), 2);

  auto shown = client.Query("SHOW METRICS");
  ASSERT_TRUE(shown.ok());
  ASSERT_EQ(shown->kind, ServerResponseKind::kAck);
  const std::string& text = shown->message;
  EXPECT_NE(text.find("# TYPE raven_queries_served_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("raven_queries_served_total 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("raven_plan_cache_hits_total 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("raven_sessions_active 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE raven_query_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("raven_query_latency_seconds_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(text.find("raven_query_latency_seconds_count 2\n"),
            std::string::npos)
      << text;

  // The HTTP endpoint serves the same registry in the same format.
  const std::string scraped = HttpGet(server.metrics_tcp_port(), "/metrics");
  EXPECT_EQ(scraped.rfind("HTTP/1.0 200 OK", 0), 0u) << scraped;
  EXPECT_NE(scraped.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << scraped;
  EXPECT_NE(scraped.find("raven_queries_served_total 2\n"),
            std::string::npos)
      << scraped;
  EXPECT_NE(scraped.find("raven_query_latency_seconds_count 2\n"),
            std::string::npos);

  // Anything but /metrics is a 404, and scrapes never count as queries.
  const std::string missing = HttpGet(server.metrics_tcp_port(), "/bogus");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;
  EXPECT_EQ(server.Snapshot().queries_served, 2);
}

TEST_F(QueryServerTest, ExplainAnalyzeExecutesUnderTheSessionPlanCache) {
  QueryServer server(&ctx_, DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  ServerClient client;
  ASSERT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());

  const std::string sql =
      "SELECT airline, COUNT(*) AS n FROM flights GROUP BY airline";
  auto cold = client.Query("EXPLAIN ANALYZE " + sql);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->kind, ServerResponseKind::kAck) << cold->message;
  EXPECT_FALSE(cold->plan_cache_hit);
  EXPECT_NE(cold->message.find("=== EXPLAIN ANALYZE ==="), std::string::npos)
      << cold->message;
  EXPECT_NE(cold->message.find("result_rows="), std::string::npos);
  EXPECT_NE(cold->message.find("[Scan(flights):"), std::string::npos)
      << cold->message;

  // The statement body shares the cache with its plain spelling.
  ASSERT_EQ(client.Query(sql)->kind, ServerResponseKind::kTable);
  auto warm = client.Query("EXPLAIN ANALYZE " + sql);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->kind, ServerResponseKind::kAck);
  EXPECT_TRUE(warm->plan_cache_hit);

  // It executes for real: three of the served statements were ours.
  EXPECT_EQ(server.Snapshot().queries_served, 3);

  EXPECT_EQ(client.Query("EXPLAIN ANALYZE")->kind,
            ServerResponseKind::kError);
  auto params = client.Query(
      "EXPLAIN ANALYZE SELECT id FROM flights WHERE distance > ?");
  ASSERT_TRUE(params.ok());
  ASSERT_EQ(params->kind, ServerResponseKind::kError);
  EXPECT_NE(params->message.find("cannot bind"), std::string::npos)
      << params->message;
}

/// Boots a server over a fresh RavenContext pointed at `artifact_dir`,
/// serves `sql` once, and returns (SHOW STATS map, result table).
std::pair<std::map<std::string, std::int64_t>, Table> ServeOnceWithArtifacts(
    const std::string& artifact_dir, const data::FlightDataset& flight,
    const std::string& sql) {
  RavenOptions raven_options;
  raven_options.artifact_dir = artifact_dir;
  RavenContext ctx(raven_options);
  test_util::RegisterFlightTable(&ctx.catalog(), flight);
  auto logreg = data::TrainFlightLogreg(flight, 0.01);
  EXPECT_TRUE(logreg.ok());
  EXPECT_TRUE(ctx.catalog()
                  .InsertModel("delay", data::FlightLogregScript(),
                               logreg->ToBytes())
                  .ok());
  QueryServerOptions options;
  options.unix_socket_path = UniqueSocketPath();
  QueryServer server(&ctx, options);
  EXPECT_TRUE(server.Start().ok());
  ServerClient client;
  EXPECT_TRUE(client.ConnectUnix(server.unix_socket_path()).ok());
  auto response = client.Query(sql);
  EXPECT_TRUE(response.ok());
  Table table;
  if (response.ok()) {
    EXPECT_EQ(response->kind, ServerResponseKind::kTable)
        << response->message;
    table = response->table;
  }
  auto stats = client.Query("SHOW STATS");
  EXPECT_TRUE(stats.ok());
  std::map<std::string, std::int64_t> by_key;
  if (stats.ok()) {
    by_key.insert(stats->stats.begin(), stats->stats.end());
  }
  server.Stop();
  return {std::move(by_key), std::move(table)};
}

TEST(ServerArtifactTest, WarmColdStartSkipsOptimizerAndSurvivesCorruption) {
  char tmpl[] = "/tmp/raven_server_artifact_XXXXXX";
  const char* made = ::mkdtemp(tmpl);
  ASSERT_NE(made, nullptr);
  const std::string dir = made;
  const data::FlightDataset flight = data::MakeFlightDataset(500, 7);
  const std::string sql =
      "SELECT id, p FROM PREDICT(MODEL='delay', DATA=flights) WITH(p float) "
      "WHERE p > 0.5";

  // Server #1: cold compile, artifacts written.
  auto [cold, cold_table] = ServeOnceWithArtifacts(dir, flight, sql);
  ASSERT_FALSE(::testing::Test::HasFailure());
  EXPECT_GE(cold["nn_graph_optimizations"], 1);
  EXPECT_GE(cold["nn_artifact_writes"], 1);
  EXPECT_EQ(cold["nn_artifact_hits"], 0);

  // Server #2 (a process restart, modeled as a fresh context): the whole
  // point of the artifact cache — zero graph optimizations on cold start.
  auto [warm, warm_table] = ServeOnceWithArtifacts(dir, flight, sql);
  ASSERT_FALSE(::testing::Test::HasFailure());
  EXPECT_EQ(warm["nn_graph_optimizations"], 0)
      << "warm-artifact cold start re-ran the graph optimizer";
  EXPECT_GE(warm["nn_artifact_hits"], 1);
  ExpectTablesIdentical(cold_table, warm_table, false);

  // Corrupt every artifact on disk; serving must fall back to a fresh
  // compile (no query error) and rewrite the artifacts.
  int corrupted = 0;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      std::FILE* f = std::fopen((dir + "/" + name).c_str(), "wb");
      ASSERT_NE(f, nullptr);
      std::fputs("garbage", f);
      std::fclose(f);
      ++corrupted;
    }
    ::closedir(d);
  }
  ASSERT_GT(corrupted, 0);
  auto [rescued, rescued_table] = ServeOnceWithArtifacts(dir, flight, sql);
  ASSERT_FALSE(::testing::Test::HasFailure());
  EXPECT_GE(rescued["nn_artifact_rejects"], 1);
  EXPECT_GE(rescued["nn_graph_optimizations"], 1);
  ExpectTablesIdentical(cold_table, rescued_table, false);

  // And the rewrite healed the cache: one more restart warm-starts again.
  auto [healed, healed_table] = ServeOnceWithArtifacts(dir, flight, sql);
  ASSERT_FALSE(::testing::Test::HasFailure());
  EXPECT_EQ(healed["nn_graph_optimizations"], 0);
  EXPECT_GE(healed["nn_artifact_hits"], 1);
  ExpectTablesIdentical(cold_table, healed_table, false);

  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") {
        ::unlink((dir + "/" + name).c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace raven::server
