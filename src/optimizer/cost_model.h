#ifndef RAVEN_OPTIMIZER_COST_MODEL_H_
#define RAVEN_OPTIMIZER_COST_MODEL_H_

#include "common/status.h"
#include "ir/ir.h"
#include "relational/catalog.h"

namespace raven::optimizer {

/// Cardinality and cost estimate for a plan subtree. Units are abstract
/// "work units" (roughly: one scalar op). This is the seed of the paper's
/// planned cost-based Cascades optimizer (§4.3): the heuristic pipeline
/// uses it today to choose between model inlining and NN translation, and
/// EXPLAIN surfaces it.
struct PlanCost {
  double output_rows = 0.0;
  double total_cost = 0.0;
};

/// Per-row scoring cost of a model pipeline (featurization + predictor).
double PipelineRowCost(const ml::ModelPipeline& pipeline);

/// Static per-row cost of an NNRT graph (sum of kernel flop estimates for a
/// single-row batch).
double NnGraphRowCost(const nnrt::Graph& graph);

/// Estimates cardinality and cost bottom-up. Filters use a fixed 0.4
/// selectivity unless the predicate is a conjunction (0.4 per conjunct);
/// joins assume key-FK matches (|left| rows out).
Result<PlanCost> EstimateCost(const ir::IrNode& node,
                              const relational::Catalog& catalog);

}  // namespace raven::optimizer

#endif  // RAVEN_OPTIMIZER_COST_MODEL_H_
