// The paper's running example (Fig 1) end to end: three joined tables, a
// stored decision-tree pipeline, and the full cross-optimization chain —
// predicate pushdown, predicate-based model pruning, model-projection
// pushdown, model inlining, join elimination. Prints EXPLAIN output showing
// the unified IR before/after optimization.
//
//   ./build/examples/hospital_los

#include <cstdio>

#include "data/hospital.h"
#include "raven/raven.h"

int main() {
  using namespace raven;
  RavenContext ctx;

  auto data = data::MakeHospitalDataset(50000, /*seed=*/11);
  (void)ctx.RegisterTable("patient_info", data.patient_info);
  (void)ctx.RegisterTable("blood_tests", data.blood_tests);
  (void)ctx.RegisterTable("prenatal_tests", data.prenatal_tests);

  auto pipeline = data::TrainHospitalTree(data, 8);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  (void)ctx.InsertModel("duration_of_stay", data::HospitalTreeScript(),
                        *pipeline);

  const char* sql =
      "WITH data AS (SELECT * FROM patient_info AS pi "
      "  JOIN blood_tests AS bt ON pi.id = bt.id "
      "  JOIN prenatal_tests AS pt ON bt.id = pt.id) "
      "SELECT id, length_of_stay "
      "FROM PREDICT(MODEL='duration_of_stay', DATA=data) "
      "WITH(length_of_stay float) "
      "WHERE pregnant = 1 AND length_of_stay > 7";

  // EXPLAIN: the unified IR before/after cross optimization.
  auto explain = ctx.Explain(sql);
  if (!explain.ok()) {
    std::fprintf(stderr, "%s\n", explain.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", explain->c_str());

  // Execute with and without optimizations and compare latency.
  auto optimized = ctx.Query(sql);
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
    return 1;
  }

  RavenOptions off;
  off.optimizer.predicate_pushdown = false;
  off.optimizer.predicate_model_pruning = false;
  off.optimizer.model_projection_pushdown = false;
  off.optimizer.projection_pushdown = false;
  off.optimizer.join_elimination = false;
  off.optimizer.model_inlining = false;
  off.optimizer.nn_translation = false;
  RavenContext baseline(off);
  (void)baseline.RegisterTable("patient_info", data.patient_info);
  (void)baseline.RegisterTable("blood_tests", data.blood_tests);
  (void)baseline.RegisterTable("prenatal_tests", data.prenatal_tests);
  (void)baseline.InsertModel("duration_of_stay", data::HospitalTreeScript(),
                             *pipeline);
  auto unoptimized = baseline.Query(sql);
  if (!unoptimized.ok()) {
    std::fprintf(stderr, "%s\n", unoptimized.status().ToString().c_str());
    return 1;
  }

  std::printf("rows returned: %lld (same either way: %s)\n",
              static_cast<long long>(optimized->table.num_rows()),
              optimized->table.num_rows() == unoptimized->table.num_rows()
                  ? "yes"
                  : "NO — BUG");
  std::printf("latency: optimized %.2f ms vs unoptimized %.2f ms (%.1fx)\n",
              optimized->total_millis, unoptimized->total_millis,
              unoptimized->total_millis / optimized->total_millis);
  return 0;
}
