#ifndef RAVEN_SERVER_ADMISSION_H_
#define RAVEN_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace raven::server {

/// Bounds on concurrent query execution (the server's overload valve).
struct AdmissionOptions {
  /// Queries executing simultaneously. Each runs its pipelines on the
  /// shared global ThreadPool, so this bound — not the connection count —
  /// is what keeps the pool from oversubscribing.
  std::int64_t max_concurrent = 4;
  /// Queries allowed to wait for a slot; arrivals beyond this are shed
  /// immediately with kServerBusy.
  std::int64_t max_queue = 16;
  /// Longest a queued query waits before being shed (<= 0: wait forever).
  std::int64_t queue_timeout_millis = 30000;
  /// Per-query result cap in rows (0 = unlimited): a query whose result
  /// exceeds it fails with ExecutionError instead of serializing an
  /// arbitrarily large response frame. Checked after execution — it bounds
  /// what is buffered for the wire, not the engine's working memory while
  /// materializing the result (that would need an in-executor row budget).
  std::int64_t max_result_rows = 0;
};

/// Gates query execution: at most max_concurrent tickets are outstanding,
/// up to max_queue callers block waiting for one, and everyone else is
/// shed with Status::ServerBusy for the client to retry. Thread-safe.
class AdmissionController {
 public:
  struct Stats {
    std::int64_t active = 0;       ///< tickets outstanding right now
    std::int64_t queued = 0;       ///< callers waiting right now
    std::int64_t admitted = 0;     ///< lifetime successful admissions
    std::int64_t ever_queued = 0;  ///< admissions that had to wait
    std::int64_t shed = 0;         ///< rejected: queue full
    std::int64_t timeouts = 0;     ///< rejected: queue wait expired
    std::int64_t peak_active = 0;
    std::int64_t peak_queued = 0;
  };

  /// RAII execution slot; releasing (destruction) wakes one queued waiter.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      controller_ = other.controller_;
      queue_wait_micros_ = other.queue_wait_micros_;
      other.controller_ = nullptr;
      return *this;
    }
    ~Ticket() { Release(); }

    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    /// Time spent waiting for the slot (0 when admitted immediately).
    double queue_wait_micros() const { return queue_wait_micros_; }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, double queue_wait_micros)
        : controller_(controller), queue_wait_micros_(queue_wait_micros) {}
    void Release();

    AdmissionController* controller_ = nullptr;
    double queue_wait_micros_ = 0.0;
  };

  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  /// Blocks until a slot frees up (bounded by max_queue / the queue
  /// timeout) and returns the held slot, or Status::ServerBusy.
  Result<Ticket> Admit();

  Stats stats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  void Release();

  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t active_ = 0;
  std::int64_t queued_ = 0;
  Stats lifetime_;  ///< counters other than the live gauges
};

}  // namespace raven::server

#endif  // RAVEN_SERVER_ADMISSION_H_
