// In-text numbers, §4.1 "Predicate-based model pruning":
//   - hospital decision tree: pruning on pregnant=1 improves prediction
//     time by ~29% (right subtree eliminated);
//   - flight logistic regression with a destination-airport filter: ~2.1x
//     regardless of selectivity (the one-hot block folds into the bias —
//     what matters is how many features drop, not how many rows pass).

#include "bench_util.h"
#include "optimizer/specialize.h"

namespace raven {
namespace {

constexpr std::int64_t kRows = 100000;

void BM_TreeFull(benchmark::State& state) {
  const auto& data = bench::Hospital(kRows);
  static auto* model = new ml::ModelPipeline(
      bench::Must(data::TrainHospitalTree(data, 10), "train"));
  Tensor x =
      bench::Must(data.joined.ToTensor(model->input_columns), "tensor");
  for (auto _ : state) {
    auto preds = model->Predict(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["tree_nodes"] = static_cast<double>(
      std::get<ml::DecisionTree>(model->predictor).num_nodes());
}

void BM_TreePrunedPregnant(benchmark::State& state) {
  const auto& data = bench::Hospital(kRows);
  static auto* model = new ml::ModelPipeline(
      bench::Must(data::TrainHospitalTree(data, 10), "train"));
  static auto* pruned = new ml::ModelPipeline(
      bench::Must(optimizer::PruneWithPredicates(
                      *model, {relational::SimplePredicate{
                                  "pregnant", relational::CompareOp::kEq,
                                  1.0}}),
                  "prune")
          .pipeline);
  Tensor x =
      bench::Must(data.joined.ToTensor(pruned->input_columns), "tensor");
  for (auto _ : state) {
    auto preds = pruned->Predict(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["tree_nodes"] = static_cast<double>(
      std::get<ml::DecisionTree>(pruned->predictor).num_nodes());
}

void BM_LogregFull(benchmark::State& state) {
  const auto& data = bench::Flight(kRows);
  static auto* model = new ml::ModelPipeline(
      bench::Must(data::TrainFlightLogreg(data, 0.0), "train"));
  Tensor x =
      bench::Must(data.flights.ToTensor(model->input_columns), "tensor");
  for (auto _ : state) {
    auto preds = model->Predict(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["features"] = static_cast<double>(model->NumFeatures());
}

// The selectivity argument (destination code) varies; feature count and
// hence speedup stay constant — the paper's point.
void BM_LogregDestFiltered(benchmark::State& state) {
  const auto& data = bench::Flight(kRows);
  static auto* model = new ml::ModelPipeline(
      bench::Must(data::TrainFlightLogreg(data, 0.0), "train"));
  const double dest_code = static_cast<double>(state.range(0));
  auto spec = bench::Must(
      optimizer::PruneWithPredicates(
          *model, {relational::SimplePredicate{
                      "dest", relational::CompareOp::kEq, dest_code}}),
      "prune");
  Tensor x =
      bench::Must(data.flights.ToTensor(spec.kept_inputs), "tensor");
  for (auto _ : state) {
    auto preds = spec.pipeline.Predict(x);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["features"] =
      static_cast<double>(spec.pipeline.NumFeatures());
  state.counters["dest_code"] = dest_code;
}

BENCHMARK(BM_TreeFull)->Iterations(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TreePrunedPregnant)
    ->Iterations(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LogregFull)->Iterations(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LogregDestFiltered)
    ->Arg(3)->Arg(17)->Arg(42)
    ->Iterations(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace raven
