#include "raven/raven.h"

#include <cstdio>
#include <map>

#include "common/timer.h"

namespace raven {

RavenContext::RavenContext(RavenOptions options)
    : options_(std::move(options)),
      session_cache_(options_.session_cache_capacity),
      analyzer_(&catalog_),
      optimizer_(&catalog_, options_.optimizer),
      executor_(&catalog_, &session_cache_) {
  // When the caller didn't pin an explicit costing target, the optimizer
  // follows the runtime's parallelism (kept in sync per query, so
  // post-construction `execution_options().parallelism = N` is honored).
  optimizer_parallelism_auto_ = options_.optimizer.target_parallelism <= 1;
  if (!options_.artifact_dir.empty()) {
    session_cache_.AttachArtifacts(
        std::make_shared<nnrt::ArtifactCache>(options_.artifact_dir));
    // Distributed/out-of-process children reuse the same artifact directory:
    // a model the coordinator compiled is a warm start for every worker.
    options_.execution.external.worker_args.push_back(
        "--artifact-dir=" + options_.artifact_dir);
  }
}

void RavenContext::SyncOptimizerParallelism() {
  if (optimizer_parallelism_auto_) {
    // Only in-process plans morsel-parallelize; costing worker/container
    // modes at dop > 1 would promise speedups the executor never delivers.
    // Distributed mode runs its in-process remainder sequentially, so its
    // dop is 1 too — its parallelism lives in the worker pool instead.
    optimizer_.mutable_options().target_parallelism =
        options_.execution.mode == runtime::ExecutionMode::kInProcess
            ? options_.execution.parallelism
            : 1;
  }
  optimizer_.mutable_options().target_distributed_workers =
      options_.execution.mode == runtime::ExecutionMode::kDistributed
          ? options_.execution.distributed_workers
          : 0;
}

Status RavenContext::RegisterTable(const std::string& name,
                                   relational::Table table) {
  return catalog_.RegisterTable(name, std::move(table));
}

Status RavenContext::RegisterDiskTable(
    const std::string& name,
    std::shared_ptr<const relational::BlockTable> table) {
  return catalog_.RegisterDiskTable(name, std::move(table));
}

Status RavenContext::InsertModel(const std::string& name,
                                 const std::string& script,
                                 const ml::ModelPipeline& pipeline) {
  return catalog_.InsertModel(name, script, pipeline.ToBytes());
}

Status RavenContext::UpdateModel(const std::string& name,
                                 const std::string& script,
                                 const ml::ModelPipeline& pipeline) {
  return catalog_.UpdateModel(name, script, pipeline.ToBytes());
}

Status RavenContext::BuildClusteredModel(
    const std::string& model_name, const std::string& sample_table,
    const optimizer::ClusteringOptions& options) {
  RAVEN_ASSIGN_OR_RETURN(relational::StoredModel stored,
                         catalog_.GetModel(model_name));
  RAVEN_ASSIGN_OR_RETURN(ml::ModelPipeline pipeline,
                         ml::ModelPipeline::FromBytes(stored.pipeline_bytes));
  RAVEN_ASSIGN_OR_RETURN(const relational::Table* sample,
                         catalog_.GetTable(sample_table));
  RAVEN_ASSIGN_OR_RETURN(ir::ClusteredModel artifact,
                         optimizer::BuildClusteredModel(pipeline, *sample,
                                                        options));
  optimizer_.RegisterClusteredModel(
      model_name, std::make_shared<ir::ClusteredModel>(std::move(artifact)));
  return Status::OK();
}

Result<ir::IrPlan> RavenContext::Prepare(
    const std::string& sql, optimizer::OptimizationReport* report) {
  SyncOptimizerParallelism();
  RAVEN_ASSIGN_OR_RETURN(ir::IrPlan plan, analyzer_.Analyze(sql));
  RAVEN_RETURN_IF_ERROR(optimizer_.Optimize(&plan, report));
  return plan;
}

Result<relational::Table> RavenContext::ExecutePlan(
    const ir::IrPlan& plan, runtime::ExecutionStats* stats) {
  return executor_.Execute(plan, options_.execution, stats);
}

Result<QueryResult> RavenContext::Query(const std::string& sql) {
  Timer timer;
  SyncOptimizerParallelism();
  QueryResult result;
  RAVEN_ASSIGN_OR_RETURN(ir::IrPlan plan,
                         analyzer_.Analyze(sql, &result.analysis));
  RAVEN_RETURN_IF_ERROR(optimizer_.Optimize(&plan, &result.optimization));
  result.generated_sql = runtime::GenerateSql(*plan.root());
  RAVEN_ASSIGN_OR_RETURN(result.table,
                         executor_.Execute(plan, options_.execution,
                                           &result.execution));
  result.total_millis = timer.ElapsedMillis();
  return result;
}

Result<std::string> RavenContext::Explain(const std::string& sql) {
  SyncOptimizerParallelism();
  frontend::AnalysisStats analysis;
  RAVEN_ASSIGN_OR_RETURN(ir::IrPlan plan, analyzer_.Analyze(sql, &analysis));
  optimizer::OptimizationReport report;
  RAVEN_RETURN_IF_ERROR(optimizer_.Optimize(&plan, &report));
  std::string out = "=== Unified IR (after static analysis) ===\n";
  out += report.before;
  if (analysis.used_udf_fallback) {
    out += "-- UDF fallback: " + analysis.fallback_reason + "\n";
  }
  out += "=== Optimized IR ===\n";
  out += report.after;
  out += "=== Rules ===\n";
  for (const auto& [rule, fired] : report.rule_applications) {
    out += "  " + rule + ": " + std::to_string(fired) + "\n";
  }
  out += "=== Estimated cost ===\n";
  out += "  sequential: " + std::to_string(report.sequential_cost) + "\n";
  if (report.costed_parallelism > 1) {
    out += "  parallel(dop=" + std::to_string(report.costed_parallelism) +
           "): " + std::to_string(report.parallel_cost) + "\n";
  }
  if (report.costed_distributed_workers > 1) {
    out += "  distributed(workers=" +
           std::to_string(report.costed_distributed_workers) +
           "): " + std::to_string(report.distributed_cost) + "\n";
  }
  if (!report.operator_costs.empty()) {
    out += "  operators (subtree totals):\n";
    for (const auto& row : report.operator_costs) {
      out += "    ";
      for (int i = 0; i < row.depth; ++i) out += "  ";
      out += row.op + " rows=" + std::to_string(row.output_rows) +
             " seq=" + std::to_string(row.sequential_cost);
      if (report.costed_parallelism > 1) {
        out += " par(dop=" + std::to_string(report.costed_parallelism) +
               ")=" + std::to_string(row.parallel_cost);
      }
      if (row.fused_into_parent) out += " [fused into parent]";
      out += "\n";
    }
  }
  const std::string fused = runtime::DescribeFusedChains(*plan.root());
  if (!fused.empty()) {
    // One line per chain the code generator collapses into a single
    // operator (single pass per chunk), components in execution order.
    out += "=== Fusion ===\n";
    std::size_t start = 0;
    while (start < fused.size()) {
      std::size_t end = fused.find('\n', start);
      if (end == std::string::npos) end = fused.size();
      out += "  " + fused.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  const std::string batchable =
      runtime::DescribeBatchablePredicts(*plan.root());
  if (!batchable.empty()) {
    // Which PREDICT nodes the cross-query micro-batcher can coalesce: one
    // line per NNRT-translated node. Eligibility is a plan property; the
    // window/row knobs are session state, reported by the server alongside.
    out += "=== Inference batching ===\n";
    std::size_t start = 0;
    while (start < batchable.size()) {
      std::size_t end = batchable.find('\n', start);
      if (end == std::string::npos) end = batchable.size();
      out += "  batch-eligible: " + batchable.substr(start, end - start) +
             "\n";
      start = end + 1;
    }
  }
  const std::string storage =
      runtime::DescribeStorageScans(*plan.root(), catalog_);
  if (!storage.empty()) {
    // One line per on-disk table the plan scans (block layout + encodings),
    // plus the predicate conjuncts the scan checks against block zone maps.
    out += "=== Storage ===\n";
    std::size_t start = 0;
    while (start < storage.size()) {
      std::size_t end = storage.find('\n', start);
      if (end == std::string::npos) end = storage.size();
      out += "  " + storage.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  out += "=== Generated SQL ===\n";
  out += runtime::GenerateSql(*plan.root());
  out += "\n";
  return out;
}

namespace {

/// One-line heading for a plan node in the EXPLAIN ANALYZE tree: operator
/// kind plus the payload a reader needs to tell siblings apart.
std::string NodeHeading(const ir::IrNode& node) {
  std::string head = ir::IrOpKindToString(node.kind);
  switch (node.kind) {
    case ir::IrOpKind::kTableScan:
      head += "(" + node.table_name + ")";
      break;
    case ir::IrOpKind::kJoin:
      head += "(" + node.left_key + " = " + node.right_key + ")";
      break;
    case ir::IrOpKind::kLimit:
      head += "(" + std::to_string(node.limit) + ")";
      break;
    case ir::IrOpKind::kModelPipeline:
    case ir::IrOpKind::kClusteredPredict:
    case ir::IrOpKind::kNnGraph:
    case ir::IrOpKind::kOpaquePipeline:
      head += "(" + node.model_name + " -> " + node.output_column + ")";
      break;
    default:
      break;
  }
  return head;
}

std::string Micros(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", value);
  return buf;
}

}  // namespace

Result<RavenContext::ExplainAnalyzeResult> RavenContext::ExplainAnalyze(
    const std::string& sql) {
  SyncOptimizerParallelism();
  RAVEN_ASSIGN_OR_RETURN(ir::IrPlan plan, analyzer_.Analyze(sql));
  RAVEN_RETURN_IF_ERROR(optimizer_.Optimize(&plan, nullptr));
  return ExplainAnalyzePlan(plan, options_.execution);
}

Result<RavenContext::ExplainAnalyzeResult> RavenContext::ExplainAnalyzePlan(
    const ir::IrPlan& plan, const runtime::ExecutionOptions& exec) {
  Timer timer;
  ExplainAnalyzeResult out;
  RAVEN_ASSIGN_OR_RETURN(out.table, executor_.Execute(plan, exec, &out.stats));
  const double total_millis = timer.ElapsedMillis();

  // Group the actual counters by the IR node their slot was registered
  // under. One node can own several physical operators (an aggregate sink
  // plus the rescan of its materialized result), hence a multimap; entries
  // stay in slot-creation order, which is plan-build order.
  std::multimap<const void*, const runtime::OperatorStats*> by_node;
  for (const auto& op : out.stats.operators) by_node.emplace(op.node, &op);

  std::string text = "=== EXPLAIN ANALYZE ===\n";
  struct Renderer {
    const std::multimap<const void*, const runtime::OperatorStats*>& by_node;
    std::string* out;
    void Render(const ir::IrNode& node, int depth,
                const std::string& fused_label) {
      auto [lo, hi] = by_node.equal_range(&node);
      std::string line(static_cast<std::size_t>(depth) * 2, ' ');
      line += NodeHeading(node);
      std::string child_fused = fused_label;
      if (lo == hi) {
        // No slot of its own: a fusable node swallowed by the enclosing
        // chain. Its counters live on the chain head (the fused operator is
        // one pass per chunk; per-stage row counts do not exist).
        if (!fused_label.empty() && ir::IsFusablePipelineKind(node.kind)) {
          line += "  [in " + fused_label + "]";
        }
      } else {
        child_fused.clear();
        for (auto it = lo; it != hi; ++it) {
          const runtime::OperatorStats& op = *it->second;
          line += "  [" + op.op + ": rows=" + std::to_string(op.rows) +
                  " chunks=" + std::to_string(op.chunks) +
                  " open=" + Micros(op.open_micros) +
                  "us work=" + Micros(op.wall_micros) + "us]";
          if (op.op.rfind("Fused[", 0) == 0) child_fused = op.op;
        }
      }
      *out += line + "\n";
      for (const auto& child : node.children) {
        Render(*child, depth + 1, child_fused);
      }
    }
  };
  Renderer renderer{by_node, &text};
  renderer.Render(*plan.root(), 1, "");

  const runtime::ExecutionStats& s = out.stats;
  text += "=== Execution totals ===\n";
  text += "  mode=" +
          std::string(runtime::ExecutionModeToString(exec.mode)) +
          " result_rows=" + std::to_string(out.table.num_rows()) +
          " partitions=" + std::to_string(s.partitions_used) +
          " morsels=" + std::to_string(s.morsels) +
          " fused_chains=" + std::to_string(s.fused_chains) + "\n";
  if (s.predict_batches > 0) {
    text += "  predict_batches=" + std::to_string(s.predict_batches) +
            " rows_scored=" + std::to_string(s.rows_out) +
            " nn_wall_micros=" + Micros(s.nn_wall_micros) +
            " nn_simulated_micros=" + Micros(s.nn_simulated_micros) + "\n";
  }
  if (s.blocks_scanned > 0 || s.blocks_skipped > 0) {
    text += "  blocks_scanned=" + std::to_string(s.blocks_scanned) +
            " blocks_skipped=" + std::to_string(s.blocks_skipped) + "\n";
  }
  if (s.frames_sent > 0) {
    text += "  frames_sent=" + std::to_string(s.frames_sent) +
            " bytes_shipped=" + std::to_string(s.bytes_shipped) +
            " worker_restarts=" + std::to_string(s.worker_restarts) + "\n";
  }
  char millis[32];
  std::snprintf(millis, sizeof(millis), "%.3f", total_millis);
  text += "  total_millis=" + std::string(millis) + "\n";
  out.text = std::move(text);
  return out;
}

}  // namespace raven
