#ifndef RAVEN_COMMON_THREAD_POOL_H_
#define RAVEN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace raven {

/// A fixed-size worker pool used for parallel scan+PREDICT execution and the
/// simulated accelerator backend. Tasks are plain std::function<void()>;
/// completion is tracked per-batch via ParallelFor.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations finish. fn must be thread-safe. When n==0 returns
  /// immediately; when the pool has a single thread, runs inline.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t num_threads() const { return threads_.size(); }

  /// Shared process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace raven

#endif  // RAVEN_COMMON_THREAD_POOL_H_
