#ifndef RAVEN_FRONTEND_PIPELINE_PARSER_H_
#define RAVEN_FRONTEND_PIPELINE_PARSER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace raven::frontend {

/// AST of the Python-subset pipeline DSL. The paper's Static Analyzer lexes
/// and parses data scientists' Python scripts and maps known API calls to IR
/// operators via a knowledge base (§3.2); this is the same machinery
/// restricted to straight-line sklearn-style pipeline definitions — exactly
/// the class the paper reports covers ~83% of notebook cells (no loops).
struct PyExpr {
  enum class Kind { kCall, kList, kTuple, kString, kNumber, kName };

  Kind kind = Kind::kName;
  /// kName / kCall: dotted callable or variable name (e.g.
  /// "sklearn.tree.DecisionTreeClassifier" is stored as its last segment).
  std::string name;
  double number = 0.0;
  std::string str;
  /// kList / kTuple elements, or kCall positional args.
  std::vector<PyExpr> items;
  /// kCall keyword arguments in source order.
  std::vector<std::pair<std::string, PyExpr>> kwargs;

  const PyExpr* FindKwarg(const std::string& key) const;
};

/// One parsed assignment statement `name = expr`.
struct PyAssignment {
  std::string target;
  PyExpr value;
};

/// A parsed script: straight-line assignments only. Import lines and
/// comments are skipped; any control flow (for/while/if/def) fails parsing
/// with a ParseError, which the analyzer turns into UDF fallback.
struct PyScript {
  std::vector<PyAssignment> assignments;

  /// The final pipeline definition: last assignment whose value is a call
  /// to Pipeline(...), after resolving simple variable aliases.
  Result<const PyExpr*> FindPipelineRoot() const;
};

/// Lexes and parses the pipeline script.
Result<PyScript> ParsePipelineScript(const std::string& source);

// ---------------------------------------------------------------------------
// Knowledge-base mapping (script AST -> pipeline structure spec).
// ---------------------------------------------------------------------------

/// Structure of one featurizer branch as declared in the script.
struct BranchSpec {
  std::string step_name;
  std::string callable;                  // e.g. "StandardScaler"
  std::vector<std::string> columns;      // columns=[...] kwarg
};

/// Structure of the whole scripted pipeline.
struct PipelineSpec {
  std::vector<BranchSpec> branches;      // empty if no featurization stage
  std::string predictor_callable;        // e.g. "DecisionTreeClassifier"
  std::map<std::string, double> predictor_params;  // numeric kwargs
};

/// Maps the parsed script onto a PipelineSpec using the API knowledge base.
/// Unknown callables produce InvalidArgument with the offending name, which
/// the analyzer converts to UDF fallback.
Result<PipelineSpec> ExtractPipelineSpec(const PyScript& script);

/// Whether the knowledge base knows this callable (transform or estimator).
bool KnowledgeBaseContains(const std::string& callable);

}  // namespace raven::frontend

#endif  // RAVEN_FRONTEND_PIPELINE_PARSER_H_
