#include "nnrt/graph.h"

#include <queue>
#include <set>
#include <sstream>

namespace raven::nnrt {

namespace {

template <typename T>
Result<T> GetTypedAttr(const std::map<std::string, AttrValue>& attrs,
                       const std::string& key, const char* type_name) {
  auto it = attrs.find(key);
  if (it == attrs.end()) {
    return Status::NotFound("attribute '" + key + "' not present");
  }
  const T* v = std::get_if<T>(&it->second);
  if (v == nullptr) {
    return Status::TypeError("attribute '" + key + "' is not a " + type_name);
  }
  return *v;
}

}  // namespace

Result<std::int64_t> Node::GetIntAttr(const std::string& key) const {
  return GetTypedAttr<std::int64_t>(attrs, key, "int");
}

Result<double> Node::GetFloatAttr(const std::string& key) const {
  return GetTypedAttr<double>(attrs, key, "float");
}

Result<std::string> Node::GetStringAttr(const std::string& key) const {
  return GetTypedAttr<std::string>(attrs, key, "string");
}

Result<std::vector<std::int64_t>> Node::GetIntsAttr(
    const std::string& key) const {
  return GetTypedAttr<std::vector<std::int64_t>>(attrs, key, "int list");
}

Result<std::vector<double>> Node::GetFloatsAttr(const std::string& key) const {
  return GetTypedAttr<std::vector<double>>(attrs, key, "float list");
}

Result<Tensor> Node::GetTensorAttr(const std::string& key) const {
  return GetTypedAttr<Tensor>(attrs, key, "tensor");
}

std::int64_t Node::GetIntAttrOr(const std::string& key,
                                std::int64_t dflt) const {
  auto r = GetIntAttr(key);
  return r.ok() ? r.value() : dflt;
}

double Node::GetFloatAttrOr(const std::string& key, double dflt) const {
  auto r = GetFloatAttr(key);
  return r.ok() ? r.value() : dflt;
}

std::string Node::GetStringAttrOr(const std::string& key,
                                  const std::string& dflt) const {
  auto r = GetStringAttr(key);
  return r.ok() ? r.value() : dflt;
}

Status Graph::Validate() const {
  std::set<std::string> produced(inputs_.begin(), inputs_.end());
  for (const auto& [name, tensor] : initializers_) {
    (void)tensor;
    produced.insert(name);
  }
  // Producers must be unique across nodes and not collide with inputs or
  // initializers.
  for (const auto& node : nodes_) {
    for (const auto& out : node.outputs) {
      if (!produced.insert(out).second) {
        return Status::InvalidArgument("value '" + out +
                                       "' has multiple producers");
      }
    }
  }
  for (const auto& node : nodes_) {
    for (const auto& in : node.inputs) {
      if (produced.find(in) == produced.end()) {
        return Status::InvalidArgument("node '" + node.name + "' input '" +
                                       in + "' has no producer");
      }
    }
  }
  for (const auto& out : outputs_) {
    if (produced.find(out) == produced.end()) {
      return Status::InvalidArgument("graph output '" + out +
                                     "' has no producer");
    }
  }
  return Status::OK();
}

Result<std::vector<std::size_t>> Graph::TopologicalOrder() const {
  // Map producer value -> node index.
  std::unordered_map<std::string, std::size_t> producer;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const auto& out : nodes_[i].outputs) producer[out] = i;
  }
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  std::vector<std::vector<std::size_t>> consumers(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::set<std::size_t> deps;
    for (const auto& in : nodes_[i].inputs) {
      auto it = producer.find(in);
      if (it != producer.end()) deps.insert(it->second);
    }
    indegree[i] = deps.size();
    for (std::size_t d : deps) consumers[d].push_back(i);
  }
  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<std::size_t> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop();
    order.push_back(i);
    for (std::size_t c : consumers[i]) {
      if (--indegree[c] == 0) ready.push(c);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::InvalidArgument("graph contains a cycle");
  }
  return order;
}

std::size_t Graph::CountOps(const std::string& op_type) const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.op_type == op_type) ++n;
  }
  return n;
}

std::string Graph::FreshValueName(const std::string& prefix) {
  return prefix + "_" + std::to_string(name_counter_++);
}

std::string Graph::ToString() const {
  std::ostringstream os;
  os << "NNRT graph (" << nodes_.size() << " nodes, " << initializers_.size()
     << " initializers)\n";
  os << "  inputs:";
  for (const auto& in : inputs_) os << " " << in;
  os << "\n  outputs:";
  for (const auto& out : outputs_) os << " " << out;
  os << "\n";
  for (const auto& node : nodes_) {
    os << "  " << node.op_type << " [" << node.name << "] (";
    for (std::size_t i = 0; i < node.inputs.size(); ++i) {
      if (i > 0) os << ", ";
      os << node.inputs[i];
    }
    os << ") -> (";
    for (std::size_t i = 0; i < node.outputs.size(); ++i) {
      if (i > 0) os << ", ";
      os << node.outputs[i];
    }
    os << ")\n";
  }
  return os.str();
}

namespace {

constexpr std::uint8_t kAttrInt = 0;
constexpr std::uint8_t kAttrFloat = 1;
constexpr std::uint8_t kAttrString = 2;
constexpr std::uint8_t kAttrInts = 3;
constexpr std::uint8_t kAttrFloats = 4;
constexpr std::uint8_t kAttrTensor = 5;

void SerializeAttr(const AttrValue& attr, BinaryWriter* writer) {
  if (const auto* v = std::get_if<std::int64_t>(&attr)) {
    writer->WriteU8(kAttrInt);
    writer->WriteI64(*v);
  } else if (const auto* v = std::get_if<double>(&attr)) {
    writer->WriteU8(kAttrFloat);
    writer->WriteF64(*v);
  } else if (const auto* v = std::get_if<std::string>(&attr)) {
    writer->WriteU8(kAttrString);
    writer->WriteString(*v);
  } else if (const auto* v = std::get_if<std::vector<std::int64_t>>(&attr)) {
    writer->WriteU8(kAttrInts);
    writer->WriteI64Vector(*v);
  } else if (const auto* v = std::get_if<std::vector<double>>(&attr)) {
    writer->WriteU8(kAttrFloats);
    writer->WriteF64Vector(*v);
  } else if (const auto* v = std::get_if<Tensor>(&attr)) {
    writer->WriteU8(kAttrTensor);
    v->Serialize(writer);
  }
}

Result<AttrValue> DeserializeAttr(BinaryReader* reader) {
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t tag, reader->ReadU8());
  switch (tag) {
    case kAttrInt: {
      RAVEN_ASSIGN_OR_RETURN(std::int64_t v, reader->ReadI64());
      return AttrValue(v);
    }
    case kAttrFloat: {
      RAVEN_ASSIGN_OR_RETURN(double v, reader->ReadF64());
      return AttrValue(v);
    }
    case kAttrString: {
      RAVEN_ASSIGN_OR_RETURN(std::string v, reader->ReadString());
      return AttrValue(std::move(v));
    }
    case kAttrInts: {
      RAVEN_ASSIGN_OR_RETURN(auto v, reader->ReadI64Vector());
      return AttrValue(std::move(v));
    }
    case kAttrFloats: {
      RAVEN_ASSIGN_OR_RETURN(auto v, reader->ReadF64Vector());
      return AttrValue(std::move(v));
    }
    case kAttrTensor: {
      RAVEN_ASSIGN_OR_RETURN(Tensor v, Tensor::Deserialize(reader));
      return AttrValue(std::move(v));
    }
    default:
      return Status::ParseError("unknown attribute tag " +
                                std::to_string(tag));
  }
}

}  // namespace

void Graph::Serialize(BinaryWriter* writer) const {
  writer->WriteString("RAVEN_NNRT_GRAPH_V1");
  writer->WriteStringVector(inputs_);
  writer->WriteStringVector(outputs_);
  writer->WriteU64(initializers_.size());
  for (const auto& [name, tensor] : initializers_) {
    writer->WriteString(name);
    tensor.Serialize(writer);
  }
  writer->WriteU64(nodes_.size());
  for (const auto& node : nodes_) {
    writer->WriteString(node.op_type);
    writer->WriteString(node.name);
    writer->WriteStringVector(node.inputs);
    writer->WriteStringVector(node.outputs);
    writer->WriteU64(node.attrs.size());
    for (const auto& [key, attr] : node.attrs) {
      writer->WriteString(key);
      SerializeAttr(attr, writer);
    }
  }
  writer->WriteU64(name_counter_);
}

Result<Graph> Graph::Deserialize(BinaryReader* reader) {
  RAVEN_ASSIGN_OR_RETURN(std::string magic, reader->ReadString());
  if (magic != "RAVEN_NNRT_GRAPH_V1") {
    return Status::ParseError("bad NNRT graph magic: " + magic);
  }
  Graph graph;
  RAVEN_ASSIGN_OR_RETURN(graph.inputs_, reader->ReadStringVector());
  RAVEN_ASSIGN_OR_RETURN(graph.outputs_, reader->ReadStringVector());
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t n_init, reader->ReadU64());
  for (std::uint64_t i = 0; i < n_init; ++i) {
    RAVEN_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    RAVEN_ASSIGN_OR_RETURN(Tensor tensor, Tensor::Deserialize(reader));
    graph.initializers_[name] = std::move(tensor);
  }
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t n_nodes, reader->ReadU64());
  for (std::uint64_t i = 0; i < n_nodes; ++i) {
    Node node;
    RAVEN_ASSIGN_OR_RETURN(node.op_type, reader->ReadString());
    RAVEN_ASSIGN_OR_RETURN(node.name, reader->ReadString());
    RAVEN_ASSIGN_OR_RETURN(node.inputs, reader->ReadStringVector());
    RAVEN_ASSIGN_OR_RETURN(node.outputs, reader->ReadStringVector());
    RAVEN_ASSIGN_OR_RETURN(std::uint64_t n_attrs, reader->ReadU64());
    for (std::uint64_t a = 0; a < n_attrs; ++a) {
      RAVEN_ASSIGN_OR_RETURN(std::string key, reader->ReadString());
      RAVEN_ASSIGN_OR_RETURN(AttrValue attr, DeserializeAttr(reader));
      node.attrs.emplace(std::move(key), std::move(attr));
    }
    graph.nodes_.push_back(std::move(node));
  }
  RAVEN_ASSIGN_OR_RETURN(graph.name_counter_, reader->ReadU64());
  return graph;
}

}  // namespace raven::nnrt
