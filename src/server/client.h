#ifndef RAVEN_SERVER_CLIENT_H_
#define RAVEN_SERVER_CLIENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "server/server_protocol.h"

namespace raven::server {

/// Blocking client for the QueryServer frame protocol, used by the
/// raven_client CLI, the benchmarks, and the test suites. One outstanding
/// request at a time per connection (the protocol is strict
/// request/response); not thread-safe — use one client per thread.
class ServerClient {
 public:
  ServerClient() = default;
  ~ServerClient() { Close(); }

  ServerClient(const ServerClient&) = delete;
  ServerClient& operator=(const ServerClient&) = delete;

  Status ConnectUnix(const std::string& socket_path);
  Status ConnectTcp(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Abruptly severs the connection without any protocol goodbye — the
  /// "client died mid-query" tests use this while a statement is in
  /// flight.
  void Abort();

  /// One request/response round trip.
  Result<ServerResponse> Roundtrip(const ClientRequest& request);

  // Convenience wrappers.
  Result<ServerResponse> Query(const std::string& sql);
  Result<ServerResponse> ExecutePrepared(const std::string& name,
                                         const std::vector<double>& params);
  Result<ServerResponse> Ping();

  /// Sends a request without waiting for the response (pair with Abort to
  /// disconnect mid-query).
  Status Send(const ClientRequest& request);

  /// Response-frame timeout; converts a hung server into a diagnosable
  /// IoError instead of a stuck test. <= 0 blocks forever.
  void set_response_timeout_millis(int timeout_millis) {
    response_timeout_millis_ = timeout_millis;
  }

 private:
  int fd_ = -1;
  int response_timeout_millis_ = 120000;
};

}  // namespace raven::server

#endif  // RAVEN_SERVER_CLIENT_H_
