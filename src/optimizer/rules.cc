#include "optimizer/rules.h"

#include <functional>
#include <optional>
#include <set>

#include "optimizer/specialize.h"
#include "relational/block_table.h"
#include "relational/statistics.h"

namespace raven::optimizer {
namespace {

using ir::IrNode;
using ir::IrNodePtr;
using ir::IrOpKind;
using ir::IrPlan;
using relational::Expr;
using relational::ExprPtr;

Result<std::set<std::string>> SchemaSet(const IrNode& node,
                                        const relational::Catalog& catalog) {
  RAVEN_ASSIGN_OR_RETURN(auto schema, IrPlan::ComputeSchema(node, catalog));
  return std::set<std::string>(schema.begin(), schema.end());
}

bool Covers(const std::set<std::string>& available, const Expr& expr) {
  std::set<std::string> used;
  expr.CollectColumns(&used);
  for (const auto& col : used) {
    if (available.find(col) == available.end()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Predicate pushdown.
// ---------------------------------------------------------------------------

/// Tries to sink a single conjunct into `node`; returns true on success (the
/// conjunct is then owned by the subtree).
Result<bool> SinkConjunct(IrNodePtr* node, ExprPtr conjunct,
                          const relational::Catalog& catalog,
                          std::size_t* fired) {
  IrNode& n = **node;
  switch (n.kind) {
    case IrOpKind::kFilter: {
      // Merge and keep trying below.
      RAVEN_ASSIGN_OR_RETURN(
          bool sunk, SinkConjunct(&n.children[0], conjunct->Clone(), catalog,
                                  fired));
      if (!sunk) {
        n.predicate = relational::And(std::move(n.predicate),
                                      std::move(conjunct));
      }
      return true;
    }
    case IrOpKind::kJoin: {
      RAVEN_ASSIGN_OR_RETURN(auto left, SchemaSet(*n.children[0], catalog));
      if (Covers(left, *conjunct)) {
        RAVEN_ASSIGN_OR_RETURN(
            bool sunk,
            SinkConjunct(&n.children[0], conjunct->Clone(), catalog, fired));
        if (!sunk) {
          n.children[0] = IrNode::Filter(std::move(n.children[0]),
                                         std::move(conjunct));
          ++*fired;
        }
        return true;
      }
      RAVEN_ASSIGN_OR_RETURN(auto right, SchemaSet(*n.children[1], catalog));
      if (Covers(right, *conjunct)) {
        RAVEN_ASSIGN_OR_RETURN(
            bool sunk,
            SinkConjunct(&n.children[1], conjunct->Clone(), catalog, fired));
        if (!sunk) {
          n.children[1] = IrNode::Filter(std::move(n.children[1]),
                                         std::move(conjunct));
          ++*fired;
        }
        return true;
      }
      return false;
    }
    case IrOpKind::kGroupBy: {
      // HAVING → WHERE pull-up: a conjunct reading only group-key columns
      // holds for every row of a group iff it holds for the group, so it
      // can filter before aggregation. Conjuncts touching aggregate outputs
      // must stay above.
      std::set<std::string> used;
      conjunct->CollectColumns(&used);
      const std::set<std::string> keys(n.group_keys.begin(),
                                       n.group_keys.end());
      for (const auto& col : used) {
        if (keys.count(col) == 0) return false;
      }
      RAVEN_ASSIGN_OR_RETURN(
          bool sunk,
          SinkConjunct(&n.children[0], conjunct->Clone(), catalog, fired));
      if (!sunk) {
        n.children[0] =
            IrNode::Filter(std::move(n.children[0]), std::move(conjunct));
      }
      ++*fired;
      return true;
    }
    case IrOpKind::kOrderBy: {
      // Filtering commutes with sorting (the sort is stable and 1:1), and
      // filtering first is strictly cheaper.
      RAVEN_ASSIGN_OR_RETURN(
          bool sunk,
          SinkConjunct(&n.children[0], conjunct->Clone(), catalog, fired));
      if (!sunk) {
        n.children[0] =
            IrNode::Filter(std::move(n.children[0]), std::move(conjunct));
      }
      ++*fired;
      return true;
    }
    case IrOpKind::kModelPipeline:
    case IrOpKind::kClusteredPredict:
    case IrOpKind::kNnGraph:
    case IrOpKind::kOpaquePipeline: {
      // Push below the model if the conjunct doesn't read the prediction.
      std::set<std::string> used;
      conjunct->CollectColumns(&used);
      if (used.count(n.output_column) > 0) return false;
      RAVEN_ASSIGN_OR_RETURN(
          bool sunk,
          SinkConjunct(&n.children[0], conjunct->Clone(), catalog, fired));
      if (!sunk) {
        n.children[0] =
            IrNode::Filter(std::move(n.children[0]), std::move(conjunct));
        ++*fired;
      } else {
        ++*fired;
      }
      return true;
    }
    case IrOpKind::kProject: {
      // Push through only if every used column is a pure pass-through.
      std::set<std::string> used;
      conjunct->CollectColumns(&used);
      for (const auto& col : used) {
        bool pass_through = false;
        for (std::size_t i = 0; i < n.proj_names.size(); ++i) {
          if (n.proj_names[i] == col &&
              n.proj_exprs[i]->kind() == Expr::Kind::kColumnRef &&
              static_cast<const relational::ColumnRefExpr&>(*n.proj_exprs[i])
                      .name() == col) {
            pass_through = true;
            break;
          }
        }
        if (!pass_through) return false;
      }
      RAVEN_ASSIGN_OR_RETURN(
          bool sunk,
          SinkConjunct(&n.children[0], conjunct->Clone(), catalog, fired));
      if (!sunk) {
        n.children[0] =
            IrNode::Filter(std::move(n.children[0]), std::move(conjunct));
        ++*fired;
      } else {
        ++*fired;
      }
      return true;
    }
    default:
      return false;
  }
}

Result<std::size_t> PushdownWalk(IrNodePtr* node,
                                 const relational::Catalog& catalog) {
  std::size_t fired = 0;
  IrNode& n = **node;
  if (n.kind == IrOpKind::kFilter) {
    // Split the predicate and try to sink each conjunct.
    const auto conjuncts = relational::ExtractConjuncts(*n.predicate);
    std::vector<ExprPtr> kept;
    for (const Expr* conjunct : conjuncts) {
      RAVEN_ASSIGN_OR_RETURN(
          bool sunk,
          SinkConjunct(&n.children[0], conjunct->Clone(), catalog, &fired));
      if (!sunk) kept.push_back(conjunct->Clone());
    }
    if (kept.empty()) {
      // Filter fully absorbed below; splice it out.
      IrNodePtr child = std::move(n.children[0]);
      *node = std::move(child);
      RAVEN_ASSIGN_OR_RETURN(std::size_t sub, PushdownWalk(node, catalog));
      return fired + sub;
    }
    std::vector<const Expr*> kept_raw;
    kept_raw.reserve(kept.size());
    for (const auto& e : kept) kept_raw.push_back(e.get());
    n.predicate = relational::ConjoinClones(kept_raw);
  }
  for (auto& child : n.children) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t sub, PushdownWalk(&child, catalog));
    fired += sub;
  }
  return fired;
}

// ---------------------------------------------------------------------------
// Predicate collection for model pruning.
// ---------------------------------------------------------------------------

void CollectPredicatesBelow(const IrNode& node,
                            std::vector<relational::SimplePredicate>* out) {
  if (node.kind == IrOpKind::kUnionAll) return;  // branch-local predicates
  // Aggregation renames/folds columns, so predicates below it do not
  // constrain the values it emits (conservatively including group keys).
  if (node.kind == IrOpKind::kAggregate ||
      node.kind == IrOpKind::kGroupBy) {
    return;
  }
  if (node.kind == IrOpKind::kFilter) {
    for (const Expr* conjunct : relational::ExtractConjuncts(*node.predicate)) {
      auto simple = relational::MatchSimplePredicate(*conjunct);
      if (simple.has_value()) out->push_back(*simple);
    }
  }
  for (const auto& child : node.children) {
    CollectPredicatesBelow(*child, out);
  }
}

// ---------------------------------------------------------------------------
// Required-column analysis (projection pushdown + join elimination).
// ---------------------------------------------------------------------------

using Required = std::optional<std::set<std::string>>;  // nullopt = all

void AddExprColumns(const Expr& expr, std::set<std::string>* out) {
  expr.CollectColumns(out);
}

/// Narrows subtree `node` to produce at least `required` columns; returns
/// rewrites fired. When `eliminate_joins` is set, joins whose non-key side
/// is unused are collapsed.
Result<std::size_t> RequireWalk(IrNodePtr* node, const Required& required,
                                const relational::Catalog& catalog,
                                bool eliminate_joins) {
  IrNode& n = **node;
  switch (n.kind) {
    case IrOpKind::kTableScan: {
      if (!required.has_value()) return std::size_t{0};
      RAVEN_ASSIGN_OR_RETURN(const std::vector<std::string> columns,
                             catalog.TableSchema(n.table_name));
      std::vector<std::string> keep;
      for (const auto& col : columns) {
        if (required->count(col) > 0) keep.push_back(col);
      }
      if (keep.size() == columns.size()) {
        return std::size_t{0};
      }
      if (keep.empty() && !columns.empty()) {
        keep.push_back(columns.front());  // keep arity >= 1
      }
      *node = IrNode::ProjectColumns(std::move(*node), keep);
      return std::size_t{1};
    }
    case IrOpKind::kProject: {
      std::size_t fired = 0;
      // Narrow pure-column projections to the required subset.
      if (required.has_value()) {
        bool pure = true;
        for (const auto& e : n.proj_exprs) {
          if (e->kind() != Expr::Kind::kColumnRef) {
            pure = false;
            break;
          }
        }
        if (pure) {
          std::vector<ExprPtr> exprs;
          std::vector<std::string> names;
          for (std::size_t i = 0; i < n.proj_names.size(); ++i) {
            if (required->count(n.proj_names[i]) > 0) {
              exprs.push_back(n.proj_exprs[i]->Clone());
              names.push_back(n.proj_names[i]);
            }
          }
          if (!names.empty() && names.size() < n.proj_names.size()) {
            n.proj_exprs = std::move(exprs);
            n.proj_names = std::move(names);
            ++fired;
          }
        }
      }
      std::set<std::string> child_req;
      for (const auto& e : n.proj_exprs) AddExprColumns(*e, &child_req);
      RAVEN_ASSIGN_OR_RETURN(
          std::size_t sub,
          RequireWalk(&n.children[0], Required(std::move(child_req)), catalog,
                      eliminate_joins));
      return fired + sub;
    }
    case IrOpKind::kFilter: {
      Required child_req = required;
      if (child_req.has_value()) {
        AddExprColumns(*n.predicate, &*child_req);
      }
      return RequireWalk(&n.children[0], child_req, catalog, eliminate_joins);
    }
    case IrOpKind::kLimit:
      return RequireWalk(&n.children[0], required, catalog, eliminate_joins);
    case IrOpKind::kAggregate: {
      // Only the aggregated columns are needed below, whatever is required
      // above (the aggregate's outputs are computed, not passed through).
      // Join elimination must NOT fire here: COUNT/SUM care about the row
      // multiset, and dropping a join that filters or multiplies rows
      // (non-1:1 build side) would change the aggregate even though no
      // build-side column is referenced.
      std::set<std::string> child_req;
      for (const auto& agg : n.aggregates) {
        if (!agg.column.empty()) child_req.insert(agg.column);
      }
      return RequireWalk(&n.children[0], Required(std::move(child_req)),
                         catalog, /*eliminate_joins=*/false);
    }
    case IrOpKind::kGroupBy: {
      // The grouped subtree needs exactly the group keys plus the
      // aggregated columns — this is the projection-pushdown win for wide
      // PREDICT inputs. Join elimination stays off below for the same
      // row-multiset reason as kAggregate.
      std::set<std::string> child_req(n.group_keys.begin(),
                                      n.group_keys.end());
      for (const auto& agg : n.aggregates) {
        if (!agg.column.empty()) child_req.insert(agg.column);
      }
      return RequireWalk(&n.children[0], Required(std::move(child_req)),
                         catalog, /*eliminate_joins=*/false);
    }
    case IrOpKind::kOrderBy: {
      // Sorting passes rows through 1:1; the child must additionally
      // produce the sort columns.
      Required child_req = required;
      if (child_req.has_value()) {
        for (const auto& key : n.sort_keys) child_req->insert(key.column);
      }
      return RequireWalk(&n.children[0], child_req, catalog, eliminate_joins);
    }
    case IrOpKind::kJoin: {
      std::size_t fired = 0;
      RAVEN_ASSIGN_OR_RETURN(auto left_schema,
                             IrPlan::ComputeSchema(*n.children[0], catalog));
      RAVEN_ASSIGN_OR_RETURN(auto right_schema,
                             IrPlan::ComputeSchema(*n.children[1], catalog));
      const std::set<std::string> left_set(left_schema.begin(),
                                           left_schema.end());
      if (eliminate_joins && required.has_value()) {
        // Columns only the right side provides.
        bool right_needed = false;
        for (const auto& col : *required) {
          if (left_set.count(col) == 0) {
            // Is it actually provided by the right side?
            for (const auto& r : right_schema) {
              if (r == col) {
                right_needed = true;
                break;
              }
            }
          }
          if (right_needed) break;
        }
        if (!right_needed) {
          // Inner equi-join on a key with FK integrity: dropping the build
          // side preserves rows. (Datasets are 1:1 on ids by construction.)
          IrNodePtr left = std::move(n.children[0]);
          *node = std::move(left);
          RAVEN_ASSIGN_OR_RETURN(
              std::size_t sub,
              RequireWalk(node, required, catalog, eliminate_joins));
          return 1 + sub;
        }
      }
      Required left_req;
      Required right_req;
      if (required.has_value()) {
        left_req = std::set<std::string>{};
        right_req = std::set<std::string>{};
        for (const auto& col : *required) {
          if (left_set.count(col) > 0) {
            left_req->insert(col);
          } else {
            right_req->insert(col);
          }
        }
        left_req->insert(n.left_key);
        right_req->insert(n.right_key);
      }
      RAVEN_ASSIGN_OR_RETURN(
          std::size_t l,
          RequireWalk(&n.children[0], left_req, catalog, eliminate_joins));
      RAVEN_ASSIGN_OR_RETURN(
          std::size_t r,
          RequireWalk(&n.children[1], right_req, catalog, eliminate_joins));
      return fired + l + r;
    }
    case IrOpKind::kUnionAll: {
      std::size_t fired = 0;
      for (auto& child : n.children) {
        RAVEN_ASSIGN_OR_RETURN(
            std::size_t sub,
            RequireWalk(&child, required, catalog, eliminate_joins));
        fired += sub;
      }
      return fired;
    }
    case IrOpKind::kModelPipeline:
    case IrOpKind::kClusteredPredict:
    case IrOpKind::kNnGraph:
    case IrOpKind::kOpaquePipeline: {
      Required child_req;
      if (required.has_value()) {
        child_req = std::set<std::string>{};
        for (const auto& col : *required) {
          if (col != n.output_column) child_req->insert(col);
        }
        for (const auto& col : n.model_input_columns) {
          child_req->insert(col);
        }
      }
      return RequireWalk(&n.children[0], child_req, catalog, eliminate_joins);
    }
  }
  return Status::Internal("unreachable IR kind in RequireWalk");
}

}  // namespace

Result<std::size_t> ApplyPredicatePushdown(IrNodePtr* root,
                                           const relational::Catalog& catalog) {
  std::size_t total = 0;
  for (int pass = 0; pass < 8; ++pass) {
    RAVEN_ASSIGN_OR_RETURN(std::size_t fired, PushdownWalk(root, catalog));
    total += fired;
    if (fired == 0) break;
  }
  return total;
}

Result<std::size_t> ApplyPredicateModelPruning(IrNodePtr* root) {
  std::size_t fired = 0;
  Status status = Status::OK();
  ir::VisitIr(root->get(), [&](IrNode* node) {
    if (!status.ok() || node->kind != IrOpKind::kModelPipeline) return;
    std::vector<relational::SimplePredicate> predicates;
    CollectPredicatesBelow(*node->children[0], &predicates);
    if (predicates.empty()) return;
    auto result = PruneWithPredicates(*node->pipeline, predicates);
    if (!result.ok()) {
      status = result.status();
      return;
    }
    if (!result->changed) return;
    node->pipeline =
        std::make_shared<ml::ModelPipeline>(std::move(result->pipeline));
    node->model_input_columns = result->kept_inputs;
    ++fired;
  });
  RAVEN_RETURN_IF_ERROR(status);
  return fired;
}

Result<std::size_t> ApplyModelProjectionPushdown(IrNodePtr* root) {
  std::size_t fired = 0;
  Status status = Status::OK();
  ir::VisitIr(root->get(), [&](IrNode* node) {
    if (!status.ok() || node->kind != IrOpKind::kModelPipeline) return;
    auto result = ProjectUnusedFeatures(*node->pipeline);
    if (!result.ok()) {
      status = result.status();
      return;
    }
    if (!result->changed) return;
    node->pipeline =
        std::make_shared<ml::ModelPipeline>(std::move(result->pipeline));
    node->model_input_columns = result->kept_inputs;
    ++fired;
  });
  RAVEN_RETURN_IF_ERROR(status);
  return fired;
}

Result<std::size_t> ApplyProjectionPushdown(IrNodePtr* root,
                                            const relational::Catalog& catalog) {
  return RequireWalk(root, std::nullopt, catalog, /*eliminate_joins=*/false);
}

Result<std::size_t> ApplyJoinElimination(IrNodePtr* root,
                                         const relational::Catalog& catalog) {
  return RequireWalk(root, std::nullopt, catalog, /*eliminate_joins=*/true);
}

Result<std::size_t> ApplyModelInlining(IrNodePtr* root,
                                       const relational::Catalog& catalog,
                                       std::int64_t max_nodes) {
  // Post-order so child schemas are final before we read them.
  std::size_t fired = 0;
  std::vector<IrNodePtr*> model_nodes;
  std::function<void(IrNodePtr*)> collect = [&](IrNodePtr* node) {
    for (auto& child : (*node)->children) collect(&child);
    if ((*node)->kind == IrOpKind::kModelPipeline) {
      model_nodes.push_back(node);
    }
  };
  collect(root);
  for (IrNodePtr* slot : model_nodes) {
    IrNode& node = **slot;
    if (!IsInlinable(*node.pipeline)) continue;
    const auto& tree = std::get<ml::DecisionTree>(node.pipeline->predictor);
    if (tree.num_nodes() > max_nodes) continue;
    RAVEN_ASSIGN_OR_RETURN(ExprPtr case_expr, TreeToCaseExpr(*node.pipeline));
    RAVEN_ASSIGN_OR_RETURN(auto child_schema,
                           IrPlan::ComputeSchema(*node.children[0], catalog));
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const auto& col : child_schema) {
      exprs.push_back(relational::Col(col));
      names.push_back(col);
    }
    exprs.push_back(std::move(case_expr));
    names.push_back(node.output_column);
    *slot = IrNode::Project(std::move(node.children[0]), std::move(exprs),
                            std::move(names));
    ++fired;
  }
  return fired;
}

Result<std::size_t> ApplyNnTranslation(IrNodePtr* root,
                                       const NnTranslationOptions& options) {
  std::size_t fired = 0;
  std::vector<IrNodePtr*> model_nodes;
  std::function<void(IrNodePtr*)> collect = [&](IrNodePtr* node) {
    for (auto& child : (*node)->children) collect(&child);
    if ((*node)->kind == IrOpKind::kModelPipeline) {
      model_nodes.push_back(node);
    }
  };
  collect(root);
  for (IrNodePtr* slot : model_nodes) {
    IrNode& node = **slot;
    RAVEN_ASSIGN_OR_RETURN(nnrt::Graph graph,
                           PipelineToNnGraph(*node.pipeline, options));
    *slot = IrNode::NnGraph(std::move(node.children[0]), node.model_name,
                            std::make_shared<nnrt::Graph>(std::move(graph)),
                            node.model_input_columns, node.output_column);
    ++fired;
  }
  return fired;
}

Result<std::size_t> ApplyModelClustering(
    IrNodePtr* root,
    const std::map<std::string, std::shared_ptr<ir::ClusteredModel>>&
        artifacts) {
  std::size_t fired = 0;
  std::vector<IrNodePtr*> model_nodes;
  std::function<void(IrNodePtr*)> collect = [&](IrNodePtr* node) {
    for (auto& child : (*node)->children) collect(&child);
    if ((*node)->kind == IrOpKind::kModelPipeline) {
      model_nodes.push_back(node);
    }
  };
  collect(root);
  for (IrNodePtr* slot : model_nodes) {
    IrNode& node = **slot;
    auto it = artifacts.find(node.model_name);
    if (it == artifacts.end()) continue;
    *slot = IrNode::ClusteredPredict(std::move(node.children[0]),
                                     node.model_name, it->second,
                                     node.model_input_columns,
                                     node.output_column);
    ++fired;
  }
  return fired;
}

Result<std::size_t> ApplyModelQuerySplitting(IrNodePtr* root) {
  std::size_t fired = 0;
  std::vector<IrNodePtr*> model_nodes;
  std::function<void(IrNodePtr*)> collect = [&](IrNodePtr* node) {
    for (auto& child : (*node)->children) collect(&child);
    if ((*node)->kind == IrOpKind::kModelPipeline) {
      model_nodes.push_back(node);
    }
  };
  collect(root);
  for (IrNodePtr* slot : model_nodes) {
    IrNode& node = **slot;
    if (ml::KindOf(node.pipeline->predictor) !=
        ml::PredictorKind::kDecisionTree) {
      continue;
    }
    const auto& tree = std::get<ml::DecisionTree>(node.pipeline->predictor);
    const std::size_t root_slot = static_cast<std::size_t>(tree.root());
    if (tree.feature().empty() || tree.feature()[root_slot] < 0) continue;
    // Map the root feature to a raw column test; one-hot roots are skipped
    // (their split predicates are equality on indicators, already covered
    // by predicate-based pruning).
    const auto prov = node.pipeline->featurizer.branches().empty()
                          ? std::vector<ml::FeatureProvenance>{}
                          : node.pipeline->featurizer.Provenance();
    const std::int64_t f = tree.feature()[root_slot];
    std::string column;
    double threshold = tree.threshold()[root_slot];
    if (prov.empty()) {
      column = node.pipeline->input_columns[static_cast<std::size_t>(f)];
    } else {
      const auto& p = prov[static_cast<std::size_t>(f)];
      if (p.kind == ml::TransformKind::kOneHot) continue;
      column = node.pipeline
                   ->input_columns[static_cast<std::size_t>(p.input_column)];
      if (p.kind == ml::TransformKind::kScaler) {
        const auto& branch =
            node.pipeline->featurizer
                .branches()[static_cast<std::size_t>(p.branch_index)];
        for (std::size_t c = 0; c < branch.input_columns.size(); ++c) {
          if (branch.input_columns[c] == p.input_column) {
            threshold = threshold / branch.scaler.scale()[c] +
                        branch.scaler.mean()[c];
            break;
          }
        }
      }
    }
    // Build the two specialized (filter, model) branches.
    RAVEN_ASSIGN_OR_RETURN(
        auto left_spec,
        PruneWithPredicates(*node.pipeline,
                            {relational::SimplePredicate{
                                column, relational::CompareOp::kLe,
                                threshold}}));
    RAVEN_ASSIGN_OR_RETURN(
        auto right_spec,
        PruneWithPredicates(*node.pipeline,
                            {relational::SimplePredicate{
                                column, relational::CompareOp::kGt,
                                threshold}}));
    IrNodePtr left_branch = IrNode::ModelPipelineNode(
        IrNode::Filter(node.children[0]->Clone(),
                       relational::Le(relational::Col(column),
                                      relational::Lit(threshold))),
        node.model_name,
        std::make_shared<ml::ModelPipeline>(std::move(left_spec.pipeline)),
        left_spec.kept_inputs, node.output_column);
    IrNodePtr right_branch = IrNode::ModelPipelineNode(
        IrNode::Filter(std::move(node.children[0]),
                       relational::Gt(relational::Col(column),
                                      relational::Lit(threshold))),
        node.model_name,
        std::make_shared<ml::ModelPipeline>(std::move(right_spec.pipeline)),
        right_spec.kept_inputs, node.output_column);
    // UNION ALL branch schemas must agree: project both to child schema +
    // prediction. They already emit the same pass-through columns.
    std::vector<IrNodePtr> branches;
    branches.push_back(std::move(left_branch));
    branches.push_back(std::move(right_branch));
    *slot = IrNode::UnionAll(std::move(branches));
    ++fired;
  }
  return fired;
}

Result<std::size_t> ApplyDataPropertyPruning(
    IrNodePtr* root, const relational::Catalog& catalog) {
  // Gather statistics for every base table referenced by the plan, once.
  std::map<std::string, relational::ColumnStats> stats;
  Status status = Status::OK();
  ir::VisitIr(root->get(), [&](IrNode* node) {
    if (!status.ok() || node->kind != IrOpKind::kTableScan) return;
    std::map<std::string, relational::ColumnStats> table_stats;
    auto table = catalog.GetTable(node->table_name);
    if (table.ok()) {
      table_stats = relational::ComputeTableStats(**table);
    } else {
      // On-disk tables: merge the per-block zone maps instead of scanning
      // the data (the whole point of keeping stats in the .rvc meta).
      auto disk = catalog.GetDiskTable(node->table_name);
      if (!disk.ok()) {
        status = table.status();
        return;
      }
      table_stats = relational::MergedStats(**disk);
    }
    for (auto& [name, column_stats] : table_stats) {
      stats[name] = column_stats;
    }
  });
  RAVEN_RETURN_IF_ERROR(status);

  std::size_t fired = 0;
  ir::VisitIr(root->get(), [&](IrNode* node) {
    if (!status.ok() || node->kind != IrOpKind::kModelPipeline) return;
    std::vector<relational::SimplePredicate> predicates;
    for (const auto& column : node->model_input_columns) {
      auto it = stats.find(column);
      if (it == stats.end()) continue;
      // A NaN/±inf row sits outside the finite min/max, so any range (or
      // equality) predicate derived from it would mis-describe that row
      // and specialize the model against data it will actually see.
      if (it->second.has_non_finite || !it->second.has_finite()) continue;
      if (it->second.constant.has_value()) {
        predicates.push_back(relational::SimplePredicate{
            column, relational::CompareOp::kEq, *it->second.constant});
      } else {
        predicates.push_back(relational::SimplePredicate{
            column, relational::CompareOp::kGe, it->second.min});
        predicates.push_back(relational::SimplePredicate{
            column, relational::CompareOp::kLe, it->second.max});
      }
    }
    if (predicates.empty()) return;
    auto result = PruneWithPredicates(*node->pipeline, predicates);
    if (!result.ok()) {
      status = result.status();
      return;
    }
    if (!result->changed) return;
    node->pipeline =
        std::make_shared<ml::ModelPipeline>(std::move(result->pipeline));
    node->model_input_columns = result->kept_inputs;
    ++fired;
  });
  RAVEN_RETURN_IF_ERROR(status);
  return fired;
}

Result<std::size_t> ApplyLossyProjection(IrNodePtr* root,
                                         double weight_threshold) {
  if (weight_threshold <= 0.0) return std::size_t{0};
  std::size_t fired = 0;
  Status status = Status::OK();
  ir::VisitIr(root->get(), [&](IrNode* node) {
    if (!status.ok() || node->kind != IrOpKind::kModelPipeline) return;
    auto* linear = std::get_if<ml::LinearModel>(&node->pipeline->predictor);
    if (linear == nullptr) return;
    // Copy-on-write: threshold a copy, then run the exact projection.
    ml::ModelPipeline thresholded = *node->pipeline;
    auto& model = std::get<ml::LinearModel>(thresholded.predictor);
    if (model.ThresholdWeights(weight_threshold) == 0) return;
    auto result = ProjectUnusedFeatures(thresholded);
    if (!result.ok()) {
      status = result.status();
      return;
    }
    node->pipeline =
        std::make_shared<ml::ModelPipeline>(std::move(result->pipeline));
    node->model_input_columns = result->kept_inputs;
    ++fired;
  });
  RAVEN_RETURN_IF_ERROR(status);
  return fired;
}

}  // namespace raven::optimizer
