#ifndef RAVEN_RUNTIME_PLAN_EXECUTOR_H_
#define RAVEN_RUNTIME_PLAN_EXECUTOR_H_

#include <mutex>

#include "common/status.h"
#include "ir/ir.h"
#include "nnrt/session.h"
#include "relational/catalog.h"
#include "relational/table.h"
#include "runtime/codegen.h"

namespace raven::runtime {

/// Executes optimized IR plans against the relational engine.
///
/// In-process plans whose only base relation is a single table scan
/// automatically parallelize across `options.parallelism` partitions
/// (paper §5: "SQL Server automatically parallelizes both the scan and
/// PREDICT operators"); everything else runs sequentially.
class PlanExecutor {
 public:
  PlanExecutor(const relational::Catalog* catalog,
               nnrt::SessionCache* session_cache)
      : catalog_(catalog), session_cache_(session_cache) {}

  Result<relational::Table> Execute(const ir::IrPlan& plan,
                                    const ExecutionOptions& options,
                                    ExecutionStats* stats = nullptr);

 private:
  const relational::Catalog* catalog_;
  nnrt::SessionCache* session_cache_;
};

}  // namespace raven::runtime

#endif  // RAVEN_RUNTIME_PLAN_EXECUTOR_H_
