#include "runtime/external_runtime.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace raven::runtime {

Result<std::string> ResolveWorkerPath(const std::string& configured) {
  if (!configured.empty()) {
    if (::access(configured.c_str(), X_OK) == 0) return configured;
    return Status::NotFound("worker binary not executable: " + configured);
  }
  if (const char* env = std::getenv("RAVEN_WORKER_PATH")) {
    if (::access(env, X_OK) == 0) return std::string(env);
  }
  // Derive from the current executable: build/<dir>/binary ->
  // build/tools/raven_worker.
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n > 0) {
    exe[n] = '\0';
    std::string dir(exe);
    const std::size_t slash = dir.rfind('/');
    if (slash != std::string::npos) {
      dir = dir.substr(0, slash);
      for (const char* rel : {"/../tools/raven_worker", "/raven_worker",
                              "/tools/raven_worker"}) {
        const std::string candidate = dir + rel;
        if (::access(candidate.c_str(), X_OK) == 0) return candidate;
      }
    }
  }
  return Status::NotFound(
      "cannot locate raven_worker binary (set $RAVEN_WORKER_PATH)");
}

WorkerClient::~WorkerClient() { Stop(); }

Status WorkerClient::Start(const ExternalRuntimeOptions& options) {
  // Workers die at arbitrary times (crashes, SIGKILL fault injection); a
  // write into the broken pipe must come back as EPIPE, not SIGPIPE.
  static std::once_flag sigpipe_once;
  std::call_once(sigpipe_once, [] { ::signal(SIGPIPE, SIG_IGN); });
  RAVEN_ASSIGN_OR_RETURN(std::string path,
                         ResolveWorkerPath(options.worker_path));
  int to_pipe[2];
  int from_pipe[2];
  if (::pipe(to_pipe) != 0 || ::pipe(from_pipe) != 0) {
    return Status::IoError("pipe() failed");
  }
  // argv assembled before fork: only async-signal-safe calls may run in the
  // child of a multithreaded parent.
  const std::string boot_arg =
      "--boot-ms=" + std::to_string(options.boot_millis);
  std::vector<const char*> argv = {path.c_str(), boot_arg.c_str()};
  for (const auto& arg : options.worker_args) argv.push_back(arg.c_str());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return Status::IoError("fork() failed");
  if (pid == 0) {
    // Child: stdin <- to_pipe, stdout -> from_pipe.
    ::dup2(to_pipe[0], STDIN_FILENO);
    ::dup2(from_pipe[1], STDOUT_FILENO);
    ::close(to_pipe[0]);
    ::close(to_pipe[1]);
    ::close(from_pipe[0]);
    ::close(from_pipe[1]);
    ::execv(path.c_str(), const_cast<char* const*>(argv.data()));
    ::_exit(127);  // exec failed
  }
  ::close(to_pipe[0]);
  ::close(from_pipe[1]);
  pid_ = pid;
  to_worker_ = to_pipe[1];
  from_worker_ = from_pipe[0];
  // Handshake: the worker answers the ping only after its boot delay, so
  // callers pay the runtime start-up cost here, like
  // sp_execute_external_script does.
  ScoreRequest ping;
  ping.command = WorkerCommand::kPing;
  RAVEN_RETURN_IF_ERROR(WriteFrame(to_worker_, EncodeRequest(ping)));
  RAVEN_ASSIGN_OR_RETURN(std::string payload, ReadFrame(from_worker_));
  RAVEN_ASSIGN_OR_RETURN(ScoreResponse response, DecodeResponse(payload));
  if (!response.ok) {
    Stop();
    return Status::ExecutionError("worker ping failed: " + response.error);
  }
  return Status::OK();
}

Result<Tensor> WorkerClient::Score(WorkerCommand kind,
                                   const std::string& model_bytes,
                                   const Tensor& input) {
  if (!running()) return Status::ExecutionError("worker not running");
  ScoreRequest request;
  request.command = kind;
  request.model_bytes = model_bytes;
  request.input = input;
  RAVEN_RETURN_IF_ERROR(WriteFrame(to_worker_, EncodeRequest(request)));
  RAVEN_ASSIGN_OR_RETURN(std::string payload, ReadFrame(from_worker_));
  RAVEN_ASSIGN_OR_RETURN(ScoreResponse response, DecodeResponse(payload));
  if (!response.ok) {
    return Status::ExecutionError("worker scoring failed: " + response.error);
  }
  return response.output;
}

Status WorkerClient::SendFrame(const std::string& payload) {
  if (!running()) return Status::ExecutionError("worker not running");
  return WriteFrame(to_worker_, payload);
}

Result<std::string> WorkerClient::ReceiveFrame(int timeout_millis) {
  if (!running()) return Status::ExecutionError("worker not running");
  return ReadFrame(from_worker_, timeout_millis);
}

void WorkerClient::Stop() {
  if (pid_ <= 0) return;
  ScoreRequest request;
  request.command = WorkerCommand::kShutdown;
  if (WriteFrame(to_worker_, EncodeRequest(request)).ok()) {
    // The worker acks kShutdown before exiting, which makes the join below
    // deterministic; a dead/wedged worker skips the ack and falls through
    // to the kill path. Bounded wait so a wedged worker cannot stall Stop.
    (void)ReadFrame(from_worker_, /*timeout_millis=*/2000);
  }
  ::close(to_worker_);
  ::close(from_worker_);
  int status = 0;
  // Give the worker a moment; kill if it ignores the shutdown.
  for (int i = 0; i < 100; ++i) {
    const pid_t done = ::waitpid(pid_, &status, WNOHANG);
    if (done == pid_) {
      pid_ = -1;
      return;
    }
    ::usleep(2000);
  }
  ::kill(pid_, SIGKILL);
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
}

}  // namespace raven::runtime
