#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace raven::ml {
namespace {

double SquaredDistance(const float* a, const float* b, std::int64_t d) {
  double sum = 0.0;
  for (std::int64_t i = 0; i < d; ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

Status KMeans::Fit(const Tensor& x, const KMeansOptions& options) {
  if (x.rank() != 2) {
    return Status::InvalidArgument("KMeans::Fit expects [n, d]");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  if (n == 0 || options.k <= 0) {
    return Status::InvalidArgument("KMeans needs rows and k > 0");
  }
  const std::int64_t k = std::min<std::int64_t>(options.k, n);
  Rng rng(options.seed);

  // k-means++ seeding.
  centroids_.clear();
  std::vector<double> min_dist(static_cast<std::size_t>(n),
                               std::numeric_limits<double>::max());
  const std::int64_t first =
      static_cast<std::int64_t>(rng.NextUint(static_cast<std::uint64_t>(n)));
  centroids_.emplace_back(x.raw() + first * d, x.raw() + (first + 1) * d);
  while (static_cast<std::int64_t>(centroids_.size()) < k) {
    double total = 0.0;
    for (std::int64_t r = 0; r < n; ++r) {
      const double dist =
          SquaredDistance(x.raw() + r * d, centroids_.back().data(), d);
      min_dist[static_cast<std::size_t>(r)] =
          std::min(min_dist[static_cast<std::size_t>(r)], dist);
      total += min_dist[static_cast<std::size_t>(r)];
    }
    double pick = rng.NextDouble() * total;
    std::int64_t chosen = n - 1;
    for (std::int64_t r = 0; r < n; ++r) {
      pick -= min_dist[static_cast<std::size_t>(r)];
      if (pick <= 0.0) {
        chosen = r;
        break;
      }
    }
    centroids_.emplace_back(x.raw() + chosen * d, x.raw() + (chosen + 1) * d);
  }

  // Lloyd iterations.
  std::vector<std::int64_t> assign(static_cast<std::size_t>(n), -1);
  for (std::int64_t iter = 0; iter < options.max_iters; ++iter) {
    bool changed = false;
    for (std::int64_t r = 0; r < n; ++r) {
      const std::int64_t c = AssignRow(x.raw() + r * d, d);
      if (c != assign[static_cast<std::size_t>(r)]) {
        assign[static_cast<std::size_t>(r)] = c;
        changed = true;
      }
    }
    if (!changed) break;
    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(k),
        std::vector<double>(static_cast<std::size_t>(d), 0.0));
    std::vector<std::int64_t> counts(static_cast<std::size_t>(k), 0);
    for (std::int64_t r = 0; r < n; ++r) {
      const std::size_t c =
          static_cast<std::size_t>(assign[static_cast<std::size_t>(r)]);
      ++counts[c];
      const float* row = x.raw() + r * d;
      for (std::int64_t i = 0; i < d; ++i) sums[c][static_cast<std::size_t>(i)] += row[i];
    }
    for (std::int64_t c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) continue;  // keep old
      for (std::int64_t i = 0; i < d; ++i) {
        centroids_[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)] =
            static_cast<float>(sums[static_cast<std::size_t>(c)]
                                   [static_cast<std::size_t>(i)] /
                               static_cast<double>(
                                   counts[static_cast<std::size_t>(c)]));
      }
    }
  }
  return Status::OK();
}

std::int64_t KMeans::AssignRow(const float* row,
                               std::int64_t num_features) const {
  std::int64_t best = 0;
  double best_dist = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double dist =
        SquaredDistance(row, centroids_[c].data(), num_features);
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<std::int64_t>(c);
    }
  }
  return best;
}

Result<std::vector<std::int64_t>> KMeans::Assign(const Tensor& x) const {
  if (x.rank() != 2 || x.dim(1) != num_features()) {
    return Status::InvalidArgument("KMeans::Assign shape mismatch");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    out[static_cast<std::size_t>(r)] = AssignRow(x.raw() + r * d, d);
  }
  return out;
}

void KMeans::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(centroids_.size());
  for (const auto& c : centroids_) writer->WriteF32Vector(c);
}

Result<KMeans> KMeans::Deserialize(BinaryReader* reader) {
  KMeans km;
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t k, reader->ReadU64());
  for (std::uint64_t i = 0; i < k; ++i) {
    RAVEN_ASSIGN_OR_RETURN(auto c, reader->ReadF32Vector());
    km.centroids_.push_back(std::move(c));
  }
  return km;
}

}  // namespace raven::ml
