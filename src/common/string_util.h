#ifndef RAVEN_COMMON_STRING_UTIL_H_
#define RAVEN_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace raven {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> SplitString(const std::string& s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string TrimString(const std::string& s);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(const std::string& s);
std::string ToUpper(const std::string& s);

bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

}  // namespace raven

#endif  // RAVEN_COMMON_STRING_UTIL_H_
