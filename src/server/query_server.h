#ifndef RAVEN_SERVER_QUERY_SERVER_H_
#define RAVEN_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "raven/raven.h"
#include "server/admission.h"
#include "server/event_loop.h"
#include "server/plan_cache.h"
#include "server/predict_batcher.h"
#include "server/server_protocol.h"
#include "server/session.h"

namespace raven::server {

/// Server configuration. Exactly one listener comes up: the Unix-domain
/// socket when `unix_socket_path` is set, otherwise TCP on 127.0.0.1 when
/// `tcp_port` >= 0 (0 lets the kernel pick; see tcp_port() after Start).
struct QueryServerOptions {
  std::string unix_socket_path;
  int tcp_port = -1;
  std::size_t plan_cache_capacity = 128;
  AdmissionOptions admission;
  /// Initial execution knobs of every new session (SET overrides
  /// per-session).
  runtime::ExecutionOptions default_execution;
  /// Simultaneous connections; arrivals beyond this are answered with a
  /// kBusy frame and closed. With the epoll core an idle connection costs a
  /// registered fd plus its Session — not a thread — so this bounds fds and
  /// per-connection state (the dispatch pool is sized from the admission
  /// knobs instead).
  std::int64_t max_connections = 256;
  /// Request frames larger than this are rejected before their payload
  /// buffer is allocated: a hostile header cannot cost the server the
  /// claimed allocation. Statements are capped at frontend::kMaxSqlLength
  /// anyway; the default leaves headroom for large EXECUTE param vectors.
  std::uint32_t max_request_frame_bytes = 8u << 20;
  /// A connection with no complete request for this long is dropped
  /// (<= 0: never). Without it, max_connections idle sockets would pin
  /// every slot forever — the cheapest possible denial of service.
  int idle_timeout_millis = 300000;
  /// When >= 0, a second loopback TCP listener serves `GET /metrics` in
  /// Prometheus text format on this port (0 lets the kernel pick; see
  /// metrics_tcp_port() after Start). Plain HTTP/1.0, connection per
  /// request, served off an http-mode EventLoop.
  int metrics_port = -1;
  /// When non-empty, statements that finish at or over their session's
  /// `SET slow_query_millis` threshold append their span tree to this file
  /// as one JSON line each (opened for append at Start).
  std::string slow_query_log_path;
};

/// Aggregate serving counters (SHOW STATS renders these).
struct ServerStats {
  PlanCacheStats plan_cache;
  AdmissionController::Stats admission;
  std::int64_t queries_served = 0;
  std::int64_t statements_prepared = 0;
  std::int64_t prepared_executions = 0;
  std::int64_t sessions_opened = 0;
  std::int64_t sessions_active = 0;
  std::int64_t worker_restarts = 0;
  std::int64_t catalog_version = 0;
  /// Columnar-storage scans: blocks read vs. blocks zone maps pruned
  /// (DiskScanOperator; both 0 unless disk tables are attached).
  std::int64_t blocks_scanned = 0;
  std::int64_t blocks_skipped = 0;
  /// Cross-query inference batching (PredictBatcher).
  std::int64_t batches_flushed = 0;
  std::int64_t rows_coalesced = 0;
  /// Mean rows per physical NNRT call, x100 (integer stats table): 100 =
  /// no coalescing, 6400 = 64 rows/batch.
  std::int64_t batch_occupancy = 0;
  /// Event-loop wakeups with >= 1 ready fd (EventLoopStats).
  std::int64_t epoll_wakeups = 0;
  /// NNRT session cache (nnrt::SessionCacheStats) + artifact tier.
  std::int64_t nn_session_hits = 0;
  std::int64_t nn_session_misses = 0;
  std::int64_t nn_session_evictions = 0;
  std::int64_t nn_session_entries = 0;
  /// Fresh compiles that ran the graph optimizer; stays 0 across a
  /// warm-artifact cold start (the CI assertion for the artifact cache).
  std::int64_t nn_graph_optimizations = 0;
  std::int64_t nn_artifact_hits = 0;
  std::int64_t nn_artifact_writes = 0;
  std::int64_t nn_artifact_rejects = 0;
  /// Per-op backend profiling (OpProfiler totals; EXPLAIN shows the
  /// per-op-type breakdown).
  std::int64_t nn_ops_profiled = 0;
  std::int64_t nn_op_micros = 0;
  /// Statements that crossed their session's slow_query_millis threshold
  /// (each also wrote one JSON line to the slow-query log when configured).
  std::int64_t slow_queries = 0;

  /// The SHOW STATS key/value pairs, in render order.
  std::vector<std::pair<std::string, std::int64_t>> ToPairs() const;

  /// Mean rows per flushed batch x100, rounded half-up; 0 when nothing
  /// flushed yet. Exposed for the unit test pinning the rounding.
  static std::int64_t BatchOccupancyX100(std::int64_t rows_flushed,
                                         std::int64_t batches_flushed);
};

/// A long-lived concurrent query service over a RavenContext: accepts
/// clients on a Unix-domain or TCP socket speaking the length-prefixed
/// frame protocol of server_protocol.h, gives each connection a Session
/// (execution knobs, temp views, prepared statements), routes statements
/// through the shared PlanCache (normalized SQL + catalog version ->
/// optimized IR), and bounds concurrent execution with the
/// AdmissionController. Connections live on an epoll EventLoop (idle
/// sockets cost a registered fd, not a thread); complete request frames
/// are executed on the loop's dispatch pool through the context's shared
/// PlanExecutor, whose pipelines fan out on the process-wide ThreadPool.
/// PREDICT scorers of all sessions share one PredictBatcher, so
/// concurrently in-flight queries against the same model coalesce their
/// inference rows into shared NNRT calls (SET batch_window_micros > 0 to
/// enable). Statement verbs handled server-side:
///
///   PREPARE <name> AS <select with ? placeholders>
///   EXECUTE <name> [( v1, v2, ... )]
///   SET <knob> = <value>
///   CREATE VIEW <name> AS <select>       -- session-scoped temp view
///   DROP VIEW <name>
///   SHOW STATS
///   SHOW METRICS                         -- Prometheus text exposition
///   SHOW TRACE                           -- last recorded span tree
///   TRACE <select>                       -- execute traced, return the tree
///   EXPLAIN <select>                     -- plan text, batch-eligible nodes
///   EXPLAIN ANALYZE <select>             -- execute + actual-counter tree
///
/// Everything else is analyzed as an inference query. The embedding
/// process must not call ctx->Query() concurrently with a running server
/// (the server owns the optimizer's per-query costing knobs); direct
/// catalog/model mutations are fine and invalidate cached plans via the
/// catalog version.
class QueryServer {
 public:
  QueryServer(RavenContext* ctx, QueryServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and starts the event loop + dispatch pool.
  Status Start();
  /// Stops accepting, drains the inference batcher (pending batched rows
  /// flush immediately — no PREDICT waiter is left blocked on a window),
  /// severs every live connection (in-flight statements finish first —
  /// execution is not interruptible), and joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound TCP port (ephemeral port resolved), or -1 for a Unix listener.
  int tcp_port() const { return bound_tcp_port_; }
  /// Bound metrics port (ephemeral port resolved), or -1 when disabled.
  int metrics_tcp_port() const { return bound_metrics_port_; }
  const std::string& unix_socket_path() const {
    return options_.unix_socket_path;
  }

  ServerStats Snapshot() const;
  PlanCache& plan_cache() { return plan_cache_; }
  AdmissionController& admission() { return admission_; }
  PredictBatcher& batcher() { return *batcher_; }
  /// The Prometheus text exposition: fills the scrape-time counters/gauges
  /// from Snapshot(), then renders every registered series (SHOW METRICS
  /// and the /metrics endpoint both come through here).
  std::string RenderMetrics();
  /// The metrics histograms, for bench/test quantile reads.
  const obs::Histogram& query_latency_histogram() const {
    return *h_query_latency_;
  }

 private:
  ServerResponse HandleRequest(Session* session, const ClientRequest& request);
  ServerResponse HandleStatement(Session* session, const std::string& sql);
  ServerResponse HandlePrepare(Session* session, const std::string& rest);
  ServerResponse HandleExecute(Session* session, const std::string& name,
                               const std::vector<double>& params);
  ServerResponse HandleSet(Session* session, const std::string& rest);
  ServerResponse HandleCreateView(Session* session, const std::string& rest);
  ServerResponse HandleExplain(Session* session, const std::string& body);
  ServerResponse HandleExplainAnalyze(Session* session,
                                      const std::string& body);
  ServerResponse HandleTrace(Session* session, const std::string& rest);
  ServerResponse RunStatement(Session* session, const std::string& sql,
                              bool force_trace = false);
  ServerResponse ShowStats() const;

  /// Builds one raw HTTP response for the metrics listener (GET /metrics;
  /// anything else is 404).
  std::string HandleMetricsHttp(const std::string& request);

  /// Renders + stores the statement's trace in the session, and appends
  /// the JSON line to the slow-query log when the statement crossed the
  /// session's slow_query_millis threshold.
  void FinishTrace(Session* session, const std::string& sql,
                   double total_millis, obs::Trace* trace);

  /// Parse + optimize `sql` (already view-rewritten) for the session's
  /// planning profile, going through the shared plan cache. `cache_hit`
  /// reports whether parse+optimize were skipped. A non-null `trace`
  /// records the lookup/parse/optimize spans.
  Result<std::shared_ptr<const CachedPlan>> PlanStatement(
      Session* session, const std::string& sql, bool* cache_hit,
      obs::Trace* trace = nullptr);
  /// The uncached slow path: analyze, then optimize under optimize_mu_
  /// (the shared CrossOptimizer's costing knobs are per-query state).
  Result<std::shared_ptr<const CachedPlan>> PlanFresh(Session* session,
                                                      const std::string& sql,
                                                      obs::Trace* trace);

  /// Admission-gated execution of an optimized plan; fills the response's
  /// table and serving stats, feeds the latency/queue-wait histograms, and
  /// (with a non-null trace) records the admission-wait span and threads
  /// the trace into the executor.
  ServerResponse ExecutePlan(Session* session, const ir::IrPlan& plan,
                             bool cache_hit, obs::Trace* trace = nullptr);

  static ServerResponse ErrorResponse(const Status& status);

  RavenContext* ctx_;
  QueryServerOptions options_;
  PlanCache plan_cache_;
  AdmissionController admission_;
  /// Shared by every session's PREDICT scorers (injected through
  /// ExecutionOptions::predict_batcher); outlives the event loop.
  std::shared_ptr<PredictBatcher> batcher_;
  std::unique_ptr<EventLoop> event_loop_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int bound_tcp_port_ = -1;
  /// Metrics endpoint: its own listener + http-mode loop so a scraper can
  /// never occupy a query connection slot (and vice versa).
  std::unique_ptr<EventLoop> metrics_loop_;
  int metrics_listen_fd_ = -1;
  int bound_metrics_port_ = -1;

  /// Slow-query log sink (append; one JSON span-tree line per statement
  /// over threshold). Guarded by slow_log_mu_ — emission is rare.
  std::mutex slow_log_mu_;
  std::FILE* slow_log_ = nullptr;

  /// Metric series live for the server's lifetime; push-style histograms
  /// observe on the query path, scrape-time counters/gauges fill from
  /// Snapshot() under scrape_mu_ in RenderMetrics.
  obs::MetricsRegistry metrics_;
  std::mutex scrape_mu_;
  obs::Histogram* h_query_latency_ = nullptr;
  obs::Histogram* h_queue_wait_ = nullptr;
  obs::Histogram* h_query_rows_ = nullptr;
  obs::Counter* c_queries_served_ = nullptr;
  obs::Counter* c_plan_cache_hits_ = nullptr;
  obs::Counter* c_plan_cache_misses_ = nullptr;
  obs::Counter* c_queries_shed_ = nullptr;
  obs::Counter* c_sessions_opened_ = nullptr;
  obs::Counter* c_worker_restarts_ = nullptr;
  obs::Counter* c_blocks_scanned_ = nullptr;
  obs::Counter* c_blocks_skipped_ = nullptr;
  obs::Counter* c_batches_flushed_ = nullptr;
  obs::Counter* c_rows_coalesced_ = nullptr;
  obs::Counter* c_nn_session_hits_ = nullptr;
  obs::Counter* c_nn_session_misses_ = nullptr;
  obs::Counter* c_nn_op_micros_ = nullptr;
  obs::Counter* c_epoll_wakeups_ = nullptr;
  obs::Counter* c_slow_queries_ = nullptr;
  obs::Gauge* g_sessions_active_ = nullptr;
  obs::Gauge* g_queries_active_ = nullptr;
  obs::Gauge* g_queries_queued_ = nullptr;
  obs::Gauge* g_plan_cache_entries_ = nullptr;
  obs::Gauge* g_plan_cache_hit_ratio_ = nullptr;
  obs::Gauge* g_batch_occupancy_ = nullptr;
  obs::Gauge* g_connections_open_ = nullptr;

  /// Serializes optimizer use: CrossOptimizer's costing targets (dop,
  /// distributed workers) are set per query. Plan-cache hits skip this
  /// lock entirely, which is what makes the warm path concurrent.
  std::mutex optimize_mu_;

  std::atomic<std::int64_t> next_session_id_{1};
  std::atomic<std::int64_t> queries_served_{0};
  std::atomic<std::int64_t> statements_prepared_{0};
  std::atomic<std::int64_t> prepared_executions_{0};
  std::atomic<std::int64_t> sessions_opened_{0};
  std::atomic<std::int64_t> sessions_active_{0};
  std::atomic<std::int64_t> worker_restarts_{0};
  std::atomic<std::int64_t> blocks_scanned_{0};
  std::atomic<std::int64_t> blocks_skipped_{0};
  std::atomic<std::int64_t> slow_queries_{0};
};

}  // namespace raven::server

#endif  // RAVEN_SERVER_QUERY_SERVER_H_
