#include "relational/statistics.h"

#include <set>

namespace raven::relational {

namespace {
constexpr std::int64_t kDistinctCap = 64;
}  // namespace

ColumnStats ComputeColumnStats(const Column& column) {
  ColumnStats stats;
  stats.num_rows = column.size();
  if (column.data.empty()) return stats;
  stats.min = column.data.front();
  stats.max = column.data.front();
  std::set<double> distinct;
  for (double v : column.data) {
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
    if (stats.distinct_exact) {
      distinct.insert(v);
      if (static_cast<std::int64_t>(distinct.size()) > kDistinctCap) {
        stats.distinct_exact = false;
        distinct.clear();
      }
    }
  }
  stats.distinct = stats.distinct_exact
                       ? static_cast<std::int64_t>(distinct.size())
                       : kDistinctCap + 1;
  if (stats.distinct_exact && stats.distinct == 1) {
    stats.constant = stats.min;
  }
  return stats;
}

std::map<std::string, ColumnStats> ComputeTableStats(const Table& table) {
  std::map<std::string, ColumnStats> out;
  for (const auto& column : table.columns()) {
    out[column.name] = ComputeColumnStats(column);
  }
  return out;
}

}  // namespace raven::relational
