#include "relational/kernel.h"

#include <cmath>
#include <limits>
#include <utility>

namespace raven::relational {

namespace {

double FoldCompare(CompareOp op, double l, double r) {
  switch (op) {
    case CompareOp::kEq:
      return l == r ? 1.0 : 0.0;
    case CompareOp::kNe:
      return l != r ? 1.0 : 0.0;
    case CompareOp::kLt:
      return l < r ? 1.0 : 0.0;
    case CompareOp::kLe:
      return l <= r ? 1.0 : 0.0;
    case CompareOp::kGt:
      return l > r ? 1.0 : 0.0;
    case CompareOp::kGe:
      return l >= r ? 1.0 : 0.0;
  }
  return 0.0;
}

double FoldArith(ArithOp op, double l, double r) {
  switch (op) {
    case ArithOp::kAdd:
      return l + r;
    case ArithOp::kSub:
      return l - r;
    case ArithOp::kMul:
      return l * r;
    case ArithOp::kDiv:
      return l / r;  // IEEE: +/-inf or NaN on zero divisors, like the
                     // interpreter; downstream total orders handle NaN
  }
  return 0.0;
}

/// Runs `f(l, r)` over n rows, specialized outside the loop for the operand
/// shape (vector/vector, vector/scalar, scalar/vector) — the libgdf-style
/// typed tight loop. Null vector pointer means "use the immediate".
template <typename F>
void BinaryKernel(const std::vector<double>* l, double limm,
                  const std::vector<double>* r, double rimm, std::size_t n,
                  std::vector<double>* out, F f) {
  out->resize(n);
  double* o = out->data();
  if (l != nullptr && r != nullptr) {
    const double* a = l->data();
    const double* b = r->data();
    for (std::size_t i = 0; i < n; ++i) o[i] = f(a[i], b[i]);
  } else if (l != nullptr) {
    const double* a = l->data();
    for (std::size_t i = 0; i < n; ++i) o[i] = f(a[i], rimm);
  } else if (r != nullptr) {
    const double* b = r->data();
    for (std::size_t i = 0; i < n; ++i) o[i] = f(limm, b[i]);
  } else {
    // Two immediates would have been folded at compile time; stay correct
    // anyway.
    const double v = f(limm, rimm);
    for (std::size_t i = 0; i < n; ++i) o[i] = v;
  }
}

}  // namespace

Result<std::int64_t> KernelProgram::ResolveOrdinal(
    const std::vector<std::string>& schema, const std::string& name,
    const std::string& op_context) {
  std::int64_t found = -1;
  int matches = 0;
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == name) {
      found = static_cast<std::int64_t>(i);
      ++matches;
    }
  }
  if (matches == 0) {
    return Status::NotFound("column '" + name + "' not found (resolving " +
                            op_context + ")");
  }
  if (matches > 1) {
    return Status::InvalidArgument(
        "column '" + name + "' is ambiguous (" + std::to_string(matches) +
        " matches, resolving " + op_context + ")");
  }
  return found;
}

/// Postorder single-pass compiler. Registers are allocated from a free
/// list; an instruction's output register is claimed before its argument
/// registers are released, so outputs never alias inputs (kCase writes its
/// output before re-reading condition registers).
class KernelProgram::Compiler {
 public:
  Compiler(const std::vector<std::string>& schema, std::string op_context,
           KernelProgram* prog)
      : schema_(schema), op_context_(std::move(op_context)), prog_(prog) {}

  Result<KernelOperand> Emit(const Expr& expr) {
    switch (expr.kind()) {
      case Expr::Kind::kLiteral:
        return Immediate(static_cast<const LiteralExpr&>(expr).value());
      case Expr::Kind::kColumnRef: {
        const auto& ref = static_cast<const ColumnRefExpr&>(expr);
        RAVEN_ASSIGN_OR_RETURN(
            std::int64_t ordinal,
            ResolveOrdinal(schema_, ref.name(), op_context_));
        KernelOperand o;
        o.kind = KernelOperand::Kind::kColumn;
        o.index = static_cast<std::int32_t>(ordinal);
        return o;
      }
      case Expr::Kind::kParam: {
        const auto& param = static_cast<const ParamExpr&>(expr);
        // Same diagnosis as the interpreter, raised at compile (Open) time.
        return Status::ExecutionError(
            "unbound prepared-statement parameter ?" +
            std::to_string(param.index() + 1) +
            " (EXECUTE must bind every ? placeholder; compiling " +
            op_context_ + ")");
      }
      case Expr::Kind::kCompare: {
        const auto& cmp = static_cast<const CompareExpr&>(expr);
        RAVEN_ASSIGN_OR_RETURN(KernelOperand l, Emit(cmp.lhs()));
        RAVEN_ASSIGN_OR_RETURN(KernelOperand r, Emit(cmp.rhs()));
        if (IsImm(l) && IsImm(r)) {
          return Immediate(FoldCompare(cmp.op(), l.imm, r.imm));
        }
        Instr instr;
        instr.op = Instr::Op::kCompare;
        instr.cmp = cmp.op();
        instr.args = {l, r};
        return Push(std::move(instr));
      }
      case Expr::Kind::kArith: {
        const auto& arith = static_cast<const ArithExpr&>(expr);
        RAVEN_ASSIGN_OR_RETURN(KernelOperand l, Emit(arith.lhs()));
        RAVEN_ASSIGN_OR_RETURN(KernelOperand r, Emit(arith.rhs()));
        if (IsImm(l) && IsImm(r)) {
          return Immediate(FoldArith(arith.op(), l.imm, r.imm));
        }
        Instr instr;
        instr.op = Instr::Op::kArith;
        instr.arith = arith.op();
        instr.args = {l, r};
        return Push(std::move(instr));
      }
      case Expr::Kind::kLogical: {
        const auto& logical = static_cast<const LogicalExpr&>(expr);
        RAVEN_ASSIGN_OR_RETURN(KernelOperand l, Emit(logical.lhs()));
        if (logical.op() == LogicalOp::kNot) {
          if (IsImm(l)) return Immediate(l.imm == 0.0 ? 1.0 : 0.0);
          Instr instr;
          instr.op = Instr::Op::kNot;
          instr.args = {l};
          return Push(std::move(instr));
        }
        if (logical.rhs() == nullptr) {
          return Status::InvalidArgument("binary logical op missing rhs");
        }
        RAVEN_ASSIGN_OR_RETURN(KernelOperand r, Emit(*logical.rhs()));
        const bool is_and = logical.op() == LogicalOp::kAnd;
        if (IsImm(l) && IsImm(r)) {
          const bool lv = l.imm != 0.0;
          const bool rv = r.imm != 0.0;
          return Immediate((is_and ? lv && rv : lv || rv) ? 1.0 : 0.0);
        }
        Instr instr;
        instr.op = is_and ? Instr::Op::kAnd : Instr::Op::kOr;
        instr.args = {l, r};
        return Push(std::move(instr));
      }
      case Expr::Kind::kCaseWhen: {
        const auto& cw = static_cast<const CaseWhenExpr&>(expr);
        Instr instr;
        instr.op = Instr::Op::kCase;
        bool all_imm = true;
        for (const auto& arm : cw.arms()) {
          RAVEN_ASSIGN_OR_RETURN(KernelOperand when, Emit(*arm.when));
          RAVEN_ASSIGN_OR_RETURN(KernelOperand then, Emit(*arm.then));
          all_imm = all_imm && IsImm(when) && IsImm(then);
          instr.args.push_back(when);
          instr.args.push_back(then);
        }
        KernelOperand else_op = Immediate(0.0);
        if (cw.else_expr() != nullptr) {
          RAVEN_ASSIGN_OR_RETURN(else_op, Emit(*cw.else_expr()));
        }
        all_imm = all_imm && IsImm(else_op);
        if (all_imm) {
          // Fold with the interpreter's first-match-wins arm order.
          double v = else_op.imm;
          for (std::size_t a = 0; a + 1 < instr.args.size(); a += 2) {
            if (instr.args[a].imm != 0.0) {
              v = instr.args[a + 1].imm;
              break;
            }
          }
          return Immediate(v);
        }
        instr.args.push_back(else_op);
        return Push(std::move(instr));
      }
      case Expr::Kind::kIn: {
        const auto& in = static_cast<const InExpr&>(expr);
        RAVEN_ASSIGN_OR_RETURN(KernelOperand input, Emit(in.input()));
        if (IsImm(input)) {
          bool found = false;
          for (double candidate : in.values()) {
            if (input.imm == candidate) {
              found = true;
              break;
            }
          }
          return Immediate(found ? 1.0 : 0.0);
        }
        Instr instr;
        instr.op = Instr::Op::kIn;
        instr.args = {input};
        instr.in_values = in.values();
        return Push(std::move(instr));
      }
    }
    return Status::Internal("unreachable expression kind in kernel compile");
  }

  std::int32_t num_regs() const { return num_regs_; }

 private:
  static bool IsImm(const KernelOperand& o) {
    return o.kind == KernelOperand::Kind::kImmediate;
  }

  static KernelOperand Immediate(double v) {
    KernelOperand o;
    o.kind = KernelOperand::Kind::kImmediate;
    o.imm = v;
    return o;
  }

  /// Appends the instruction: claims an output register, then releases the
  /// argument registers back to the pool (postorder trees die after one
  /// use, so the pool stays ~tree-depth deep, not tree-size).
  KernelOperand Push(Instr instr) {
    std::int32_t out;
    if (!free_regs_.empty()) {
      out = free_regs_.back();
      free_regs_.pop_back();
    } else {
      out = num_regs_++;
    }
    instr.out = out;
    for (const KernelOperand& arg : instr.args) {
      if (arg.kind == KernelOperand::Kind::kRegister) {
        free_regs_.push_back(arg.index);
      }
    }
    prog_->instrs_.push_back(std::move(instr));
    KernelOperand o;
    o.kind = KernelOperand::Kind::kRegister;
    o.index = out;
    return o;
  }

  const std::vector<std::string>& schema_;
  const std::string op_context_;
  KernelProgram* prog_;
  std::vector<std::int32_t> free_regs_;
  std::int32_t num_regs_ = 0;
};

Result<KernelProgram> KernelProgram::Compile(
    const Expr& expr, const std::vector<std::string>& schema,
    const std::string& op_context) {
  KernelProgram prog;
  Compiler compiler(schema, op_context, &prog);
  RAVEN_ASSIGN_OR_RETURN(prog.result_, compiler.Emit(expr));
  std::int32_t regs = compiler.num_regs();
  if (prog.result_.kind == KernelOperand::Kind::kImmediate && regs == 0) {
    regs = 1;  // splat target for an all-constant expression
  }
  prog.regs_.resize(static_cast<std::size_t>(regs));
  return prog;
}

const std::vector<double>* KernelProgram::Vec(const KernelOperand& o,
                                              const DataChunk& chunk) const {
  switch (o.kind) {
    case KernelOperand::Kind::kColumn:
      return &chunk.cols[static_cast<std::size_t>(o.index)];
    case KernelOperand::Kind::kRegister:
      return &regs_[static_cast<std::size_t>(o.index)];
    case KernelOperand::Kind::kImmediate:
      return nullptr;
  }
  return nullptr;
}

Result<const std::vector<double>*> KernelProgram::Run(const DataChunk& chunk) {
  const std::size_t n = static_cast<std::size_t>(chunk.num_rows());
  for (const Instr& instr : instrs_) {
    std::vector<double>* out = &regs_[static_cast<std::size_t>(instr.out)];
    switch (instr.op) {
      case Instr::Op::kCompare: {
        const auto* l = Vec(instr.args[0], chunk);
        const auto* r = Vec(instr.args[1], chunk);
        const double li = instr.args[0].imm;
        const double ri = instr.args[1].imm;
        switch (instr.cmp) {
          case CompareOp::kEq:
            BinaryKernel(l, li, r, ri, n, out,
                         [](double a, double b) { return double(a == b); });
            break;
          case CompareOp::kNe:
            BinaryKernel(l, li, r, ri, n, out,
                         [](double a, double b) { return double(a != b); });
            break;
          case CompareOp::kLt:
            BinaryKernel(l, li, r, ri, n, out,
                         [](double a, double b) { return double(a < b); });
            break;
          case CompareOp::kLe:
            BinaryKernel(l, li, r, ri, n, out,
                         [](double a, double b) { return double(a <= b); });
            break;
          case CompareOp::kGt:
            BinaryKernel(l, li, r, ri, n, out,
                         [](double a, double b) { return double(a > b); });
            break;
          case CompareOp::kGe:
            BinaryKernel(l, li, r, ri, n, out,
                         [](double a, double b) { return double(a >= b); });
            break;
        }
        break;
      }
      case Instr::Op::kArith: {
        const auto* l = Vec(instr.args[0], chunk);
        const auto* r = Vec(instr.args[1], chunk);
        const double li = instr.args[0].imm;
        const double ri = instr.args[1].imm;
        switch (instr.arith) {
          case ArithOp::kAdd:
            BinaryKernel(l, li, r, ri, n, out,
                         [](double a, double b) { return a + b; });
            break;
          case ArithOp::kSub:
            BinaryKernel(l, li, r, ri, n, out,
                         [](double a, double b) { return a - b; });
            break;
          case ArithOp::kMul:
            BinaryKernel(l, li, r, ri, n, out,
                         [](double a, double b) { return a * b; });
            break;
          case ArithOp::kDiv:
            BinaryKernel(l, li, r, ri, n, out,
                         [](double a, double b) { return a / b; });
            break;
        }
        break;
      }
      case Instr::Op::kAnd: {
        BinaryKernel(Vec(instr.args[0], chunk), instr.args[0].imm,
                     Vec(instr.args[1], chunk), instr.args[1].imm, n, out,
                     [](double a, double b) {
                       return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
                     });
        break;
      }
      case Instr::Op::kOr: {
        BinaryKernel(Vec(instr.args[0], chunk), instr.args[0].imm,
                     Vec(instr.args[1], chunk), instr.args[1].imm, n, out,
                     [](double a, double b) {
                       return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
                     });
        break;
      }
      case Instr::Op::kNot: {
        const auto* v = Vec(instr.args[0], chunk);
        out->resize(n);
        double* o = out->data();
        if (v != nullptr) {
          const double* a = v->data();
          for (std::size_t i = 0; i < n; ++i) o[i] = double(a[i] == 0.0);
        } else {
          const double c = double(instr.args[0].imm == 0.0);
          for (std::size_t i = 0; i < n; ++i) o[i] = c;
        }
        break;
      }
      case Instr::Op::kCase: {
        const KernelOperand& else_op = instr.args.back();
        const auto* e = Vec(else_op, chunk);
        if (e != nullptr) {
          out->assign(e->begin(), e->end());
        } else {
          out->assign(n, else_op.imm);
        }
        case_decided_.assign(n, 0);
        double* o = out->data();
        for (std::size_t a = 0; a + 1 < instr.args.size(); a += 2) {
          const auto* cond = Vec(instr.args[a], chunk);
          const auto* val = Vec(instr.args[a + 1], chunk);
          const double cond_imm = instr.args[a].imm;
          const double val_imm = instr.args[a + 1].imm;
          for (std::size_t i = 0; i < n; ++i) {
            if (case_decided_[i] != 0) continue;
            const double c = cond != nullptr ? (*cond)[i] : cond_imm;
            if (c != 0.0) {
              o[i] = val != nullptr ? (*val)[i] : val_imm;
              case_decided_[i] = 1;
            }
          }
        }
        break;
      }
      case Instr::Op::kIn: {
        const auto* v = Vec(instr.args[0], chunk);
        out->resize(n);
        double* o = out->data();
        for (std::size_t i = 0; i < n; ++i) {
          const double x = v != nullptr ? (*v)[i] : instr.args[0].imm;
          bool found = false;
          for (double candidate : instr.in_values) {
            if (x == candidate) {
              found = true;
              break;
            }
          }
          o[i] = found ? 1.0 : 0.0;
        }
        break;
      }
    }
  }
  switch (result_.kind) {
    case KernelOperand::Kind::kColumn:
      return &chunk.cols[static_cast<std::size_t>(result_.index)];
    case KernelOperand::Kind::kRegister:
      return &regs_[static_cast<std::size_t>(result_.index)];
    case KernelOperand::Kind::kImmediate:
      regs_[0].assign(n, result_.imm);
      return &regs_[0];
  }
  return Status::Internal("unreachable kernel result kind");
}

Status KernelProgram::RunInto(const DataChunk& chunk,
                              std::vector<double>* out) {
  RAVEN_ASSIGN_OR_RETURN(const std::vector<double>* values, Run(chunk));
  out->assign(values->begin(), values->end());
  return Status::OK();
}

void GatherSelected(const std::vector<double>& values,
                    const std::vector<std::int32_t>& sel,
                    std::vector<double>* out) {
  if (sel.empty()) {
    out->assign(values.begin(), values.end());
    return;
  }
  out->clear();
  out->reserve(sel.size());
  for (std::int32_t i : sel) {
    out->push_back(values[static_cast<std::size_t>(i)]);
  }
}

// ---------------------------------------------------------------------------
// ExactFloatSum
// ---------------------------------------------------------------------------

void ExactFloatSum::Add(double v) {
  if (std::isnan(v)) {
    saw_nan_ = true;
    return;
  }
  if (std::isinf(v)) {
    if (v > 0.0) {
      ++pos_inf_;
    } else {
      ++neg_inf_;
    }
    return;
  }
  AddFinite(v);
}

void ExactFloatSum::AddFinite(double x) {
  // One round of the Shewchuk grow-expansion (the fsum inner loop): fold x
  // through every partial with TwoSum, keeping the non-zero low parts. The
  // partials stay non-overlapping and magnitude-increasing, so the set
  // represents the exact real-number sum regardless of input order.
  std::size_t kept = 0;
  for (std::size_t j = 0; j < terms_.size(); ++j) {
    double y = terms_[j];
    if (std::fabs(x) < std::fabs(y)) std::swap(x, y);
    const double hi = x + y;
    if (std::isinf(hi)) {
      // The running sum left double range. The exact representation is
      // gone; saturate deterministically to the overflow sign and drop the
      // partials — the low part of an overflowed TwoSum is +/-inf or NaN
      // and must never enter the expansion.
      if (hi > 0.0) {
        ++pos_inf_;
      } else {
        ++neg_inf_;
      }
      terms_.clear();
      return;
    }
    const double lo = y - (hi - x);
    if (lo != 0.0) terms_[kept++] = lo;
    x = hi;
  }
  terms_.resize(kept);
  terms_.push_back(x);
}

void ExactFloatSum::MergeFrom(const ExactFloatSum& other) {
  saw_nan_ = saw_nan_ || other.saw_nan_;
  pos_inf_ += other.pos_inf_;
  neg_inf_ += other.neg_inf_;
  for (double term : other.terms_) AddFinite(term);
}

double ExactFloatSum::Round() const {
  if (saw_nan_ || (pos_inf_ > 0 && neg_inf_ > 0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (pos_inf_ > 0) return std::numeric_limits<double>::infinity();
  if (neg_inf_ > 0) return -std::numeric_limits<double>::infinity();
  if (terms_.empty()) return 0.0;
  // fsum's final correctly-rounded collapse: sum from the largest partial
  // down, then correct the round-to-even tie case using the sign of the
  // next partial below the first non-zero low part.
  std::size_t n = terms_.size();
  double hi = terms_[--n];
  double lo = 0.0;
  while (n > 0) {
    const double x = hi;
    const double y = terms_[--n];
    hi = x + y;
    const double yr = hi - x;
    lo = y - yr;
    if (lo != 0.0) break;
  }
  if (n > 0 && ((lo < 0.0 && terms_[n - 1] < 0.0) ||
                (lo > 0.0 && terms_[n - 1] > 0.0))) {
    const double y = lo * 2.0;
    const double x = hi + y;
    if (y == x - hi) hi = x;
  }
  return hi;
}

}  // namespace raven::relational
