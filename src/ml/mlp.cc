#include "ml/mlp.h"

#include <cmath>

#include "common/rng.h"

namespace raven::ml {
namespace {

float ApplyActivation(Activation a, float v) {
  switch (a) {
    case Activation::kNone:
      return v;
    case Activation::kRelu:
      return v > 0 ? v : 0.0f;
    case Activation::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
    case Activation::kTanh:
      return std::tanh(v);
  }
  return v;
}

float ActivationGrad(Activation a, float post) {
  switch (a) {
    case Activation::kNone:
      return 1.0f;
    case Activation::kRelu:
      return post > 0 ? 1.0f : 0.0f;
    case Activation::kSigmoid:
      return post * (1.0f - post);
    case Activation::kTanh:
      return 1.0f - post * post;
  }
  return 1.0f;
}

}  // namespace

Status Mlp::Fit(const Tensor& x, const std::vector<float>& y,
                const MlpTrainOptions& options) {
  if (x.rank() != 2 || x.dim(0) != static_cast<std::int64_t>(y.size())) {
    return Status::InvalidArgument("Mlp::Fit shape mismatch");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  if (n == 0) return Status::InvalidArgument("cannot fit on 0 rows");

  // Build layer stack: d -> hidden... -> 1.
  layers_.clear();
  Rng rng(options.seed);
  std::vector<std::int64_t> sizes;
  sizes.push_back(d);
  for (std::int64_t h : options.hidden) sizes.push_back(h);
  sizes.push_back(1);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    DenseLayer layer;
    layer.in = sizes[l];
    layer.out = sizes[l + 1];
    layer.activation = (l + 2 == sizes.size()) ? options.output_activation
                                               : Activation::kRelu;
    const double bound = std::sqrt(6.0 / static_cast<double>(layer.in + layer.out));
    layer.weights.resize(static_cast<std::size_t>(layer.in * layer.out));
    for (auto& w : layer.weights) {
      w = static_cast<float>(rng.Uniform(-bound, bound));
    }
    layer.bias.assign(static_cast<std::size_t>(layer.out), 0.0f);
    layers_.push_back(std::move(layer));
  }

  // Plain SGD, one sample at a time (adequate for the small nets Raven's
  // benchmarks need; the inference path is what the paper measures).
  std::vector<std::vector<float>> acts(layers_.size() + 1);
  std::vector<std::vector<float>> deltas(layers_.size());
  for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (std::int64_t r = 0; r < n; ++r) {
      // Forward.
      acts[0].assign(x.raw() + r * d, x.raw() + (r + 1) * d);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        const DenseLayer& layer = layers_[l];
        acts[l + 1].assign(static_cast<std::size_t>(layer.out), 0.0f);
        for (std::int64_t j = 0; j < layer.out; ++j) {
          float v = layer.bias[static_cast<std::size_t>(j)];
          for (std::int64_t i = 0; i < layer.in; ++i) {
            v += acts[l][static_cast<std::size_t>(i)] *
                 layer.weights[static_cast<std::size_t>(i * layer.out + j)];
          }
          acts[l + 1][static_cast<std::size_t>(j)] =
              ApplyActivation(layer.activation, v);
        }
      }
      // Backward. For sigmoid output + log loss and linear output + MSE the
      // output delta is (pred - target) either way.
      const float pred = acts.back()[0];
      const float target = y[static_cast<std::size_t>(r)];
      deltas.back().assign(1, pred - target);
      if (layers_.back().activation != Activation::kSigmoid &&
          layers_.back().activation != Activation::kNone) {
        deltas.back()[0] *= ActivationGrad(layers_.back().activation, pred);
      }
      for (std::size_t l = layers_.size() - 1; l-- > 0;) {
        const DenseLayer& next = layers_[l + 1];
        deltas[l].assign(static_cast<std::size_t>(layers_[l].out), 0.0f);
        for (std::int64_t i = 0; i < next.in; ++i) {
          float acc = 0.0f;
          for (std::int64_t j = 0; j < next.out; ++j) {
            acc += next.weights[static_cast<std::size_t>(i * next.out + j)] *
                   deltas[l + 1][static_cast<std::size_t>(j)];
          }
          deltas[l][static_cast<std::size_t>(i)] =
              acc * ActivationGrad(layers_[l].activation,
                                   acts[l + 1][static_cast<std::size_t>(i)]);
        }
      }
      // Update.
      const float lr = static_cast<float>(options.learning_rate);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        DenseLayer& layer = layers_[l];
        for (std::int64_t i = 0; i < layer.in; ++i) {
          const float a = acts[l][static_cast<std::size_t>(i)];
          if (a == 0.0f) continue;
          for (std::int64_t j = 0; j < layer.out; ++j) {
            layer.weights[static_cast<std::size_t>(i * layer.out + j)] -=
                lr * a * deltas[l][static_cast<std::size_t>(j)];
          }
        }
        for (std::int64_t j = 0; j < layer.out; ++j) {
          layer.bias[static_cast<std::size_t>(j)] -=
              lr * deltas[l][static_cast<std::size_t>(j)];
        }
      }
    }
  }
  return Status::OK();
}

float Mlp::PredictRow(const float* row, std::int64_t num_features) const {
  std::vector<float> cur(row, row + num_features);
  std::vector<float> next;
  for (const auto& layer : layers_) {
    next.assign(static_cast<std::size_t>(layer.out), 0.0f);
    for (std::int64_t j = 0; j < layer.out; ++j) {
      float v = layer.bias[static_cast<std::size_t>(j)];
      for (std::int64_t i = 0; i < layer.in; ++i) {
        v += cur[static_cast<std::size_t>(i)] *
             layer.weights[static_cast<std::size_t>(i * layer.out + j)];
      }
      next[static_cast<std::size_t>(j)] = ApplyActivation(layer.activation, v);
    }
    cur.swap(next);
  }
  return cur.empty() ? 0.0f : cur[0];
}

Result<Tensor> Mlp::Predict(const Tensor& x) const {
  if (x.rank() != 2 || layers_.empty() || x.dim(1) != layers_.front().in) {
    return Status::InvalidArgument("Mlp::Predict shape mismatch");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  Tensor out = Tensor::Zeros({n, 1});
  for (std::int64_t r = 0; r < n; ++r) {
    out.raw()[r] = PredictRow(x.raw() + r * d, d);
  }
  return out;
}

void Mlp::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(layers_.size());
  for (const auto& layer : layers_) {
    writer->WriteI64(layer.in);
    writer->WriteI64(layer.out);
    writer->WriteU8(static_cast<std::uint8_t>(layer.activation));
    writer->WriteF32Vector(layer.weights);
    writer->WriteF32Vector(layer.bias);
  }
}

Result<Mlp> Mlp::Deserialize(BinaryReader* reader) {
  Mlp mlp;
  RAVEN_ASSIGN_OR_RETURN(std::uint64_t n, reader->ReadU64());
  for (std::uint64_t l = 0; l < n; ++l) {
    DenseLayer layer;
    RAVEN_ASSIGN_OR_RETURN(layer.in, reader->ReadI64());
    RAVEN_ASSIGN_OR_RETURN(layer.out, reader->ReadI64());
    RAVEN_ASSIGN_OR_RETURN(std::uint8_t act, reader->ReadU8());
    if (act > 3) return Status::ParseError("bad activation");
    layer.activation = static_cast<Activation>(act);
    RAVEN_ASSIGN_OR_RETURN(layer.weights, reader->ReadF32Vector());
    RAVEN_ASSIGN_OR_RETURN(layer.bias, reader->ReadF32Vector());
    if (static_cast<std::int64_t>(layer.weights.size()) !=
            layer.in * layer.out ||
        static_cast<std::int64_t>(layer.bias.size()) != layer.out) {
      return Status::ParseError("MLP layer size mismatch");
    }
    mlp.layers_.push_back(std::move(layer));
  }
  return mlp;
}

}  // namespace raven::ml
