// Fig 2(c): model inlining (hospital length-of-stay decision tree). The
// paper translates the tree to SQL, inlines it (Froid-style), and reports
// ~17x at 300K tuples over scikit-learn reading data from the DB — most of
// the win being avoided data movement — plus another 29% from
// predicate-based pruning when the query selects on a tree dimension
// (24.5x total).
//
// Series:
//   External  = out-of-process scoring of the stored pipeline (the
//               "classical framework reading from the DB" baseline).
//   InlinedSQL = tree compiled to a CASE expression evaluated by the
//               relational engine (model inlining ON, NN translation OFF).
//   InlinedPruned = same, plus WHERE bp > 140 predicate pruning the tree.

#include "bench_util.h"
#include "raven/raven.h"

namespace raven {
namespace {

std::unique_ptr<RavenContext> MakeContext(std::int64_t rows, bool inlining,
                                          bool pruning,
                                          runtime::ExecutionMode mode) {
  RavenOptions options;
  options.optimizer.model_inlining = inlining;
  options.optimizer.nn_translation = false;
  options.optimizer.predicate_model_pruning = pruning;
  options.execution.mode = mode;
  options.execution.external.boot_millis = 300;  // external runtime boot
  auto ctx = std::make_unique<RavenContext>(options);
  const auto& data = bench::Hospital(rows);
  bench::MustOk(ctx->RegisterTable("patients", data.joined), "register");
  bench::MustOk(ctx->InsertModel(
                    "los", data::HospitalTreeScript(),
                    bench::Must(data::TrainHospitalTree(data, 8), "train")),
                "insert model");
  return ctx;
}

constexpr const char* kPlainQuery =
    "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float)";
constexpr const char* kSelectiveQuery =
    "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
    "WHERE bp > 140";

void RunQuery(benchmark::State& state, RavenContext* ctx, const char* sql) {
  for (auto _ : state) {
    auto result = ctx->Query(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->table.num_rows());
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void BM_Fig2c_External(benchmark::State& state) {
  auto ctx = MakeContext(state.range(0), /*inlining=*/false,
                         /*pruning=*/false,
                         runtime::ExecutionMode::kOutOfProcess);
  RunQuery(state, ctx.get(), kPlainQuery);
}

void BM_Fig2c_InlinedSql(benchmark::State& state) {
  auto ctx = MakeContext(state.range(0), /*inlining=*/true, /*pruning=*/false,
                         runtime::ExecutionMode::kInProcess);
  RunQuery(state, ctx.get(), kPlainQuery);
}

void BM_Fig2c_SelectiveInlined(benchmark::State& state) {
  auto ctx = MakeContext(state.range(0), /*inlining=*/true, /*pruning=*/false,
                         runtime::ExecutionMode::kInProcess);
  RunQuery(state, ctx.get(), kSelectiveQuery);
}

void BM_Fig2c_SelectiveInlinedPruned(benchmark::State& state) {
  auto ctx = MakeContext(state.range(0), /*inlining=*/true, /*pruning=*/true,
                         runtime::ExecutionMode::kInProcess);
  RunQuery(state, ctx.get(), kSelectiveQuery);
}

// Paper uses up to 300K tuples for the headline number.
BENCHMARK(BM_Fig2c_External)
    ->Arg(10000)->Arg(100000)->Arg(300000)
    ->Iterations(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig2c_InlinedSql)
    ->Arg(10000)->Arg(100000)->Arg(300000)
    ->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig2c_SelectiveInlined)
    ->Arg(100000)->Arg(300000)
    ->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig2c_SelectiveInlinedPruned)
    ->Arg(100000)->Arg(300000)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace raven
