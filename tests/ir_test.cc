#include <gtest/gtest.h>

#include "data/hospital.h"
#include "ir/clustered_model.h"
#include "ir/ir.h"
#include "ml/pipeline.h"
#include "optimizer/specialize.h"
#include "relational/catalog.h"

namespace raven::ir {
namespace {

void FillCatalog(relational::Catalog* catalog) {
  relational::Table t;
  (void)t.AddNumericColumn("id", {0, 1, 2});
  (void)t.AddNumericColumn("a", {1, 2, 3});
  (void)t.AddNumericColumn("b", {4, 5, 6});
  (void)catalog->RegisterTable("t", std::move(t));
  relational::Table u;
  (void)u.AddNumericColumn("id", {0, 1, 2});
  (void)u.AddNumericColumn("c", {7, 8, 9});
  (void)catalog->RegisterTable("u", std::move(u));
}

std::shared_ptr<ml::ModelPipeline> TinyPipeline() {
  auto pipeline = std::make_shared<ml::ModelPipeline>();
  pipeline->input_columns = {"a", "b"};
  ml::LinearModel model(ml::LinearKind::kRegression);
  model.SetParams({1.0, 1.0}, 0.0);
  pipeline->predictor = std::move(model);
  return pipeline;
}

TEST(IrTest, SchemaComputation) {
  relational::Catalog catalog;
  FillCatalog(&catalog);
  IrNodePtr plan = IrNode::Join(IrNode::TableScan("t"), IrNode::TableScan("u"),
                                "id", "id");
  auto schema = *IrPlan::ComputeSchema(*plan, catalog);
  EXPECT_EQ(schema, (std::vector<std::string>{"id", "a", "b", "c"}));

  IrNodePtr model = IrNode::ModelPipelineNode(std::move(plan), "m",
                                              TinyPipeline(), {"a", "b"},
                                              "pred");
  schema = *IrPlan::ComputeSchema(*model, catalog);
  EXPECT_EQ(schema.back(), "pred");
}

TEST(IrTest, ValidateChecksModelInputs) {
  relational::Catalog catalog;
  FillCatalog(&catalog);
  IrPlan good(IrNode::ModelPipelineNode(IrNode::TableScan("t"), "m",
                                        TinyPipeline(), {"a", "b"}, "pred"));
  EXPECT_TRUE(good.Validate(catalog).ok());
  IrPlan bad(IrNode::ModelPipelineNode(IrNode::TableScan("u"), "m",
                                       TinyPipeline(), {"a", "b"}, "pred"));
  EXPECT_FALSE(bad.Validate(catalog).ok());
}

TEST(IrTest, ValidateChecksArity) {
  relational::Catalog catalog;
  FillCatalog(&catalog);
  auto filter = std::make_unique<IrNode>(IrOpKind::kFilter);
  filter->predicate = relational::Gt(relational::Col("a"), relational::Lit(1));
  // Filter with no child.
  IrPlan plan(std::move(filter));
  EXPECT_FALSE(plan.Validate(catalog).ok());
}

TEST(IrTest, CloneIsDeep) {
  relational::Catalog catalog;
  FillCatalog(&catalog);
  IrPlan plan(IrNode::Filter(IrNode::TableScan("t"),
                             relational::Gt(relational::Col("a"),
                                            relational::Lit(1))));
  IrPlan copy = plan.Clone();
  // Mutating the copy must not affect the original.
  copy.mutable_root()->predicate =
      relational::Lt(relational::Col("b"), relational::Lit(0));
  EXPECT_NE(plan.root()->predicate->ToString(),
            copy.root()->predicate->ToString());
}

TEST(IrTest, ToStringShowsStructure) {
  IrPlan plan(IrNode::ModelPipelineNode(IrNode::TableScan("t"), "model_x",
                                        TinyPipeline(), {"a", "b"}, "pred"));
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("ModelPipeline"), std::string::npos);
  EXPECT_NE(s.find("model_x"), std::string::npos);
  EXPECT_NE(s.find("TableScan"), std::string::npos);
  EXPECT_NE(s.find("[MLD]"), std::string::npos);
  EXPECT_NE(s.find("[RA]"), std::string::npos);
}

TEST(IrTest, CountKind) {
  IrPlan plan(IrNode::Join(IrNode::TableScan("t"), IrNode::TableScan("u"),
                           "id", "id"));
  EXPECT_EQ(plan.CountKind(IrOpKind::kTableScan), 2u);
  EXPECT_EQ(plan.CountKind(IrOpKind::kJoin), 1u);
  EXPECT_EQ(plan.CountKind(IrOpKind::kFilter), 0u);
}

TEST(IrTest, CategoryTaxonomy) {
  EXPECT_EQ(CategoryOf(IrOpKind::kTableScan), OpCategory::kRelational);
  EXPECT_EQ(CategoryOf(IrOpKind::kModelPipeline), OpCategory::kClassicalMl);
  EXPECT_EQ(CategoryOf(IrOpKind::kNnGraph), OpCategory::kLinearAlgebra);
  EXPECT_EQ(CategoryOf(IrOpKind::kOpaquePipeline), OpCategory::kUdf);
}

TEST(ClusteredModelTest, MatchesFallbackSemantics) {
  // Build a clustered artifact over the hospital model and check exact
  // agreement with the original pipeline (fallback-on-violation makes the
  // transformation lossless).
  auto data = data::MakeHospitalDataset(3000, 77);
  auto pipeline = *data::TrainHospitalTree(data, 6);
  optimizer::ClusteringOptions options;
  options.k = 4;
  ClusteredModel clustered =
      *optimizer::BuildClusteredModel(pipeline, data.joined, options);
  EXPECT_EQ(clustered.cluster_models.size(),
            static_cast<std::size_t>(clustered.router.k()));

  auto fresh = data::MakeHospitalDataset(500, 78);
  Tensor x = *fresh.joined.ToTensor(pipeline.input_columns);
  Tensor expected = *pipeline.Predict(x);
  Tensor actual = *clustered.Predict(x);
  EXPECT_TRUE(expected.AllClose(actual, 1e-5f));
}

TEST(ClusteredModelTest, RejectsWidthMismatch) {
  auto data = data::MakeHospitalDataset(500, 79);
  auto pipeline = *data::TrainHospitalTree(data, 4);
  optimizer::ClusteringOptions options;
  options.k = 2;
  ClusteredModel clustered =
      *optimizer::BuildClusteredModel(pipeline, data.joined, options);
  EXPECT_FALSE(clustered.Predict(Tensor::Zeros({2, 3})).ok());
}

}  // namespace
}  // namespace raven::ir
