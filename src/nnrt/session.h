#ifndef RAVEN_NNRT_SESSION_H_
#define RAVEN_NNRT_SESSION_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "nnrt/device.h"
#include "nnrt/executor.h"
#include "nnrt/graph.h"
#include "nnrt/graph_optimizer.h"

namespace raven::nnrt {

/// Options controlling session construction.
struct SessionOptions {
  /// Run the NNRT graph optimizer (constant folding, fusion, DCE) once at
  /// session-creation time, like ONNX Runtime's graph optimization level.
  bool enable_graph_optimizations = true;
  DeviceSpec device = DeviceSpec::Cpu();
};

/// An inference session: an optimized, immutable graph plus the device it
/// runs on. Mirrors ONNX Runtime's InferenceSession: construction does the
/// expensive work (deserialize + optimize) once; Run() is then called many
/// times. Thread-compatible: concurrent Run() calls are safe because
/// execution state is per-call.
class InferenceSession {
 public:
  /// Builds a session from an in-memory graph.
  static Result<std::unique_ptr<InferenceSession>> Create(
      Graph graph, const SessionOptions& options = SessionOptions());

  /// Builds a session from a serialized model (the model-store format).
  static Result<std::unique_ptr<InferenceSession>> FromBytes(
      const std::string& bytes, const SessionOptions& options = SessionOptions());

  /// Runs the graph. On the accelerator device, stats->simulated_micros
  /// follows the device cost model; on CPU it equals wall time.
  Result<TensorMap> Run(const TensorMap& inputs, RunStats* stats = nullptr) const;

  /// Convenience for single-input/single-output models.
  Result<Tensor> RunSingle(const Tensor& input, RunStats* stats = nullptr) const;

  const Graph& graph() const { return graph_; }
  const DeviceSpec& device() const { return device_; }
  const GraphOptStats& optimization_stats() const { return opt_stats_; }

  /// Serializes the (optimized) graph back to model bytes.
  std::string ToBytes() const;

 private:
  InferenceSession(Graph graph, DeviceSpec device, GraphOptStats opt_stats)
      : graph_(std::move(graph)), device_(device), opt_stats_(opt_stats) {}

  Graph graph_;
  DeviceSpec device_;
  GraphOptStats opt_stats_;
};

/// LRU cache of inference sessions keyed by model name/version. This is the
/// SQL Server-side "model and inference-session caching" that makes Raven
/// beat standalone ONNX Runtime on small requests (paper §5 observation ii):
/// repeated inference queries reuse the session instead of re-deserializing
/// and re-optimizing the model. Thread-safe.
class SessionCache {
 public:
  explicit SessionCache(std::size_t capacity = 32) : capacity_(capacity) {}

  /// Returns the cached session for `key`, or builds one from `bytes` via
  /// the provided options, inserting it (and evicting the least recently
  /// used entry if at capacity).
  Result<std::shared_ptr<InferenceSession>> GetOrCreate(
      const std::string& key, const std::string& bytes,
      const SessionOptions& options = SessionOptions());

  /// Same, but the model bytes are produced on demand — a cache hit never
  /// pays the serialization. The serving path keys sessions by the plan's
  /// precomputed graph fingerprint, so re-serializing the whole model per
  /// query just to build a key it already has would dominate small-request
  /// latency (the overhead Fig 3's session caching exists to remove).
  Result<std::shared_ptr<InferenceSession>> GetOrCreate(
      const std::string& key, const std::function<std::string()>& bytes_fn,
      const SessionOptions& options = SessionOptions());

  /// Removes a cached session (e.g. when a model is updated
  /// transactionally).
  void Invalidate(const std::string& key);

  std::size_t size() const;
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  // MRU-first list of keys plus index into it.
  std::list<std::string> lru_;
  std::unordered_map<std::string,
                     std::pair<std::shared_ptr<InferenceSession>,
                               std::list<std::string>::iterator>>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace raven::nnrt

#endif  // RAVEN_NNRT_SESSION_H_
