#!/usr/bin/env python3
"""Prometheus text-format checker for the raven_serve /metrics endpoint.

Stdlib only (CI runs it without pip). Three jobs in one tool:

  1. Syntax: every line must be a # HELP / # TYPE comment or a
     `name{labels} value` sample; sample names need a preceding # TYPE;
     histogram buckets must be cumulative-monotone with le="+Inf" equal
     to the series' _count.
  2. Presence: --require NAME fails unless a sample of NAME (or a
     histogram series NAME_bucket/_sum/_count) is present.
  3. Monotonicity: with TWO scrapes, every `counter` sample and every
     histogram _count/bucket in the second must be >= the first —
     counters never go backwards between scrapes of a live server.

Usage:
  check_metrics.py SCRAPE [SCRAPE2] [--require NAME ...]
  check_metrics.py --fetch URL OUT      # save one scrape (no curl in CI)

SCRAPE is a file path or an http:// URL (fetched with urllib).
Exit status 0 when every check passes, 1 otherwise.
"""

import re
import sys
import urllib.request

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def fail(msg):
    print("check_metrics: %s" % msg, file=sys.stderr)
    sys.exit(1)


def read_scrape(source):
    if source.startswith("http://") or source.startswith("https://"):
        with urllib.request.urlopen(source, timeout=10) as response:
            return response.read().decode("utf-8")
    with open(source, "r", encoding="utf-8") as f:
        return f.read()


def parse_value(text, where):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        fail("%s: malformed value '%s'" % (where, text))


def parse(text, source):
    """Returns (samples, types): samples maps 'name{labels}' -> float,
    types maps base metric name -> declared TYPE."""
    samples = {}
    types = {}
    helps = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        where = "%s:%d" % (source, lineno)
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                fail("%s: comment is neither # HELP nor # TYPE: '%s'"
                     % (where, line))
            if not NAME_RE.match(parts[2]):
                fail("%s: bad metric name '%s'" % (where, parts[2]))
            if parts[1] == "HELP":
                helps.add(parts[2])
            else:
                if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary",
                        "untyped"):
                    fail("%s: bad TYPE line '%s'" % (where, line))
                types[parts[2]] = parts[3]
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail("%s: malformed sample line '%s'" % (where, line))
        labels = m.group("labels")
        if labels:
            for label in re.split(r",(?=[a-zA-Z_])", labels):
                if not LABEL_RE.match(label):
                    fail("%s: malformed label '%s'" % (where, label))
        base = m.group("name")
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in types:
                base = base[: -len(suffix)]
                break
        if base not in types:
            fail("%s: sample '%s' has no preceding # TYPE"
                 % (where, m.group("name")))
        key = m.group("name") + ("{%s}" % labels if labels else "")
        if key in samples:
            fail("%s: duplicate sample '%s'" % (where, key))
        samples[key] = parse_value(m.group("value"), where)
    return samples, types


def histogram_series(samples, name):
    """All le= buckets of one histogram as [(le, count)] sorted by le."""
    buckets = []
    prefix = name + "_bucket{le=\""
    for key, value in samples.items():
        if key.startswith(prefix) and key.endswith("\"}"):
            le = parse_value(key[len(prefix):-2], key)
            buckets.append((le, value))
    return sorted(buckets)


def check_histograms(samples, types, source):
    for name, kind in types.items():
        if kind != "histogram":
            continue
        buckets = histogram_series(samples, name)
        if not buckets:
            fail("%s: histogram %s has no buckets" % (source, name))
        if buckets[-1][0] != float("inf"):
            fail("%s: histogram %s lacks an le=\"+Inf\" bucket"
                 % (source, name))
        prev = 0.0
        for le, count in buckets:
            if count < prev:
                fail("%s: histogram %s bucket le=%s (%g) below previous "
                     "(%g); buckets must be cumulative"
                     % (source, name, le, count, prev))
            prev = count
        count_key = name + "_count"
        if count_key not in samples:
            fail("%s: histogram %s lacks %s" % (source, name, count_key))
        if samples[count_key] != buckets[-1][1]:
            fail("%s: histogram %s: _count=%g != +Inf bucket=%g"
                 % (source, name, samples[count_key], buckets[-1][1]))
        if name + "_sum" not in samples:
            fail("%s: histogram %s lacks %s_sum" % (source, name, name))


def check_monotone(first, second, types, source2):
    """Counters and histogram cumulative counts never decrease between
    scrapes of one live server."""
    for key, before in first[0].items():
        base = key.split("{", 1)[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
                break
        kind = types.get(base)
        cumulative = kind == "counter" or (
            kind == "histogram" and not key.startswith(base + "_sum"))
        if not cumulative:
            continue
        after = second[0].get(key)
        if after is None:
            fail("%s: cumulative series '%s' vanished between scrapes"
                 % (source2, key))
        if after < before:
            fail("%s: cumulative series '%s' went backwards: %g -> %g"
                 % (source2, key, before, after))


def main(argv):
    if len(argv) >= 3 and argv[0] == "--fetch":
        with open(argv[2], "w", encoding="utf-8") as f:
            f.write(read_scrape(argv[1]))
        return
    sources = []
    required = []
    i = 0
    while i < len(argv):
        if argv[i] == "--require":
            i += 1
            if i == len(argv):
                fail("--require needs a metric name")
            required.append(argv[i])
        else:
            sources.append(argv[i])
        i += 1
    if not sources or len(sources) > 2:
        fail("usage: check_metrics.py SCRAPE [SCRAPE2] [--require NAME ...]")

    parsed = []
    for source in sources:
        samples, types = parse(read_scrape(source), source)
        check_histograms(samples, types, source)
        parsed.append((samples, types))

    samples, types = parsed[0]
    for name in required:
        present = name in types or any(
            key.split("{", 1)[0] == name for key in samples)
        if not present:
            fail("%s: required metric '%s' is missing" % (sources[0], name))

    if len(parsed) == 2:
        if parsed[0][1].keys() != parsed[1][1].keys():
            fail("scrapes declare different metric sets")
        check_monotone(parsed[0], parsed[1], parsed[1][1], sources[1])

    print("check_metrics: ok (%d samples, %d metrics%s)"
          % (len(samples), len(types),
             ", monotone across 2 scrapes" if len(parsed) == 2 else ""))


if __name__ == "__main__":
    main(sys.argv[1:])
