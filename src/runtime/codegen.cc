#include "runtime/codegen.h"

#include <functional>
#include <sstream>

#include "nnrt/executor.h"

namespace raven::runtime {
namespace {

using ir::IrNode;
using ir::IrOpKind;
using relational::BatchScorer;
using relational::OperatorPtr;

/// Stats destination captured BY VALUE into scorer closures. The pointed-to
/// stats/mutex live in PlanExecutor::Execute's frame, which strictly
/// outlives every partition; the RuntimeContext itself may not (the
/// parallel plan factory builds per-partition contexts on its own stack),
/// so closures must never capture it by reference.
struct StatsSink {
  ExecutionStats* stats = nullptr;
  std::mutex* mu = nullptr;
};

void AccumulateStats(const StatsSink& sink, std::int64_t rows,
                     const nnrt::RunStats* nn_stats) {
  if (sink.stats == nullptr) return;
  std::unique_lock<std::mutex> lock;
  if (sink.mu != nullptr) {
    lock = std::unique_lock<std::mutex>(*sink.mu);
  }
  sink.stats->predict_batches += 1;
  sink.stats->rows_out += rows;
  if (nn_stats != nullptr) {
    sink.stats->nn_wall_micros += nn_stats->wall_micros;
    sink.stats->nn_simulated_micros += nn_stats->simulated_micros;
  }
}

/// Scores via the interpreted classical-ML path (the baseline "framework"
/// path and the execution of non-translated pipelines).
BatchScorer MakeInterpretedScorer(std::shared_ptr<ml::ModelPipeline> pipeline,
                                  const RuntimeContext& ctx) {
  const StatsSink sink{ctx.stats, ctx.stats_mu};
  return [pipeline, sink](const Tensor& input)
             -> Result<std::vector<double>> {
    RAVEN_ASSIGN_OR_RETURN(Tensor preds, pipeline->Predict(input));
    AccumulateStats(sink, preds.dim(0), nullptr);
    std::vector<double> out(preds.data().begin(), preds.data().end());
    return out;
  };
}

BatchScorer MakeClusteredScorer(std::shared_ptr<ir::ClusteredModel> model,
                                const RuntimeContext& ctx) {
  const StatsSink sink{ctx.stats, ctx.stats_mu};
  return [model, sink](const Tensor& input) -> Result<std::vector<double>> {
    RAVEN_ASSIGN_OR_RETURN(Tensor preds, model->Predict(input));
    AccumulateStats(sink, preds.dim(0), nullptr);
    std::vector<double> out(preds.data().begin(), preds.data().end());
    return out;
  };
}

/// In-process NNRT scoring through the session cache (model + session
/// caching is what wins the small-batch regime in Fig 3).
Result<BatchScorer> MakeNnScorer(const IrNode& node,
                                 const RuntimeContext& ctx) {
  BinaryWriter writer;
  node.nn_graph->Serialize(&writer);
  const std::string bytes = writer.Release();
  std::string key = node.model_name;
  auto versioned = ctx.catalog->ModelCacheKey(node.model_name);
  if (versioned.ok()) key = versioned.value();
  key += "#" + std::to_string(std::hash<std::string>{}(bytes));
  nnrt::SessionOptions session_options;
  session_options.device = ctx.options.device;
  RAVEN_ASSIGN_OR_RETURN(
      auto session,
      ctx.session_cache->GetOrCreate(key, bytes, session_options));
  const StatsSink sink{ctx.stats, ctx.stats_mu};
  return BatchScorer([session, sink](const Tensor& input)
                         -> Result<std::vector<double>> {
    nnrt::RunStats stats;
    RAVEN_ASSIGN_OR_RETURN(Tensor preds, session->RunSingle(input, &stats));
    AccumulateStats(sink, preds.dim(0), &stats);
    std::vector<double> out(preds.data().begin(), preds.data().end());
    return out;
  });
}

/// Out-of-process scoring: one worker process per query execution (the
/// sp_execute_external_script lifecycle). The WorkerClient is shared by the
/// scorer's closures and serialized with a mutex.
Result<BatchScorer> MakeExternalScorer(WorkerCommand kind,
                                       std::string model_bytes,
                                       const RuntimeContext& ctx) {
  ExternalRuntimeOptions ext = ctx.options.external;
  if (ctx.options.mode == ExecutionMode::kContainer) {
    ext.boot_millis += ctx.options.container_extra_boot_millis;
  }
  auto client = std::make_shared<WorkerClient>();
  RAVEN_RETURN_IF_ERROR(client->Start(ext));
  auto mu = std::make_shared<std::mutex>();
  const StatsSink sink{ctx.stats, ctx.stats_mu};
  return BatchScorer([client, mu, kind, model_bytes = std::move(model_bytes),
                      sink](const Tensor& input)
                         -> Result<std::vector<double>> {
    std::lock_guard<std::mutex> lock(*mu);
    RAVEN_ASSIGN_OR_RETURN(Tensor preds,
                           client->Score(kind, model_bytes, input));
    AccumulateStats(sink, preds.dim(0), nullptr);
    std::vector<double> out(preds.data().begin(), preds.data().end());
    return out;
  });
}

Result<BatchScorer> ScorerFor(const IrNode& node, const RuntimeContext& ctx) {
  switch (node.kind) {
    case IrOpKind::kModelPipeline: {
      if (ctx.options.mode == ExecutionMode::kInProcess) {
        return MakeInterpretedScorer(node.pipeline, ctx);
      }
      return MakeExternalScorer(WorkerCommand::kScorePipeline,
                                node.pipeline->ToBytes(), ctx);
    }
    case IrOpKind::kClusteredPredict:
      // Clustering artifacts live in the optimizer process; always local.
      return MakeClusteredScorer(node.clustered, ctx);
    case IrOpKind::kNnGraph: {
      if (ctx.options.mode == ExecutionMode::kInProcess) {
        return MakeNnScorer(node, ctx);
      }
      BinaryWriter writer;
      node.nn_graph->Serialize(&writer);
      return MakeExternalScorer(WorkerCommand::kScoreGraph, writer.Release(),
                                ctx);
    }
    case IrOpKind::kOpaquePipeline:
      // Unanalyzable pipelines never run in-process: ship them to the
      // external runtime (container mode adds its boot cost).
      return MakeExternalScorer(WorkerCommand::kScorePipeline,
                                node.opaque_bytes, ctx);
    default:
      return Status::Internal("ScorerFor on a non-model node");
  }
}

}  // namespace

const char* ExecutionModeToString(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kInProcess:
      return "in-process";
    case ExecutionMode::kOutOfProcess:
      return "out-of-process";
    case ExecutionMode::kContainer:
      return "container";
  }
  return "?";
}

Result<OperatorPtr> BuildPhysicalPlan(const IrNode& node,
                                      const RuntimeContext& ctx) {
  switch (node.kind) {
    case IrOpKind::kTableScan: {
      RAVEN_ASSIGN_OR_RETURN(const relational::Table* table,
                             ctx.catalog->GetTable(node.table_name));
      if (node.table_name == ctx.partition_table) {
        return OperatorPtr(std::make_unique<relational::ScanOperator>(
            table, ctx.partition_begin, ctx.partition_end));
      }
      return OperatorPtr(std::make_unique<relational::ScanOperator>(table));
    }
    case IrOpKind::kFilter: {
      RAVEN_ASSIGN_OR_RETURN(auto child,
                             BuildPhysicalPlan(*node.children[0], ctx));
      return OperatorPtr(std::make_unique<relational::FilterOperator>(
          std::move(child), node.predicate->Clone()));
    }
    case IrOpKind::kProject: {
      RAVEN_ASSIGN_OR_RETURN(auto child,
                             BuildPhysicalPlan(*node.children[0], ctx));
      std::vector<relational::ExprPtr> exprs;
      exprs.reserve(node.proj_exprs.size());
      for (const auto& e : node.proj_exprs) exprs.push_back(e->Clone());
      return OperatorPtr(std::make_unique<relational::ProjectOperator>(
          std::move(child), std::move(exprs), node.proj_names));
    }
    case IrOpKind::kJoin: {
      RAVEN_ASSIGN_OR_RETURN(auto left,
                             BuildPhysicalPlan(*node.children[0], ctx));
      RAVEN_ASSIGN_OR_RETURN(auto right,
                             BuildPhysicalPlan(*node.children[1], ctx));
      return OperatorPtr(std::make_unique<relational::HashJoinOperator>(
          std::move(left), std::move(right), node.left_key, node.right_key));
    }
    case IrOpKind::kUnionAll: {
      std::vector<OperatorPtr> children;
      for (const auto& child : node.children) {
        RAVEN_ASSIGN_OR_RETURN(auto op, BuildPhysicalPlan(*child, ctx));
        children.push_back(std::move(op));
      }
      return OperatorPtr(std::make_unique<relational::UnionAllOperator>(
          std::move(children)));
    }
    case IrOpKind::kLimit: {
      RAVEN_ASSIGN_OR_RETURN(auto child,
                             BuildPhysicalPlan(*node.children[0], ctx));
      return OperatorPtr(std::make_unique<relational::LimitOperator>(
          std::move(child), node.limit));
    }
    case IrOpKind::kModelPipeline:
    case IrOpKind::kClusteredPredict:
    case IrOpKind::kNnGraph:
    case IrOpKind::kOpaquePipeline: {
      RAVEN_ASSIGN_OR_RETURN(auto child,
                             BuildPhysicalPlan(*node.children[0], ctx));
      RAVEN_ASSIGN_OR_RETURN(auto scorer, ScorerFor(node, ctx));
      return OperatorPtr(std::make_unique<relational::PredictOperator>(
          std::move(child), node.model_input_columns, node.output_column,
          std::move(scorer)));
    }
  }
  return Status::Internal("unreachable IR kind in BuildPhysicalPlan");
}

namespace {

void GenerateSqlNode(const IrNode& node, std::ostringstream* os) {
  switch (node.kind) {
    case IrOpKind::kTableScan:
      *os << node.table_name;
      return;
    case IrOpKind::kFilter:
      *os << "(SELECT * FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << " WHERE " << node.predicate->ToString() << ")";
      return;
    case IrOpKind::kProject: {
      *os << "(SELECT ";
      for (std::size_t i = 0; i < node.proj_names.size(); ++i) {
        if (i > 0) *os << ", ";
        const std::string expr = node.proj_exprs[i]->ToString();
        if (expr == node.proj_names[i]) {
          *os << expr;
        } else {
          *os << expr << " AS " << node.proj_names[i];
        }
      }
      *os << " FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << ")";
      return;
    }
    case IrOpKind::kJoin:
      *os << "(SELECT * FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << " JOIN ";
      GenerateSqlNode(*node.children[1], os);
      *os << " ON " << node.left_key << " = " << node.right_key << ")";
      return;
    case IrOpKind::kUnionAll: {
      *os << "(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) *os << " UNION ALL ";
        *os << "SELECT * FROM ";
        GenerateSqlNode(*node.children[i], os);
      }
      *os << ")";
      return;
    }
    case IrOpKind::kLimit:
      *os << "(SELECT * FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << " LIMIT " << node.limit << ")";
      return;
    case IrOpKind::kModelPipeline:
    case IrOpKind::kClusteredPredict:
    case IrOpKind::kNnGraph:
    case IrOpKind::kOpaquePipeline: {
      const char* runtime = node.kind == IrOpKind::kNnGraph
                                ? "NNRT"
                                : (node.kind == IrOpKind::kOpaquePipeline
                                       ? "EXTERNAL"
                                       : "CLASSICAL");
      *os << "(SELECT *, PREDICT(MODEL='" << node.model_name
          << "', RUNTIME='" << runtime << "') AS " << node.output_column
          << " FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << ")";
      return;
    }
  }
}

}  // namespace

std::string GenerateSql(const IrNode& node) {
  std::ostringstream os;
  os << "SELECT * FROM ";
  GenerateSqlNode(node, &os);
  return os.str();
}

}  // namespace raven::runtime
