#ifndef RAVEN_RELATIONAL_BLOCK_TABLE_H_
#define RAVEN_RELATIONAL_BLOCK_TABLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "relational/chunk.h"
#include "relational/expression.h"
#include "relational/operators.h"
#include "relational/statistics.h"
#include "relational/table.h"

namespace raven::relational {

/// A table whose rows live in fixed-size blocks that are decoded on demand
/// instead of being materialized whole — the abstraction the executor sees
/// for on-disk (.rvc) tables. The relational layer depends only on this
/// interface; the concrete mmap-backed reader lives in src/storage, which
/// depends on relational (never the reverse).
///
/// Contract: every block holds exactly `block_rows()` rows except the last
/// (which holds the remainder), so block k covers rows
/// [k*block_rows(), k*block_rows() + BlockRowCount(k)). This alignment is
/// what lets the morsel executor use a block as the morsel unit and keep
/// parallel scans byte-identical to in-memory execution.
///
/// Implementations must be safe for concurrent ReadBlock/ReadRows calls
/// from multiple workers (the mmap reader is naturally so).
class BlockTable {
 public:
  virtual ~BlockTable() = default;

  virtual std::vector<std::string> ColumnNames() const = 0;
  virtual std::int64_t num_rows() const = 0;
  virtual std::int64_t num_columns() const = 0;
  virtual std::int64_t num_blocks() const = 0;
  /// Rows per block (every block but the last).
  virtual std::int64_t block_rows() const = 0;
  virtual std::int64_t BlockRowCount(std::int64_t block) const = 0;

  /// Zone map for one column of one block, or nullptr when unknown (an
  /// unknown zone map can never justify skipping the block).
  virtual const ColumnStats* BlockStats(std::int64_t block,
                                        const std::string& column) const = 0;

  /// Dictionary for a categorical column, or nullptr for numeric columns.
  /// Needed so SQL string literals resolve against on-disk tables exactly
  /// like in-memory ones.
  virtual const std::vector<std::string>* Dictionary(
      const std::string& column) const = 0;

  /// Decodes one block into `out` (names + cols set, sel cleared). Order
  /// keys are the caller's business.
  virtual Status ReadBlock(std::int64_t block, DataChunk* out) const = 0;

  /// Materializes rows [begin, end) as an in-memory table, dictionaries
  /// included — used by the distributed executor to ship scan partitions
  /// and by tools that need a plain Table.
  virtual Result<Table> ReadRows(std::int64_t begin,
                                 std::int64_t end) const = 0;

  /// One-line human-readable summary (file, blocks, encodings) for EXPLAIN.
  virtual std::string Describe() const = 0;
};

/// True when `block`'s zone map cannot rule out rows matching `pred`.
/// Deliberately conservative: only range/equality shapes consult min/max, a
/// block containing any non-finite value is NEVER skipped (NaN fails every
/// range comparison, so finite min/max says nothing about NaN rows under
/// `<>` or downstream re-evaluation), and an unknown column or stats entry
/// always matches. Skipping is an optimization only — the filter above the
/// scan still evaluates — so the single correctness obligation is to never
/// skip a block holding a matching row.
bool BlockMayMatch(const ColumnStats& stats, const SimplePredicate& pred);
bool BlockMayMatch(const BlockTable& table, std::int64_t block,
                   const std::vector<SimplePredicate>& preds);

/// Table-level stats for the optimizer's data-property pruning, merged from
/// the per-block zone maps (no block reads). Conservative merge: min/max
/// span all blocks, non-finite counts add up, `constant` survives only when
/// every block is constant at the same finite value, and distinct counts
/// degrade to inexact across blocks.
std::map<std::string, ColumnStats> MergedStats(const BlockTable& table);

/// Scan over a BlockTable: the on-disk twin of ScanOperator, emitting
/// exactly one chunk per block so the (order_source, order_morsel) merge
/// key is unique per chunk and parallel merges reproduce sequential row
/// order byte-identically. Pushed-down conjuncts are tested against each
/// block's zone map first; blocks that cannot match are skipped without
/// being decoded (counted in `blocks_skipped`).
class DiskScanOperator final : public PhysicalOperator {
 public:
  /// Scans rows [begin, end) (end < 0 means all rows).
  explicit DiskScanOperator(std::shared_ptr<const BlockTable> table,
                            std::int64_t begin = 0, std::int64_t end = -1);

  /// Morsel-driven scan. The queue must be block-aligned:
  /// morsel_rows == table->block_rows() and total == table->num_rows(), so
  /// morsel index == block index.
  DiskScanOperator(std::shared_ptr<const BlockTable> table,
                   std::shared_ptr<MorselQueue> morsels,
                   std::int64_t order_source);

  /// Zone-map inputs, set before Open. Counters may be null; when shared
  /// across workers they are atomics so each block is counted once.
  void SetZonePredicates(std::vector<SimplePredicate> preds) {
    zone_predicates_ = std::move(preds);
  }
  void SetBlockCounters(std::atomic<std::int64_t>* scanned,
                        std::atomic<std::int64_t>* skipped) {
    blocks_scanned_ = scanned;
    blocks_skipped_ = skipped;
  }

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "DiskScan"; }
  Result<std::vector<std::string>> OutputColumns() const override {
    return table_->ColumnNames();
  }

 private:
  /// Claims the next block in range mode, or -1 when exhausted.
  std::int64_t NextRangeBlock();
  Result<bool> EmitBlock(std::int64_t block, DataChunk* out);

  std::shared_ptr<const BlockTable> table_;
  std::int64_t begin_;
  std::int64_t end_;
  std::int64_t next_block_ = 0;
  std::shared_ptr<MorselQueue> morsels_;  // nullptr in range mode
  std::int64_t order_source_ = 0;
  std::vector<SimplePredicate> zone_predicates_;
  std::atomic<std::int64_t>* blocks_scanned_ = nullptr;
  std::atomic<std::int64_t>* blocks_skipped_ = nullptr;
};

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_BLOCK_TABLE_H_
