#include "common/logging.h"

#include <sys/time.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <string>

namespace raven {
namespace {

/// Reads the RAVEN_LOG environment override once, on first use. Accepts
/// level names case-insensitively ("debug", "INFO", "warning"/"warn",
/// "error"); anything else leaves the compiled-in default (kWarning, so
/// tests and benchmarks stay quiet). Explicit SetLogLevel calls still win
/// afterwards — the env var only seeds the initial value.
int InitialLevel() {
  const char* env = std::getenv("RAVEN_LOG");
  if (env != nullptr) {
    std::string v;
    for (const char* p = env; *p; ++p) {
      v += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
    }
    if (v == "debug") return static_cast<int>(LogLevel::kDebug);
    if (v == "info") return static_cast<int>(LogLevel::kInfo);
    if (v == "warning" || v == "warn")
      return static_cast<int>(LogLevel::kWarning);
    if (v == "error") return static_cast<int>(LogLevel::kError);
  }
  return static_cast<int>(LogLevel::kWarning);
}

std::atomic<int>& MinLevel() {
  static std::atomic<int> level{InitialLevel()};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Serializes emission so concurrent sessions' lines never interleave
/// mid-line (the 8-client soak logs from every dispatch thread). The
/// message body is still formatted outside the lock.
std::mutex& EmitMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  MinLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(MinLevel().load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               MinLevel().load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    // Wall-clock timestamp with microseconds, e.g. 2026-08-08 12:34:56.789012.
    struct timeval tv;
    ::gettimeofday(&tv, nullptr);
    struct tm tm_buf;
    ::localtime_r(&tv.tv_sec, &tm_buf);
    char ts[40];
    std::size_t n = std::strftime(ts, sizeof(ts), "%Y-%m-%d %H:%M:%S", &tm_buf);
    std::snprintf(ts + n, sizeof(ts) - n, ".%06ld",
                  static_cast<long>(tv.tv_usec));
    stream_ << "[" << ts << " " << LevelName(level_) << " " << base << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    const std::string line = stream_.str();
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::fprintf(stderr, "%s\n", line.c_str());
    std::fflush(stderr);
  }
}

}  // namespace internal
}  // namespace raven
