// Property tests: every cross optimization must preserve inference-query
// semantics. We sweep randomized datasets, model families, and predicates
// (TEST_P), executing each query with the optimizer fully on and fully off
// and requiring identical results.

#include <gtest/gtest.h>

#include <algorithm>

#include "data/flight.h"
#include "data/hospital.h"
#include "raven/raven.h"

namespace raven {
namespace {

struct SemanticsCase {
  std::uint64_t seed;
  const char* model;       // "tree", "forest", "logreg", "mlp"
  const char* predicate;   // SQL WHERE suffix or ""
  bool split;              // enable model/query splitting
};

std::string CaseName(const ::testing::TestParamInfo<SemanticsCase>& info) {
  std::string name = info.param.model;
  name += "_seed" + std::to_string(info.param.seed);
  name += info.param.predicate[0] == '\0' ? "_nofilter" : "_filter";
  if (info.param.split) name += "_split";
  return name;
}

class OptimizerSemanticsTest
    : public ::testing::TestWithParam<SemanticsCase> {};

/// Builds a context over hospital or flight data with the chosen model.
std::unique_ptr<RavenContext> MakeContext(const SemanticsCase& param,
                                          bool enable_optimizations) {
  RavenOptions options;
  if (!enable_optimizations) {
    options.optimizer.predicate_pushdown = false;
    options.optimizer.predicate_model_pruning = false;
    options.optimizer.model_projection_pushdown = false;
    options.optimizer.projection_pushdown = false;
    options.optimizer.join_elimination = false;
    options.optimizer.model_inlining = false;
    options.optimizer.nn_translation = false;
    options.optimizer.model_query_splitting = false;
  } else {
    options.optimizer.model_query_splitting = param.split;
  }
  auto ctx = std::make_unique<RavenContext>(options);
  const std::string model = param.model;
  if (model == "logreg") {
    auto data = data::MakeFlightDataset(3000, param.seed);
    EXPECT_TRUE(ctx->RegisterTable("flights", data.flights).ok());
    auto pipeline = *data::TrainFlightLogreg(data, 0.01);
    EXPECT_TRUE(
        ctx->InsertModel("m", data::FlightLogregScript(), pipeline).ok());
  } else {
    auto data = data::MakeHospitalDataset(3000, param.seed);
    EXPECT_TRUE(ctx->RegisterTable("patient_info", data.patient_info).ok());
    EXPECT_TRUE(ctx->RegisterTable("blood_tests", data.blood_tests).ok());
    EXPECT_TRUE(
        ctx->RegisterTable("prenatal_tests", data.prenatal_tests).ok());
    if (model == "tree") {
      EXPECT_TRUE(ctx->InsertModel("m", data::HospitalTreeScript(),
                                   *data::TrainHospitalTree(data, 7)).ok());
    } else if (model == "forest") {
      EXPECT_TRUE(ctx->InsertModel("m", data::HospitalForestScript(),
                                   *data::TrainHospitalForest(data, 4, 5))
                      .ok());
    } else {
      EXPECT_TRUE(ctx->InsertModel("m", data::HospitalMlpScript(),
                                   *data::TrainHospitalMlp(data)).ok());
    }
  }
  return ctx;
}

std::string QueryFor(const SemanticsCase& param) {
  std::string sql;
  if (std::string(param.model) == "logreg") {
    sql =
        "SELECT id, p FROM PREDICT(MODEL='m', DATA=flights) WITH(p float)";
  } else {
    sql =
        "WITH data AS (SELECT * FROM patient_info "
        "  JOIN blood_tests ON id = id "
        "  JOIN prenatal_tests ON id = id) "
        "SELECT id, p FROM PREDICT(MODEL='m', DATA=data) WITH(p float)";
  }
  if (param.predicate[0] != '\0') {
    sql += " WHERE ";
    sql += param.predicate;
  }
  return sql;
}

TEST_P(OptimizerSemanticsTest, OptimizedEqualsUnoptimized) {
  const SemanticsCase param = GetParam();
  auto optimized_ctx = MakeContext(param, true);
  auto reference_ctx = MakeContext(param, false);
  const std::string sql = QueryFor(param);

  auto optimized = optimized_ctx->Query(sql);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  auto reference = reference_ctx->Query(sql);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  ASSERT_EQ(optimized->table.num_rows(), reference->table.num_rows());
  // Splitting reorders rows; compare sorted (id, p) pairs.
  auto ids_a = (*optimized->table.GetColumn("id"))->data;
  auto ids_b = (*reference->table.GetColumn("id"))->data;
  auto p_a = (*optimized->table.GetColumn("p"))->data;
  auto p_b = (*reference->table.GetColumn("p"))->data;
  std::vector<std::pair<double, double>> a(ids_a.size());
  std::vector<std::pair<double, double>> b(ids_b.size());
  for (std::size_t i = 0; i < ids_a.size(); ++i) {
    a[i] = {ids_a[i], p_a[i]};
    b[i] = {ids_b[i], p_b[i]};
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "row " << i;
    // Inlining computes in double, NNRT in float32: allow tiny drift.
    EXPECT_NEAR(a[i].second, b[i].second, 2e-3) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerSemanticsTest,
    ::testing::Values(
        SemanticsCase{101, "tree", "", false},
        SemanticsCase{102, "tree", "pregnant = 1", false},
        SemanticsCase{103, "tree", "pregnant = 1 AND age > 40", false},
        SemanticsCase{104, "tree", "pregnant = 1 AND p > 6", false},
        SemanticsCase{105, "tree", "bp > 130", true},
        SemanticsCase{106, "forest", "", false},
        SemanticsCase{107, "forest", "pregnant = 1", false},
        SemanticsCase{108, "forest", "age <= 50 AND p > 3", false},
        SemanticsCase{109, "mlp", "", false},
        SemanticsCase{110, "mlp", "pregnant = 1", false},
        SemanticsCase{111, "logreg", "", false},
        SemanticsCase{112, "logreg", "dest = 'AP5'", false},
        SemanticsCase{113, "logreg", "origin = 'AP3' AND p > 0.4", false},
        SemanticsCase{114, "tree", "gender = 'F'", false},
        SemanticsCase{115, "tree", "age > 35 AND age <= 60", true}),
    CaseName);

/// Clustering property: a clustered artifact never changes results.
class ClusteringSemanticsTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusteringSemanticsTest, ClusteredEqualsOriginal) {
  const int k = GetParam();
  RavenOptions options;
  auto ctx = std::make_unique<RavenContext>(options);
  auto data = data::MakeFlightDataset(2000, 300 + static_cast<std::uint64_t>(k));
  ASSERT_TRUE(ctx->RegisterTable("flights", data.flights).ok());
  auto pipeline = *data::TrainFlightLogreg(data, 0.0);
  ASSERT_TRUE(ctx->InsertModel("m", data::FlightLogregScript(), pipeline).ok());

  const std::string sql =
      "SELECT id, p FROM PREDICT(MODEL='m', DATA=flights) WITH(p float)";
  auto reference = ctx->Query(sql);
  ASSERT_TRUE(reference.ok());

  optimizer::ClusteringOptions cluster_options;
  cluster_options.k = k;
  ASSERT_TRUE(ctx->BuildClusteredModel("m", "flights", cluster_options).ok());
  auto clustered = ctx->Query(sql);
  ASSERT_TRUE(clustered.ok());
  // The reference path runs NN-translated (float32), clustering runs the
  // interpreted pipeline (double): allow rounding drift only.
  const auto& e = (*reference->table.GetColumn("p"))->data;
  const auto& a = (*clustered->table.GetColumn("p"))->data;
  ASSERT_EQ(e.size(), a.size());
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_NEAR(e[i], a[i], 2e-3) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, ClusteringSemanticsTest,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace raven
