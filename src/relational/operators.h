#ifndef RAVEN_RELATIONAL_OPERATORS_H_
#define RAVEN_RELATIONAL_OPERATORS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "relational/chunk.h"
#include "relational/expression.h"
#include "relational/kernel.h"
#include "relational/table.h"
#include "tensor/tensor.h"

namespace raven::relational {

/// Pull-based (volcano-style) physical operator producing columnar chunks.
///
/// Parallel execution model (morsel-driven): the executor instantiates one
/// operator tree per worker; trees are thread-confined but share sources
/// (MorselQueue per scan), join build-side state (JoinBuildState) and
/// aggregate partial state (SharedAggregateState). An operator instance is
/// therefore never called from two threads, while the shared state objects
/// are internally synchronized.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  /// Prepares state; called once before Next. Expression-bearing operators
  /// compile their Expr trees into KernelPrograms here, so unknown or
  /// ambiguous column references fail at Open time (named, with the
  /// operator) instead of surfacing mid-scan from per-chunk lookups.
  virtual Status Open() { return Status::OK(); }
  /// Produces the next chunk; returns false at end of stream.
  virtual Result<bool> Next(DataChunk* out) = 0;
  virtual std::string Name() const = 0;
  /// The positional column schema of the chunks this operator emits. Valid
  /// after Open() (scans know it earlier); parents call it from their own
  /// Open() to compile kernels and resolve ordinals once per query.
  virtual Result<std::vector<std::string>> OutputColumns() const {
    return Status::Internal("OutputColumns not implemented for " + Name());
  }
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

/// Scan over an in-memory table: either a fixed row range (sequential and
/// legacy range-partitioned modes) or morsel-driven, pulling kChunkSize-row
/// morsels from a MorselQueue shared with sibling workers.
class ScanOperator final : public PhysicalOperator {
 public:
  /// Scans rows [begin, end) of `table` (end < 0 means all rows). The table
  /// must outlive the operator.
  explicit ScanOperator(const Table* table, std::int64_t begin = 0,
                        std::int64_t end = -1);

  /// Morsel-driven scan: each Next() claims the next morsel from `morsels`
  /// (shared across workers) and emits it as one chunk tagged with
  /// (`order_source`, morsel index) for deterministic merging.
  ScanOperator(const Table* table, std::shared_ptr<MorselQueue> morsels,
               std::int64_t order_source);

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Scan"; }
  Result<std::vector<std::string>> OutputColumns() const override;

 private:
  void EmitRows(std::int64_t begin, std::int64_t n, DataChunk* out) const;

  const Table* table_;
  std::int64_t begin_;
  std::int64_t end_;
  std::int64_t cursor_ = 0;
  std::shared_ptr<MorselQueue> morsels_;  // nullptr in range mode
  std::int64_t order_source_ = 0;
};

/// Filters rows by a boolean expression. The predicate is compiled to a
/// KernelProgram at Open; Next refines the chunk's selection vector in
/// place — surviving rows are marked, not copied — and fully-filtered
/// chunks are skipped (a produced chunk always has >= 1 selected row).
class FilterOperator final : public PhysicalOperator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Filter"; }
  Result<std::vector<std::string>> OutputColumns() const override {
    return child_->OutputColumns();
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  KernelProgram program_;  // compiled at Open
};

/// Computes named expressions per row (projection). Expressions compile to
/// KernelPrograms at Open; results are gathered through the child chunk's
/// selection vector, so projection doubles as the compaction point after a
/// filter.
class ProjectOperator final : public PhysicalOperator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                  std::vector<std::string> names)
      : child_(std::move(child)), exprs_(std::move(exprs)),
        names_(std::move(names)) {}

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Project"; }
  Result<std::vector<std::string>> OutputColumns() const override {
    return names_;
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
  std::vector<KernelProgram> programs_;  // compiled at Open
  DataChunk scratch_;                    // child chunk, reused per Next
};

/// Shared build side of a morsel-parallel hash join. Workers drain the
/// build pipeline concurrently, appending chunks to per-worker buffers
/// (lock-free); FinalizeBuild then orders the chunks by their morsel
/// provenance — restoring the exact row order a sequential build would have
/// produced, independent of which worker claimed which morsel — and
/// populates a hash table striped over `kStripes` independently-locked
/// partitions so insertion parallelizes without a global lock. Row-id lists
/// are sorted ascending afterwards, so duplicate-key probe matches come out
/// in sequential build order too. After FinalizeBuild the structure is
/// immutable and probed lock-free from any thread.
class JoinBuildState {
 public:
  JoinBuildState(std::string right_key, std::int64_t num_workers);

  /// Appends a build-side chunk on behalf of `worker` (0-based, < the
  /// num_workers passed at construction); pass by value so callers can
  /// std::move the drained chunk and skip a deep copy. Thread-safe across
  /// distinct workers; a single worker must append serially.
  Status Append(std::int64_t worker, DataChunk chunk);

  /// Orders the buffered chunks, concatenates them (releasing each chunk as
  /// it is copied, so peak memory stays ~one chunk above the build size),
  /// and builds the striped hash table on the global pool. Must be called
  /// exactly once, after all Append calls completed.
  Status FinalizeBuild();

  // Probe API; valid only after FinalizeBuild.
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<std::vector<double>>& cols() const { return cols_; }
  /// Row ids matching `key`, or nullptr when the key misses.
  const std::vector<std::int64_t>* Lookup(double key) const;
  std::int64_t num_rows() const;
  bool finalized() const { return finalized_; }
  const std::string& right_key() const { return right_key_; }

 private:
  static constexpr std::size_t kStripes = 64;
  struct Stripe {
    std::mutex mu;
    std::unordered_map<double, std::vector<std::int64_t>> map;
  };
  static std::size_t StripeOf(double key) {
    return std::hash<double>{}(key) % kStripes;
  }

  std::string right_key_;
  std::vector<std::vector<DataChunk>> buffers_;  // per-worker, morsel-tagged
  std::vector<std::string> names_;
  std::vector<std::vector<double>> cols_;
  std::array<Stripe, kStripes> stripes_;
  bool finalized_ = false;
};

/// In-memory hash join (inner, single equi-key). Two modes:
///  - owning: the right child is drained and hashed at Open (sequential
///    execution);
///  - probe-only: the build side was produced by a parallel build pipeline
///    into a shared, already-finalized JoinBuildState; this operator only
///    probes it with its own left child.
class HashJoinOperator final : public PhysicalOperator {
 public:
  HashJoinOperator(OperatorPtr left, OperatorPtr right, std::string left_key,
                   std::string right_key);

  /// Probe-only mode over a finalized shared build.
  HashJoinOperator(OperatorPtr left, std::string left_key,
                   std::shared_ptr<JoinBuildState> build);

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "HashJoin"; }
  Result<std::vector<std::string>> OutputColumns() const override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;  // nullptr in probe-only mode
  std::string left_key_;
  std::shared_ptr<JoinBuildState> build_;
  // Resolved once at Open (after the build side is finalized):
  std::int64_t left_key_idx_ = -1;
  std::vector<std::size_t> build_emit_cols_;  // columns not shadowing left
  std::vector<std::string> output_columns_;
};

/// Concatenation of multiple children with identical schemas.
class UnionAllOperator final : public PhysicalOperator {
 public:
  explicit UnionAllOperator(std::vector<OperatorPtr> children)
      : children_(std::move(children)) {}

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "UnionAll"; }
  Result<std::vector<std::string>> OutputColumns() const override {
    if (children_.empty()) return Status::Internal("UNION ALL of nothing");
    return children_.front()->OutputColumns();
  }

 private:
  std::vector<OperatorPtr> children_;
  std::size_t current_ = 0;
};

/// Emits at most `limit` rows.
class LimitOperator final : public PhysicalOperator {
 public:
  LimitOperator(OperatorPtr child, std::int64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Limit"; }
  Result<std::vector<std::string>> OutputColumns() const override {
    return child_->OutputColumns();
  }

 private:
  OperatorPtr child_;
  std::int64_t limit_;
  std::int64_t emitted_ = 0;
};

/// Batch scoring callback: maps a [n, k] feature tensor to n predictions.
/// The runtime layer binds this to an in-process NNRT session, an
/// interpreted ML model, an out-of-process worker, or a container client.
/// In parallel execution every worker scores through the same underlying
/// session (cached in nnrt::SessionCache), so scorers must be thread-safe.
/// Cross-query micro-batching also lives entirely inside the bound
/// callback (runtime's MakeNnScorer routes through the server's shared
/// PredictBatcher when the session's batch window is on): this operator —
/// and FusedOperator's kPredict stage — submit one chunk and get its
/// scores back, never aware whether rows from other in-flight queries
/// shared the physical NNRT call.
using BatchScorer =
    std::function<Result<std::vector<double>>(const Tensor& input)>;

/// The PREDICT physical operator (paper §5): evaluates a model over the
/// child's rows, appending the prediction as a new column. Inference is
/// batched per chunk — i.e. per morsel under parallel execution — so model
/// sessions amortize across whole morsels instead of single rows.
/// Pass-through of the child's columns preserves downstream predicate
/// access.
class PredictOperator final : public PhysicalOperator {
 public:
  PredictOperator(OperatorPtr child, std::vector<std::string> input_columns,
                  std::string output_name, BatchScorer scorer)
      : child_(std::move(child)), input_columns_(std::move(input_columns)),
        output_name_(std::move(output_name)), scorer_(std::move(scorer)) {}

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Predict"; }
  Result<std::vector<std::string>> OutputColumns() const override;

 private:
  OperatorPtr child_;
  std::vector<std::string> input_columns_;
  std::string output_name_;
  BatchScorer scorer_;
  std::vector<std::int64_t> input_idx_;  // ordinals resolved at Open
};

/// One stage of a FusedOperator: a filter predicate, a projection, or a
/// PREDICT input-assembly + scoring step.
struct FusedStage {
  enum class Kind { kFilter, kProject, kPredict };
  Kind kind = Kind::kFilter;
  // kFilter
  ExprPtr predicate;
  // kProject
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  // kPredict
  std::vector<std::string> input_columns;
  std::string output_name;
  BatchScorer scorer;
};

/// Executes a filter -> project -> PREDICT-input-assembly chain as a single
/// pass per chunk: filters refine the selection vector (no copy), the first
/// projection gathers the surviving rows once, and PREDICT assembles its
/// feature tensor straight through the selection — so a chunk crosses the
/// fused chain touching each value once instead of once per operator. The
/// runtime's codegen collapses adjacent fusable plan nodes into one of
/// these; EXPLAIN surfaces the chain as a fusion row.
class FusedOperator final : public PhysicalOperator {
 public:
  /// `stages` in execution order; `label` is the display name, e.g.
  /// "Fused[Filter+Project]".
  FusedOperator(OperatorPtr child, std::vector<FusedStage> stages,
                std::string label)
      : child_(std::move(child)), stages_(std::move(stages)),
        label_(std::move(label)) {}

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return label_; }
  Result<std::vector<std::string>> OutputColumns() const override {
    return output_columns_;
  }

 private:
  /// Per-stage compiled state (parallel to stages_).
  struct CompiledStage {
    KernelProgram predicate;                // kFilter
    std::vector<KernelProgram> exprs;       // kProject
    std::vector<std::int64_t> input_idx_;   // kPredict
  };

  OperatorPtr child_;
  std::vector<FusedStage> stages_;
  std::string label_;
  std::vector<CompiledStage> compiled_;
  std::vector<std::string> output_columns_;  // schema after the last stage
  DataChunk work_;  // in-flight chunk, reused across Next calls
};

/// Scalar aggregates over the entire input (one output row).
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

struct AggregateSpec {
  AggKind kind = AggKind::kCount;
  std::string column;  // ignored for kCount
  std::string output_name;
};

/// One aggregate's running state; mergeable across workers. SUM/AVG run on
/// an ExactFloatSum expansion, so the finalized value is the correctly
/// rounded exact sum — identical for every accumulation and merge order,
/// which is what keeps float aggregates byte-identical across dop and
/// distributed fragmentation (MIN/MAX/COUNT are order-independent by
/// construction, with NaN-propagating MIN/MAX).
struct AggPartial {
  ExactFloatSum sum;
  double min = 0.0;
  double max = 0.0;
  std::int64_t count = 0;

  void AccumulateValue(double v);
  void MergeFrom(const AggPartial& other);
};

/// Merge point for thread-local aggregate partials: every worker's
/// AggregateOperator accumulates locally (no synchronization on the hot
/// path) and deposits its partials once at end-of-input, keyed by worker
/// id; FinalChunk folds the deposits in ascending worker order — a fixed
/// partition order, independent of worker arrival — and renders the single
/// global output row. (With exact float sums the fold order no longer
/// affects SUM/AVG bits, but the fixed order keeps the determinism argument
/// local and covers every aggregate kind.) Thread-safe.
class SharedAggregateState {
 public:
  explicit SharedAggregateState(std::vector<AggregateSpec> aggs);

  const std::vector<AggregateSpec>& aggs() const { return aggs_; }
  /// Deposits `worker`'s thread-local partials (merging if the worker
  /// deposits more than once).
  void Merge(std::int64_t worker, const std::vector<AggPartial>& partials);
  DataChunk FinalChunk() const;

 private:
  std::vector<AggregateSpec> aggs_;
  std::vector<std::vector<AggPartial>> worker_partials_;  // [worker][agg]
  mutable std::mutex mu_;
};

/// Full-input scalar aggregation. Two modes:
///  - terminal: emits the one-row result itself (sequential execution);
///  - partial sink: accumulates thread-locally, merges into a shared
///    SharedAggregateState at end-of-input and emits nothing — the parallel
///    executor renders the final row after all workers finish.
class AggregateOperator final : public PhysicalOperator {
 public:
  AggregateOperator(OperatorPtr child, std::vector<AggregateSpec> aggs);
  /// Sink mode; `worker_id` keys this worker's deposit in the shared state
  /// so partials fold in fixed partition order.
  AggregateOperator(OperatorPtr child,
                    std::shared_ptr<SharedAggregateState> shared,
                    std::int64_t worker_id = 0);

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Aggregate"; }
  Result<std::vector<std::string>> OutputColumns() const override;

 private:
  const std::vector<AggregateSpec>& specs() const {
    return shared_ != nullptr ? shared_->aggs() : aggs_;
  }
  Result<std::vector<AggPartial>> DrainChild(
      const std::vector<AggregateSpec>& aggs);

  OperatorPtr child_;
  std::vector<AggregateSpec> aggs_;  // terminal mode
  std::shared_ptr<SharedAggregateState> shared_;  // sink mode
  std::int64_t worker_id_ = 0;
  std::vector<std::int64_t> agg_idx_;  // ordinals at Open; -1 for COUNT
  bool done_ = false;
};

/// Grouped-aggregation spec: group-key columns plus aggregate items. The
/// operator's output schema is the keys (in spec order) followed by the
/// aggregate output names; groups are emitted in ascending key-tuple order,
/// which is what makes parallel and sequential runs byte-identical without
/// an explicit ORDER BY.
struct GroupBySpec {
  std::vector<std::string> keys;
  std::vector<AggregateSpec> aggs;
};

/// Total order over doubles for sort/group keys: ordinary `<` on numbers,
/// with every NaN equivalent to every other NaN and greater than every
/// number (NaN groups/sorts last, deterministically). Plain `<` is NOT a
/// strict weak ordering once NaN appears — NaN would compare "equivalent"
/// to everything — which is undefined behavior for std::stable_sort and
/// breaks std::map invariants.
inline bool TotalDoubleLess(double a, double b) {
  if (std::isnan(a)) return false;
  if (std::isnan(b)) return true;
  return a < b;
}

/// Lexicographic key-tuple order under TotalDoubleLess.
struct GroupKeyLess {
  bool operator()(const std::vector<double>& a,
                  const std::vector<double>& b) const {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end(), TotalDoubleLess);
  }
};

/// Per-group running aggregate state. Keyed by the group's key tuple; the
/// ordered map doubles as the canonical (ascending) output order.
using GroupMap =
    std::map<std::vector<double>, std::vector<AggPartial>, GroupKeyLess>;

/// Finalizes one aggregate's partial into its output value (shared by the
/// scalar and grouped renderers).
double FinalizeAggPartial(AggKind kind, const AggPartial& partial);

/// Merge point of a morsel-parallel hash GROUP BY: every worker's
/// GroupByOperator pre-aggregates into a thread-local GroupMap (no
/// synchronization on the hot path) and merges it once at end-of-input into
/// this table, striped over independently-locked partitions so concurrent
/// merges mostly don't contend. FinalTable renders the groups in ascending
/// key order. Merge arrival order stays unordered by design: per-group
/// partials use ExactFloatSum, whose result is independent of merge order,
/// so the striped concurrent merge cannot perturb SUM/AVG bits (and
/// MIN/MAX/COUNT are order-independent anyway). Thread-safe.
class SharedGroupByState {
 public:
  explicit SharedGroupByState(GroupBySpec spec);

  const GroupBySpec& spec() const { return spec_; }
  void Merge(GroupMap local);
  Result<Table> FinalTable() const;

 private:
  static constexpr std::size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mu;  // FinalTable locks through a const view
    GroupMap groups;
  };
  static std::size_t StripeOf(const std::vector<double>& key);

  GroupBySpec spec_;
  std::array<Stripe, kStripes> stripes_;
};

/// Hash GROUP BY. Two modes, mirroring AggregateOperator:
///  - terminal: drains the child, aggregates per group and emits the result
///    itself, groups in ascending key order (sequential execution);
///  - partial sink: pre-aggregates thread-locally, merges into a shared
///    SharedGroupByState at end-of-input and emits nothing — the parallel
///    executor renders the merged table after all workers finish.
class GroupByOperator final : public PhysicalOperator {
 public:
  GroupByOperator(OperatorPtr child, GroupBySpec spec);
  GroupByOperator(OperatorPtr child,
                  std::shared_ptr<SharedGroupByState> shared);

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "GroupBy"; }
  Result<std::vector<std::string>> OutputColumns() const override;

 private:
  const GroupBySpec& the_spec() const {
    return shared_ != nullptr ? shared_->spec() : spec_;
  }
  Result<GroupMap> DrainChild(const GroupBySpec& spec);

  OperatorPtr child_;
  GroupBySpec spec_;  // terminal mode
  std::shared_ptr<SharedGroupByState> shared_;  // sink mode
  std::vector<std::int64_t> key_idx_;  // ordinals resolved at Open
  std::vector<std::int64_t> agg_idx_;  // -1 for COUNT
  bool done_ = false;
};

/// One ORDER BY key: column plus direction.
struct SortSpec {
  std::string column;
  bool descending = false;
};

/// Stable-sorts `table`'s rows by the given keys (later keys break ties of
/// earlier ones; input order breaks remaining ties, so the result is fully
/// deterministic for any input order that is itself deterministic).
Result<Table> SortTable(Table table, const std::vector<SortSpec>& keys);

/// ORDER BY as a gather-and-sort pipeline breaker: drains and materializes
/// the child at Next-time, sorts, and emits the result as one chunk. Under
/// parallel execution the executor instead materializes the child pipeline
/// morsel-parallel, sorts the merged (sequential-order) table once, and
/// splices it in as a scan source — same SortTable, same determinism.
class SortOperator final : public PhysicalOperator {
 public:
  SortOperator(OperatorPtr child, std::vector<SortSpec> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return "Sort"; }
  Result<std::vector<std::string>> OutputColumns() const override {
    return child_->OutputColumns();
  }

 private:
  OperatorPtr child_;
  std::vector<SortSpec> keys_;
  bool done_ = false;
};

/// Lock-free accumulation target for one instrumented operator, shared by
/// that operator's per-worker clones.
struct OperatorStatsSlot {
  std::atomic<std::int64_t> rows{0};
  std::atomic<std::int64_t> chunks{0};
  std::atomic<std::int64_t> wall_nanos{0};
  /// Time inside Open, separately from the Next work loop (pipeline
  /// breakers like Sort/HashJoin build do real work in Open/first-Next;
  /// the trace surfaces the split as operator open vs. work time).
  std::atomic<std::int64_t> open_nanos{0};
};

/// Transparent wrapper recording rows/chunks/wall-time of the wrapped
/// operator's Open/Next into an OperatorStatsSlot via atomics — no
/// external mutex, safe across parallel workers. Rows are counted by
/// selection (num_selected), so a filter's row count stays "rows that
/// survived".
class InstrumentedOperator final : public PhysicalOperator {
 public:
  InstrumentedOperator(OperatorPtr child, OperatorStatsSlot* slot)
      : child_(std::move(child)), slot_(slot) {}

  Status Open() override;
  Result<bool> Next(DataChunk* out) override;
  std::string Name() const override { return child_->Name(); }
  Result<std::vector<std::string>> OutputColumns() const override {
    return child_->OutputColumns();
  }

 private:
  OperatorPtr child_;
  OperatorStatsSlot* slot_;
};

/// Drains an operator tree into a materialized table.
Result<Table> MaterializeAll(PhysicalOperator* root);

/// A produced chunk plus its merge key for order-restoring parallel merges.
struct OrderedChunk {
  std::int64_t source = 0;
  std::int64_t morsel = 0;
  DataChunk chunk;
};

/// Opens and drains `root`, appending every produced chunk with its
/// provenance key to `out` (worker-side half of a parallel run).
Status DrainOrdered(PhysicalOperator* root, std::vector<OrderedChunk>* out);

/// Concatenates the workers' chunks sorted by (source, morsel) into one
/// table — reproducing sequential row order (joins included: the build side
/// re-orders itself to sequential row ids, see JoinBuildState).
Result<Table> MergeOrderedChunks(std::vector<std::vector<OrderedChunk>> parts);

/// Builds a plan per row-partition of `base` and executes the partitions on
/// the global thread pool, concatenating results. Legacy range-partitioned
/// parallelism, kept for callers that pre-split row ranges themselves; the
/// engine's own parallel path is morsel-driven (see PlanExecutor).
using PartitionPlanFactory =
    std::function<OperatorPtr(std::int64_t begin_row, std::int64_t end_row)>;

Result<Table> ExecutePartitionedParallel(const Table& base,
                                         std::int64_t num_partitions,
                                         const PartitionPlanFactory& factory);

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_OPERATORS_H_
