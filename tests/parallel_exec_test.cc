// Parallel-vs-sequential equivalence for every plan shape the morsel-driven
// executor covers: scan, filter+project, hash join, aggregate, union and
// PREDICT, across parallelism in {2, 8}, plus ExecutionStats aggregation.
// Pipelines must match byte-for-byte INCLUDING row order: morsel provenance
// restores scan order, and the join build re-orders its chunks to the
// sequential build order before hashing, so even duplicate-key matches come
// out identically. Sorted comparison appears only where a test wants to be
// robust rather than to pin ordering.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "data/flight.h"
#include "data/hospital.h"
#include "optimizer/cross_optimizer.h"
#include "relational/expression.h"
#include "runtime/plan_executor.h"
#include "test_util.h"

namespace raven::runtime {
namespace {

/// Row-major copy of a table, for order-insensitive comparison.
std::vector<std::vector<double>> SortedRows(const relational::Table& t) {
  std::vector<std::vector<double>> rows(
      static_cast<std::size_t>(t.num_rows()));
  for (auto& row : rows) row.reserve(static_cast<std::size_t>(t.num_columns()));
  for (const auto& col : t.columns()) {
    for (std::int64_t r = 0; r < t.num_rows(); ++r) {
      rows[static_cast<std::size_t>(r)].push_back(
          col.data[static_cast<std::size_t>(r)]);
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

void ExpectTablesEqualOrdered(const relational::Table& expected,
                              const relational::Table& actual) {
  ASSERT_EQ(expected.ColumnNames(), actual.ColumnNames());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  for (std::int64_t c = 0; c < expected.num_columns(); ++c) {
    EXPECT_EQ(expected.columns()[static_cast<std::size_t>(c)].data,
              actual.columns()[static_cast<std::size_t>(c)].data)
        << "column " << expected.ColumnNames()[static_cast<std::size_t>(c)];
  }
}

void ExpectTablesEqualSorted(const relational::Table& expected,
                             const relational::Table& actual) {
  ASSERT_EQ(expected.ColumnNames(), actual.ColumnNames());
  ASSERT_EQ(expected.num_rows(), actual.num_rows());
  EXPECT_EQ(SortedRows(expected), SortedRows(actual));
}

class ParallelExecFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    hospital_ = data::MakeHospitalDataset(5000, 77);
    ASSERT_NO_FATAL_FAILURE(
        test_util::RegisterHospitalTables(&catalog_, hospital_));
    test_util::InsertHospitalTreeModel(&catalog_, hospital_, 6);
    flight_ = data::MakeFlightDataset(4000, 5);
    ASSERT_NO_FATAL_FAILURE(test_util::RegisterFlightTable(&catalog_, flight_));
    ASSERT_FALSE(HasFailure()) << "fixture setup failed";
  }

  /// Executes `plan` at the given parallelism (shrinking morsels so even
  /// these small tables split into many of them).
  relational::Table Run(const ir::IrPlan& plan, std::int64_t parallelism,
                        ExecutionStats* stats = nullptr) {
    PlanExecutor executor(&catalog_, &cache_);
    ExecutionOptions options;
    options.parallelism = parallelism;
    options.morsel_rows = 512;
    auto result = executor.Execute(plan, options, stats);
    if (!result.ok()) {
      ADD_FAILURE() << "execution failed at parallelism " << parallelism
                    << ": " << result.status().ToString();
      return relational::Table();
    }
    return std::move(result).value();
  }

  /// Asserts parallelism ∈ {2, 8} matches parallelism 1 for `sql`.
  void CheckSqlEquivalence(const std::string& sql, bool ordered) {
    SCOPED_TRACE(sql);
    auto plan = test_util::AnalyzePlan(catalog_, sql);
    CheckPlanEquivalence(plan, ordered);
  }

  void CheckPlanEquivalence(const ir::IrPlan& plan, bool ordered) {
    relational::Table sequential = Run(plan, 1);
    for (std::int64_t n : {2, 8}) {
      SCOPED_TRACE("parallelism=" + std::to_string(n));
      relational::Table parallel = Run(plan, n);
      if (ordered) {
        ExpectTablesEqualOrdered(sequential, parallel);
      } else {
        ExpectTablesEqualSorted(sequential, parallel);
      }
    }
  }

  data::HospitalDataset hospital_;
  data::FlightDataset flight_;
  relational::Catalog catalog_;
  nnrt::SessionCache cache_{8};
};

TEST_F(ParallelExecFixture, PureScan) {
  // Star select over a base table: the plan is a bare TableScan. Parallel
  // output must be byte-identical in row order (morsel merge restores it).
  CheckSqlEquivalence("SELECT * FROM patients", /*ordered=*/true);
}

TEST_F(ParallelExecFixture, FilterProject) {
  CheckSqlEquivalence(
      "SELECT id, bp, bp * 2 + 1 AS bp2 FROM patients "
      "WHERE pregnant = 1 AND bp > 100",
      /*ordered=*/true);
}

TEST_F(ParallelExecFixture, HashJoinTwoTables) {
  CheckSqlEquivalence(
      "SELECT id, age, bp FROM patient_info AS pi "
      "JOIN blood_tests AS bt ON pi.id = bt.id WHERE age > 40",
      /*ordered=*/true);
}

TEST_F(ParallelExecFixture, HashJoinDuplicateBuildKeysDeterministic) {
  // Duplicate build-side keys: the parallel build must reproduce the
  // sequential build's row order (FinalizeBuild re-orders chunks by morsel
  // provenance and sorts row-id lists), so matches come out identically.
  relational::Table probe;
  std::vector<double> pk, pv;
  for (int i = 0; i < 3000; ++i) {
    pk.push_back(i % 7);
    pv.push_back(i);
  }
  ASSERT_TRUE(probe.AddNumericColumn("k", std::move(pk)).ok());
  ASSERT_TRUE(probe.AddNumericColumn("pv", std::move(pv)).ok());
  relational::Table build;
  std::vector<double> bk, bv;
  for (int i = 0; i < 2000; ++i) {
    bk.push_back(i % 7);  // ~286 duplicates per key
    bv.push_back(1000 + i);
  }
  ASSERT_TRUE(build.AddNumericColumn("k", std::move(bk)).ok());
  ASSERT_TRUE(build.AddNumericColumn("bv", std::move(bv)).ok());
  ASSERT_TRUE(catalog_.RegisterTable("dup_probe", std::move(probe)).ok());
  ASSERT_TRUE(catalog_.RegisterTable("dup_build", std::move(build)).ok());
  CheckSqlEquivalence(
      "SELECT * FROM dup_probe JOIN dup_build ON k = k",
      /*ordered=*/true);
}

TEST_F(ParallelExecFixture, HashJoinThreeTablesAtParallelism8) {
  // Acceptance shape: a multi-join over the hospital catalog, partitioned
  // at parallelism 8, byte-identical (sorted) vs sequential.
  auto plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT id, age, bp, fetal_hr FROM patient_info AS pi "
      "JOIN blood_tests AS bt ON pi.id = bt.id "
      "JOIN prenatal_tests AS pt ON bt.id = pt.id");
  relational::Table sequential = Run(plan, 1);
  EXPECT_EQ(sequential.num_rows(), hospital_.patient_info.num_rows());
  relational::Table parallel = Run(plan, 8);
  ExpectTablesEqualOrdered(sequential, parallel);
  ExpectTablesEqualSorted(sequential, parallel);  // the acceptance check
}

TEST_F(ParallelExecFixture, Aggregate) {
  CheckSqlEquivalence(
      "SELECT COUNT(*) AS n, SUM(id) AS sum_id, MIN(bp) AS min_bp, "
      "MAX(bp) AS max_bp FROM patients WHERE pregnant = 1",
      /*ordered=*/true);
}

TEST_F(ParallelExecFixture, AggregateOverJoinFlightAndHospital) {
  // Aggregate above a join (two pipeline breakers stacked); also exercises
  // the flight catalog.
  CheckSqlEquivalence(
      "SELECT COUNT(*) AS n, MIN(age) AS min_age FROM patient_info AS pi "
      "JOIN blood_tests AS bt ON pi.id = bt.id WHERE bp > 100",
      /*ordered=*/true);
  // distance is non-integral; SUM accumulates through the order-independent
  // exact accumulator, so even this is bit-identical at every dop.
  auto plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT COUNT(*) AS n, SUM(distance) AS total_distance "
      "FROM flights WHERE delayed = 1");
  relational::Table sequential = Run(plan, 1);
  for (std::int64_t n : {2, 8}) {
    SCOPED_TRACE("parallelism=" + std::to_string(n));
    ExpectTablesEqualOrdered(sequential, Run(plan, n));
  }
}

TEST_F(ParallelExecFixture, GroupByLowCardinalityKey) {
  // Grouped output is emitted in ascending key order in both modes, so even
  // ordered equality must hold.
  CheckSqlEquivalence(
      "SELECT pregnant, COUNT(*) AS n, MIN(bp) AS min_bp, MAX(bp) AS max_bp, "
      "SUM(age) AS sum_age FROM patients GROUP BY pregnant",
      /*ordered=*/true);
}

TEST_F(ParallelExecFixture, GroupByDistinct) {
  // No aggregates: SELECT DISTINCT over the keys, ascending key order.
  CheckSqlEquivalence(
      "SELECT gender, pregnant FROM patients GROUP BY gender, pregnant",
      /*ordered=*/true);
}

TEST_F(ParallelExecFixture, GroupByMultiKeyWithWhere) {
  CheckSqlEquivalence(
      "SELECT gender, pregnant, COUNT(*) AS n, AVG(age) AS mean_age "
      "FROM patients WHERE bp > 100 GROUP BY gender, pregnant",
      /*ordered=*/true);
}

TEST_F(ParallelExecFixture, GroupByHighCardinalityKey) {
  // One group per row (id is unique): stresses the thread-local tables and
  // the striped merge rather than contention on a handful of groups.
  CheckSqlEquivalence(
      "SELECT id, COUNT(*) AS n, SUM(bp) AS sum_bp FROM patients GROUP BY id",
      /*ordered=*/true);
}

TEST_F(ParallelExecFixture, GroupByHavingAndOrderBy) {
  // AVG over the non-integer bp column: exact float aggregation makes the
  // mean bit-identical regardless of partial-merge order.
  auto plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT gender, AVG(bp) AS mean_bp FROM patients "
      "GROUP BY gender HAVING COUNT(*) > 10 ORDER BY 2 DESC");
  relational::Table sequential = Run(plan, 1);
  ASSERT_GT(sequential.num_rows(), 0);
  for (std::int64_t n : {2, 8}) {
    SCOPED_TRACE("parallelism=" + std::to_string(n));
    ExpectTablesEqualOrdered(sequential, Run(plan, n));
  }
}

TEST_F(ParallelExecFixture, GroupByOverPredict) {
  // The paper's signature grouped-inference shape: per-group PREDICT score
  // distribution with a HAVING cut and a descending sort. Predictions are
  // non-integer floats and still compare bit-for-bit.
  auto plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT pregnant, AVG(p) AS mean_pred, COUNT(*) AS n "
      "FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "GROUP BY pregnant HAVING AVG(p) > 0.5 ORDER BY 2 DESC");
  relational::Table sequential = Run(plan, 1);
  ASSERT_GT(sequential.num_rows(), 0);
  for (std::int64_t n : {2, 8}) {
    SCOPED_TRACE("parallelism=" + std::to_string(n));
    ExpectTablesEqualOrdered(sequential, Run(plan, n));
  }
}

TEST_F(ParallelExecFixture, GroupByOverJoin) {
  CheckSqlEquivalence(
      "SELECT pregnant, COUNT(*) AS n, MAX(bp) AS max_bp "
      "FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id "
      "WHERE age > 30 GROUP BY pregnant",
      /*ordered=*/true);
}

TEST_F(ParallelExecFixture, GroupByValuesMatchHandComputed) {
  // Ground truth on a tiny hand-checkable table, at every parallelism.
  relational::Table t;
  ASSERT_TRUE(t.AddNumericColumn("k", {2, 1, 2, 1, 2, 3}).ok());
  ASSERT_TRUE(t.AddNumericColumn("v", {10, 20, 30, 40, 50, 60}).ok());
  ASSERT_TRUE(catalog_.RegisterTable("tiny", std::move(t)).ok());
  auto plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi, "
      "AVG(v) AS mean FROM tiny GROUP BY k");
  for (std::int64_t dop : {1, 2, 8}) {
    SCOPED_TRACE("parallelism=" + std::to_string(dop));
    relational::Table out = Run(plan, dop);
    ASSERT_EQ(out.num_rows(), 3);
    EXPECT_EQ((*out.GetColumn("k"))->data, (std::vector<double>{1, 2, 3}));
    EXPECT_EQ((*out.GetColumn("n"))->data, (std::vector<double>{2, 3, 1}));
    EXPECT_EQ((*out.GetColumn("s"))->data, (std::vector<double>{60, 90, 60}));
    EXPECT_EQ((*out.GetColumn("lo"))->data, (std::vector<double>{20, 10, 60}));
    EXPECT_EQ((*out.GetColumn("hi"))->data, (std::vector<double>{40, 50, 60}));
    EXPECT_EQ((*out.GetColumn("mean"))->data,
              (std::vector<double>{30, 30, 60}));
  }
}

TEST_F(ParallelExecFixture, GroupByAndOrderByWithNaNKeys) {
  // NaN key values: all NaNs form one group and sort last, at every
  // parallelism — plain operator< would be UB (no strict weak ordering).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  relational::Table t;
  std::vector<double> k, v;
  for (int i = 0; i < 3000; ++i) {
    k.push_back(i % 5 == 0 ? nan : static_cast<double>(i % 3));
    v.push_back(i);
  }
  ASSERT_TRUE(t.AddNumericColumn("k", std::move(k)).ok());
  ASSERT_TRUE(t.AddNumericColumn("v", std::move(v)).ok());
  ASSERT_TRUE(catalog_.RegisterTable("nankeys", std::move(t)).ok());
  auto plan = test_util::AnalyzePlan(
      catalog_, "SELECT k, COUNT(*) AS n FROM nankeys GROUP BY k");
  for (std::int64_t dop : {1, 2, 8}) {
    SCOPED_TRACE("parallelism=" + std::to_string(dop));
    relational::Table out = Run(plan, dop);
    ASSERT_EQ(out.num_rows(), 4);  // 0, 1, 2, NaN
    const auto& keys = (*out.GetColumn("k"))->data;
    const auto& counts = (*out.GetColumn("n"))->data;
    EXPECT_TRUE(std::isnan(keys[3]));  // NaN group sorts last
    EXPECT_EQ(counts[3], 600.0);       // every 5th row
    EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 3000.0);
  }
  // NaN aggregate INPUTS: MIN/MAX/SUM/AVG over a column containing NaN
  // must be NaN at every parallelism (NaN-propagating partials), not
  // depend on which worker saw the NaN first.
  relational::Table vn;
  std::vector<double> vk, vv;
  for (int i = 0; i < 3000; ++i) {
    vk.push_back(i % 2);
    vv.push_back(i == 1701 ? nan : static_cast<double>(i));
  }
  ASSERT_TRUE(vn.AddNumericColumn("k", std::move(vk)).ok());
  ASSERT_TRUE(vn.AddNumericColumn("v", std::move(vv)).ok());
  ASSERT_TRUE(catalog_.RegisterTable("nanvals", std::move(vn)).ok());
  auto agg_plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT k, MIN(v) AS lo, MAX(v) AS hi, COUNT(*) AS n "
      "FROM nanvals GROUP BY k");
  for (std::int64_t dop : {1, 2, 8}) {
    SCOPED_TRACE("parallelism=" + std::to_string(dop));
    relational::Table out = Run(agg_plan, dop);
    ASSERT_EQ(out.num_rows(), 2);
    // k=0 (even rows) is NaN-free; k=1 contains the NaN at row 1701.
    EXPECT_EQ((*out.GetColumn("lo"))->data[0], 0.0);
    EXPECT_EQ((*out.GetColumn("hi"))->data[0], 2998.0);
    EXPECT_TRUE(std::isnan((*out.GetColumn("lo"))->data[1]));
    EXPECT_TRUE(std::isnan((*out.GetColumn("hi"))->data[1]));
    EXPECT_EQ((*out.GetColumn("n"))->data[1], 1500.0);
  }

  auto sorted = test_util::AnalyzePlan(
      catalog_, "SELECT k, v FROM nankeys ORDER BY k, v DESC");
  relational::Table sequential = Run(sorted, 1);
  ASSERT_EQ(sequential.num_rows(), 3000);
  EXPECT_TRUE(std::isnan((*sequential.GetColumn("k"))->data.back()));
  for (std::int64_t dop : {2, 8}) {
    SCOPED_TRACE("parallelism=" + std::to_string(dop));
    relational::Table parallel = Run(sorted, dop);
    // v is NaN-free and, with the ORDER BY v tiebreak, uniquely determines
    // row order; k needs NaN-aware equality (NaN != NaN under ==).
    EXPECT_EQ((*sequential.GetColumn("v"))->data,
              (*parallel.GetColumn("v"))->data);
    const auto& ks = (*sequential.GetColumn("k"))->data;
    const auto& kp = (*parallel.GetColumn("k"))->data;
    ASSERT_EQ(ks.size(), kp.size());
    for (std::size_t i = 0; i < ks.size(); ++i) {
      ASSERT_TRUE(ks[i] == kp[i] || (std::isnan(ks[i]) && std::isnan(kp[i])))
          << "row " << i;
    }
  }
}

TEST_F(ParallelExecFixture, SelectionVectorEdgeCases) {
  // Filters mark rows in a selection vector instead of copying columns, so
  // the hairy cases are the boundaries: chunks where nothing survives,
  // tables the size of a chunk +/- 1 (final chunk holds 1 row or 0 extra),
  // empty inputs, and degenerate 1-row morsels. Every shape must be
  // byte-identical across dop {1, 2, 8}.
  auto register_sized = [&](const std::string& name, std::int64_t rows) {
    relational::Table t;
    std::vector<double> id, v;
    for (std::int64_t i = 0; i < rows; ++i) {
      id.push_back(static_cast<double>(i));
      v.push_back(static_cast<double>(i % 10));
    }
    ASSERT_TRUE(t.AddNumericColumn("id", std::move(id)).ok());
    ASSERT_TRUE(t.AddNumericColumn("v", std::move(v)).ok());
    ASSERT_TRUE(catalog_.RegisterTable(name, std::move(t)).ok());
  };
  // kChunkSize boundary sizes, plus empty and single-row tables.
  ASSERT_EQ(relational::kChunkSize, 2048);  // sizes below track this
  ASSERT_NO_FATAL_FAILURE(register_sized("sel_0", 0));
  ASSERT_NO_FATAL_FAILURE(register_sized("sel_1", 1));
  ASSERT_NO_FATAL_FAILURE(register_sized("sel_2047", 2047));
  ASSERT_NO_FATAL_FAILURE(register_sized("sel_2048", 2048));
  ASSERT_NO_FATAL_FAILURE(register_sized("sel_2049", 2049));

  auto run_with = [&](const ir::IrPlan& plan, std::int64_t dop,
                      std::int64_t morsel_rows) {
    PlanExecutor executor(&catalog_, &cache_);
    ExecutionOptions options;
    options.parallelism = dop;
    options.morsel_rows = morsel_rows;
    auto result = executor.Execute(plan, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).value() : relational::Table();
  };

  const std::vector<std::string> shapes = {
      // All rows filtered (v < 0 never holds): empty result incl. the
      // final partial chunk.
      "SELECT id, v FROM $T WHERE v < 0",
      // Everything survives: selection is all-rows on every chunk.
      "SELECT id, v + 1 AS w FROM $T WHERE v >= 0",
      // Sparse survivors: exercises gather-compaction through projection.
      "SELECT id, v * 2 AS w FROM $T WHERE v = 7",
      // Selection feeding an aggregate (iterates sel instead of copying).
      "SELECT COUNT(*) AS n, SUM(v) AS s FROM $T WHERE v >= 5",
      // Selection feeding a sort.
      "SELECT id, v FROM $T WHERE v = 3 ORDER BY id DESC",
  };
  for (const std::string table :
       {"sel_0", "sel_1", "sel_2047", "sel_2048", "sel_2049"}) {
    for (const std::string& shape : shapes) {
      std::string sql = shape;
      sql.replace(sql.find("$T"), 2, table);
      SCOPED_TRACE(sql);
      auto plan = test_util::AnalyzePlan(catalog_, sql);
      relational::Table sequential = run_with(plan, 1, 512);
      for (std::int64_t dop : {2, 8}) {
        SCOPED_TRACE("parallelism=" + std::to_string(dop));
        ExpectTablesEqualOrdered(sequential, run_with(plan, dop, 512));
      }
      // Degenerate single-row morsels at dop 8.
      SCOPED_TRACE("morsel_rows=1");
      if (table != "sel_2047" && table != "sel_2049") {
        // (bounded: 1-row morsels over the large tables are covered by
        // sel_2048; skipping two sizes keeps the test fast without losing
        // a distinct boundary)
        ExpectTablesEqualOrdered(sequential, run_with(plan, 8, 1));
      }
    }
  }
  // COUNT/SUM over the empty table still yields the aggregate identity row
  // (0, +0.0) — and +0.0, not -0.0, from the exact accumulator.
  auto agg = test_util::AnalyzePlan(
      catalog_, "SELECT COUNT(*) AS n, SUM(v) AS s FROM sel_0");
  for (std::int64_t dop : {1, 2, 8}) {
    relational::Table out = run_with(agg, dop, 512);
    ASSERT_EQ(out.num_rows(), 1);
    EXPECT_EQ((*out.GetColumn("n"))->data[0], 0.0);
    const double s = (*out.GetColumn("s"))->data[0];
    EXPECT_EQ(s, 0.0);
    EXPECT_FALSE(std::signbit(s));
  }
}

TEST_F(ParallelExecFixture, DivisionByZeroFlowsThroughOrderByAndGroupBy) {
  // x / 0 produces +inf, -inf or NaN (0/0) per IEEE-754 and each must flow
  // through downstream operators instead of faulting: ORDER BY places
  // infinities at the extremes and NaN last; GROUP BY normalizes every NaN
  // into one group. Identical at every dop.
  relational::Table t;
  std::vector<double> x, d;
  for (int i = 0; i < 3000; ++i) {
    // x cycles through negative/zero/positive; every 3rd divisor is 0.
    x.push_back(static_cast<double>((i % 7) - 3));
    d.push_back(i % 3 == 0 ? 0.0 : static_cast<double>((i % 5) + 1));
  }
  ASSERT_TRUE(t.AddNumericColumn("x", std::move(x)).ok());
  ASSERT_TRUE(t.AddNumericColumn("d", std::move(d)).ok());
  ASSERT_TRUE(catalog_.RegisterTable("divzero", std::move(t)).ok());

  // ORDER BY over the quotient: -inf rows first, NaN rows (0/0) last.
  auto sorted = test_util::AnalyzePlan(
      catalog_,
      "SELECT x, d, x / d AS q FROM divzero ORDER BY q, x, d");
  relational::Table sequential = Run(sorted, 1);
  ASSERT_EQ(sequential.num_rows(), 3000);
  const auto& q = (*sequential.GetColumn("q"))->data;
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(q.front(), -inf);
  EXPECT_TRUE(std::isnan(q.back()));  // NaN sorts last
  EXPECT_GT(std::count(q.begin(), q.end(), inf), 0);  // x > 0, d == 0 rows
  for (std::int64_t dop : {2, 8}) {
    SCOPED_TRACE("parallelism=" + std::to_string(dop));
    relational::Table parallel = Run(sorted, dop);
    const auto& qs = (*parallel.GetColumn("q"))->data;
    ASSERT_EQ(q.size(), qs.size());
    for (std::size_t i = 0; i < q.size(); ++i) {
      ASSERT_TRUE(q[i] == qs[i] || (std::isnan(q[i]) && std::isnan(qs[i])))
          << "row " << i;
    }
    // x and d are NaN-free, so plain vector equality pins the row order.
    EXPECT_EQ((*sequential.GetColumn("x"))->data,
              (*parallel.GetColumn("x"))->data);
    EXPECT_EQ((*sequential.GetColumn("d"))->data,
              (*parallel.GetColumn("d"))->data);
  }

  // GROUP BY over the quotient: +/-inf are ordinary keys, all NaNs
  // (whatever their payload) collapse into a single group that sorts last.
  // GROUP BY keys must be bare columns, so materialize the engine-computed
  // quotient as a table first (the division above already ran per dop).
  relational::Table qt;
  ASSERT_TRUE(qt.AddNumericColumn("q", q).ok());
  ASSERT_TRUE(catalog_.RegisterTable("divzero_q", std::move(qt)).ok());
  auto grouped = test_util::AnalyzePlan(
      catalog_, "SELECT q, COUNT(*) AS n FROM divzero_q GROUP BY q");
  relational::Table gseq = Run(grouped, 1);
  const auto& gq = (*gseq.GetColumn("q"))->data;
  const auto& gn = (*gseq.GetColumn("n"))->data;
  ASSERT_GT(gseq.num_rows(), 3);
  EXPECT_EQ(gq.front(), -inf);
  EXPECT_TRUE(std::isnan(gq.back()));
  // Count NaN rows by hand: x % 7 == 3 (x == 0) AND i % 3 == 0 (d == 0).
  double expected_nan = 0;
  for (int i = 0; i < 3000; ++i) {
    if ((i % 7) - 3 == 0 && i % 3 == 0) ++expected_nan;
  }
  EXPECT_EQ(gn.back(), expected_nan);
  for (std::int64_t dop : {2, 8}) {
    SCOPED_TRACE("parallelism=" + std::to_string(dop));
    relational::Table parallel = Run(grouped, dop);
    const auto& pq = (*parallel.GetColumn("q"))->data;
    ASSERT_EQ(gq.size(), pq.size());
    for (std::size_t i = 0; i < gq.size(); ++i) {
      ASSERT_TRUE(gq[i] == pq[i] || (std::isnan(gq[i]) && std::isnan(pq[i])))
          << "key row " << i;
    }
    EXPECT_EQ(gn, (*parallel.GetColumn("n"))->data);
  }
}

TEST_F(ParallelExecFixture, OrderByRestoresDeterministicOrder) {
  // Multi-key sort with ties (pregnant is binary): the stable sort must
  // break ties by sequential row order, making parallel output identical.
  CheckSqlEquivalence(
      "SELECT id, age, pregnant FROM patients ORDER BY pregnant DESC, age",
      /*ordered=*/true);
  // Sort over a star select (no projection above the scan).
  CheckSqlEquivalence("SELECT * FROM patients ORDER BY bp DESC",
                      /*ordered=*/true);
}

TEST_F(ParallelExecFixture, OrderByIsActuallySorted) {
  auto plan = test_util::AnalyzePlan(
      catalog_, "SELECT id, bp FROM patients ORDER BY bp DESC");
  relational::Table out = Run(plan, 8);
  const auto& bp = (*out.GetColumn("bp"))->data;
  ASSERT_EQ(out.num_rows(), hospital_.joined.num_rows());
  for (std::size_t i = 1; i < bp.size(); ++i) {
    ASSERT_GE(bp[i - 1], bp[i]) << "row " << i;
  }
}

TEST_F(ParallelExecFixture, OrderByWithLimitRunsSequential) {
  // Top-N: LIMIT still pins sequential execution; result is the sorted
  // prefix either way.
  auto plan = test_util::AnalyzePlan(
      catalog_, "SELECT id, age FROM patients ORDER BY age DESC LIMIT 10");
  ExecutionStats stats;
  relational::Table out = Run(plan, 8, &stats);
  EXPECT_EQ(out.num_rows(), 10);
  EXPECT_EQ(stats.partitions_used, 1);
  ExpectTablesEqualOrdered(Run(plan, 1), out);
}

TEST_F(ParallelExecFixture, AvgMatchesBitIdentical) {
  // AVG folds per-worker exact partials in worker order; integer and
  // non-integer columns alike must match bit-for-bit.
  for (const std::string sql :
       {"SELECT AVG(age) AS mean_age, COUNT(*) AS n FROM patient_info",
        "SELECT AVG(distance) AS mean_distance, SUM(distance) AS s "
        "FROM flights"}) {
    SCOPED_TRACE(sql);
    auto plan = test_util::AnalyzePlan(catalog_, sql);
    relational::Table sequential = Run(plan, 1);
    relational::Table parallel = Run(plan, 8);
    ExpectTablesEqualOrdered(sequential, parallel);
  }
}

TEST_F(ParallelExecFixture, JoinWithUnionBuildSideKeepsArrivalOrder) {
  // Build side = union of two >kChunkSize scans: both branches reuse
  // (source 0, morsel 0..) in sequential mode, so the owning join re-tags
  // chunks with arrival indices — without that, FinalizeBuild's provenance
  // sort would interleave the branches and reorder duplicate-key matches.
  auto make_keyed = [&](const std::string& name, double offset) {
    relational::Table t;
    std::vector<double> k, v;
    for (int i = 0; i < 2500; ++i) {
      k.push_back(i % 50);
      v.push_back(offset + i);
    }
    ASSERT_TRUE(t.AddNumericColumn("k", std::move(k)).ok());
    ASSERT_TRUE(t.AddNumericColumn("v", std::move(v)).ok());
    ASSERT_TRUE(catalog_.RegisterTable(name, std::move(t)).ok());
  };
  make_keyed("ub_a", 10000);
  make_keyed("ub_b", 20000);
  relational::Table probe;
  std::vector<double> pk, pv;
  for (int i = 0; i < 100; ++i) {
    pk.push_back(i % 50);
    pv.push_back(i);
  }
  ASSERT_TRUE(probe.AddNumericColumn("k", std::move(pk)).ok());
  ASSERT_TRUE(probe.AddNumericColumn("pv", std::move(pv)).ok());
  ASSERT_TRUE(catalog_.RegisterTable("ub_probe", std::move(probe)).ok());

  std::vector<ir::IrNodePtr> branches;
  branches.push_back(ir::IrNode::TableScan("ub_a"));
  branches.push_back(ir::IrNode::TableScan("ub_b"));
  ir::IrPlan plan(ir::IrNode::Join(ir::IrNode::TableScan("ub_probe"),
                                   ir::IrNode::UnionAll(std::move(branches)),
                                   "k", "k"));
  // Sequential output must list all ub_a matches before ub_b matches per
  // probe row (arrival order), and parallel must match it exactly.
  relational::Table sequential = Run(plan, 1);
  const auto& v = (*sequential.GetColumn("v"))->data;
  ASSERT_EQ(sequential.num_rows(), 100 * 100);
  EXPECT_LT(v[0], 20000);                       // first match from ub_a
  EXPECT_GE(v[99], 20000);                      // later matches from ub_b
  CheckPlanEquivalence(plan, /*ordered=*/true);
}

TEST_F(ParallelExecFixture, UnionAll) {
  // No UNION in the SQL dialect; build the IR directly, as the model-query
  // splitting rule does.
  using relational::Col;
  using relational::Gt;
  using relational::Lit;
  auto make_plan = [] {
    std::vector<ir::IrNodePtr> branches;
    branches.push_back(ir::IrNode::Filter(ir::IrNode::TableScan("patients"),
                                          Gt(Col("bp"), Lit(120))));
    branches.push_back(ir::IrNode::Filter(
        ir::IrNode::TableScan("patients"),
        relational::Not(Gt(Col("bp"), Lit(120)))));
    return ir::IrPlan(ir::IrNode::UnionAll(std::move(branches)));
  };
  // Union children drain in child order per worker and each branch keeps
  // its own morsel ordering, so even ordered equality holds.
  CheckPlanEquivalence(make_plan(), /*ordered=*/true);
}

TEST_F(ParallelExecFixture, PredictPipeline) {
  CheckSqlEquivalence(
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float) "
      "WHERE p > 5",
      /*ordered=*/true);
}

TEST_F(ParallelExecFixture, PredictOverJoinAtParallelism8) {
  // The paper's running example: 3-way join feeding PREDICT, fully
  // partitioned.
  auto plan =
      test_util::AnalyzePlan(catalog_, test_util::RunningExampleSql());
  relational::Table sequential = Run(plan, 1);
  EXPECT_GT(sequential.num_rows(), 0);
  relational::Table parallel = Run(plan, 8);
  ExpectTablesEqualOrdered(sequential, parallel);
}

TEST_F(ParallelExecFixture, LimitPlansFallBackToSequential) {
  auto plan = test_util::AnalyzePlan(
      catalog_, "SELECT id FROM patients WHERE bp > 100 LIMIT 25");
  ExecutionStats stats;
  relational::Table out = Run(plan, 8, &stats);
  EXPECT_EQ(out.num_rows(), 25);
  EXPECT_EQ(stats.partitions_used, 1);  // LIMIT pins sequential execution
  ExpectTablesEqualOrdered(Run(plan, 1), out);
}

TEST_F(ParallelExecFixture, StatsAggregateAcrossWorkers) {
  auto plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float)");
  ExecutionStats stats;
  relational::Table out = Run(plan, 4, &stats);
  ASSERT_EQ(out.num_rows(), hospital_.joined.num_rows());

  EXPECT_EQ(stats.partitions_used, 4);
  // 5000 rows at 512-row morsels -> 10 morsels dispensed for the one scan.
  EXPECT_EQ(stats.morsels, 10);
  EXPECT_GT(stats.predict_batches, 0);
  EXPECT_EQ(stats.rows_out, hospital_.joined.num_rows());

  // Per-operator counters: every operator of the plan reports, and the
  // worker-summed row counts are consistent with the table sizes.
  ASSERT_FALSE(stats.operators.empty());
  auto find_op = [&](const std::string& prefix) -> const OperatorStats* {
    for (const auto& op : stats.operators) {
      if (op.op.rfind(prefix, 0) == 0) return &op;
    }
    return nullptr;
  };
  const OperatorStats* scan = find_op("Scan(");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->rows, hospital_.joined.num_rows());
  EXPECT_EQ(scan->chunks, 10);  // one chunk per morsel
  // The PREDICT and the projection above it fuse into one operator; the
  // stats row carries the fused label and the chain's final row count.
  const OperatorStats* predict = find_op("Fused[Predict(");
  ASSERT_NE(predict, nullptr);
  EXPECT_EQ(predict->rows, hospital_.joined.num_rows());
  EXPECT_GE(predict->wall_micros, 0.0);
  EXPECT_EQ(stats.fused_chains, 1);

  // The same query sequentially reports the same totals (work is invariant
  // to the worker count).
  ExecutionStats seq_stats;
  Run(plan, 1, &seq_stats);
  EXPECT_EQ(seq_stats.partitions_used, 1);
  EXPECT_EQ(seq_stats.rows_out, stats.rows_out);
}

TEST_F(ParallelExecFixture, AggregateOverNonKeyJoinSurvivesOptimizer) {
  // Regression: join elimination must not fire below an aggregate. With a
  // build side matching only half the probe rows, dropping the join (its
  // columns are unreferenced by COUNT(*)) would return 4 instead of 2.
  relational::Table a;
  ASSERT_TRUE(a.AddNumericColumn("id", {1, 2, 3, 4}).ok());
  relational::Table b;
  ASSERT_TRUE(b.AddNumericColumn("bid", {1, 2}).ok());
  ASSERT_TRUE(catalog_.RegisterTable("probe4", std::move(a)).ok());
  ASSERT_TRUE(catalog_.RegisterTable("build2", std::move(b)).ok());

  auto plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT COUNT(*) AS n FROM probe4 JOIN build2 ON id = bid");
  optimizer::CrossOptimizer optimizer(&catalog_, optimizer::OptimizerOptions());
  ASSERT_TRUE(optimizer.Optimize(&plan).ok());
  EXPECT_EQ(plan.CountKind(ir::IrOpKind::kJoin), 1u);  // join survived

  for (std::int64_t n : {1, 8}) {
    relational::Table out = Run(plan, n);
    ASSERT_EQ(out.num_rows(), 1);
    EXPECT_EQ((*out.GetColumn("n"))->data[0], 2.0) << "parallelism " << n;
  }
}

TEST_F(ParallelExecFixture, ParallelErrorPropagates) {
  // A plan whose scorer fails mid-run must surface the error, not hang or
  // return partial results: model input column removed from the table.
  auto plan = test_util::AnalyzePlan(
      catalog_,
      "SELECT id, p FROM PREDICT(MODEL='los', DATA=patients) WITH(p float)");
  // Corrupt the plan: point the model at a column that doesn't exist.
  ir::VisitIr(plan.root(), [](const ir::IrNode* node) {
    auto* mutable_node = const_cast<ir::IrNode*>(node);
    if (mutable_node->kind == ir::IrOpKind::kModelPipeline) {
      mutable_node->model_input_columns.push_back("no_such_column");
    }
  });
  PlanExecutor executor(&catalog_, &cache_);
  ExecutionOptions options;
  options.parallelism = 4;
  auto result = executor.Execute(plan, options);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace raven::runtime
