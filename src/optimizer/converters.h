#ifndef RAVEN_OPTIMIZER_CONVERTERS_H_
#define RAVEN_OPTIMIZER_CONVERTERS_H_

#include "common/status.h"
#include "ml/pipeline.h"
#include "nnrt/graph.h"
#include "relational/expression.h"

namespace raven::optimizer {

/// Options for NN translation (paper §4.2, Fig 2(d)).
struct NnTranslationOptions {
  /// When true, trees and forests are lowered all the way to GEMM layers
  /// (the novel MLD -> LA transformation); when false they stay as the
  /// higher-level TreeEnsemble op (the ONNX-ML-style encoding).
  bool lower_trees_to_gemm = true;
};

/// Translates a trained model pipeline into an NNRT dataflow graph with a
/// single input "X" ([n, |input_columns|] raw matrix) and output "Y"
/// ([n, 1] predictions). Featurizer branches become GatherColumns /
/// Scaler / OneHot ops; predictors become Gemm stacks, Sigmoid heads, or
/// tree encodings. The translated graph computes exactly the pipeline's
/// Predict function (float32).
Result<nnrt::Graph> PipelineToNnGraph(
    const ml::ModelPipeline& pipeline,
    const NnTranslationOptions& options = NnTranslationOptions());

/// Model inlining (paper §4.2, Fig 2(c)): compiles a decision-tree pipeline
/// into a relational scalar expression (nested CASE WHEN over raw columns),
/// the stand-in for SQL Server UDF inlining (Froid). Supported when the
/// predictor is a DecisionTree and every feature comes from an identity,
/// scaler, or one-hot branch (scaler tests are rewritten into raw-space
/// thresholds; one-hot tests into equality predicates).
Result<relational::ExprPtr> TreeToCaseExpr(const ml::ModelPipeline& pipeline);

/// True if TreeToCaseExpr supports this pipeline.
bool IsInlinable(const ml::ModelPipeline& pipeline);

}  // namespace raven::optimizer

#endif  // RAVEN_OPTIMIZER_CONVERTERS_H_
