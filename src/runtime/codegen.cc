#include "runtime/codegen.h"

#include <functional>
#include <sstream>

#include "nnrt/executor.h"
#include "relational/block_table.h"

namespace raven::runtime {
namespace {

using ir::IrNode;
using ir::IrOpKind;
using relational::BatchScorer;
using relational::OperatorPtr;

void AtomicAddDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + value,
                                        std::memory_order_relaxed)) {
  }
}

/// Stats destination captured BY VALUE into scorer closures. The collector
/// lives in PlanExecutor::Execute's frame, which strictly outlives every
/// worker; the RuntimeContext itself may not (worker trees are built from
/// per-worker contexts on their own stacks), so closures must never capture
/// it by reference. All accumulation is atomic — no external mutex.
struct StatsSink {
  StatsCollector* collector = nullptr;
};

void AccumulateStats(const StatsSink& sink, std::int64_t rows,
                     const nnrt::RunStats* nn_stats) {
  if (sink.collector == nullptr) return;
  sink.collector->AddPredictBatch(rows, nn_stats);
}

/// Scores via the interpreted classical-ML path (the baseline "framework"
/// path and the execution of non-translated pipelines).
BatchScorer MakeInterpretedScorer(std::shared_ptr<ml::ModelPipeline> pipeline,
                                  const RuntimeContext& ctx) {
  const StatsSink sink{ctx.stats};
  return [pipeline, sink](const Tensor& input)
             -> Result<std::vector<double>> {
    RAVEN_ASSIGN_OR_RETURN(Tensor preds, pipeline->Predict(input));
    AccumulateStats(sink, preds.dim(0), nullptr);
    std::vector<double> out(preds.data().begin(), preds.data().end());
    return out;
  };
}

BatchScorer MakeClusteredScorer(std::shared_ptr<ir::ClusteredModel> model,
                                const RuntimeContext& ctx) {
  const StatsSink sink{ctx.stats};
  return [model, sink](const Tensor& input) -> Result<std::vector<double>> {
    RAVEN_ASSIGN_OR_RETURN(Tensor preds, model->Predict(input));
    AccumulateStats(sink, preds.dim(0), nullptr);
    std::vector<double> out(preds.data().begin(), preds.data().end());
    return out;
  };
}

/// In-process NNRT scoring through the session cache (model + session
/// caching is what wins the small-batch regime in Fig 3).
Result<BatchScorer> MakeNnScorer(const IrNode& node,
                                 const RuntimeContext& ctx) {
  // Cache key: model identity + the plan's precomputed graph fingerprint.
  // Serializing the model happens only on a cache miss (or for a
  // hand-assembled node with no fingerprint) — a hot prepared statement
  // must not pay a full graph serialization per execution just to look up
  // the session it already built.
  auto serialize = [&node]() {
    BinaryWriter writer;
    node.nn_graph->Serialize(&writer);
    return writer.Release();
  };
  std::uint64_t fingerprint = node.nn_graph_fingerprint;
  if (fingerprint == 0) {
    fingerprint = nnrt::FingerprintGraphBytes(serialize());
  }
  std::string key = node.model_name;
  auto versioned = ctx.catalog->ModelCacheKey(node.model_name);
  if (versioned.ok()) key = versioned.value();
  key += "#" + std::to_string(fingerprint);
  // Backend in the key: sessions are backend-bound at creation, and the
  // PredictBatcher groups by this same key, so batches stay backend-pure.
  key += "@";
  key += nnrt::BackendKindToString(ctx.options.nn_backend);
  nnrt::SessionOptions session_options;
  session_options.device = ctx.options.device;
  session_options.backend = ctx.options.nn_backend;
  session_options.profiler = &ctx.session_cache->profiler();
  RAVEN_ASSIGN_OR_RETURN(
      auto session, ctx.session_cache->GetOrCreate(key, fingerprint, serialize,
                                                   session_options));
  const StatsSink sink{ctx.stats};
  // Cross-query micro-batching: with a batcher attached and a positive
  // window, each morsel's input is submitted to the shared scheduler, which
  // may coalesce it with rows from concurrent queries before running the
  // session (bit-identical per row — kernels are row-independent). A window
  // of 0 keeps the direct per-morsel call below, byte for byte the
  // unbatched path.
  const std::int64_t window = ctx.options.predict_batch_window_micros;
  const std::int64_t max_rows = ctx.options.predict_max_batch_rows;
  const std::shared_ptr<InferenceBatcher> batcher =
      window > 0 ? ctx.options.predict_batcher : nullptr;
  obs::Trace* trace = ctx.options.trace;
  return BatchScorer([session, sink, batcher, key, window, max_rows, trace](
                         const Tensor& input) -> Result<std::vector<double>> {
    nnrt::RunStats stats;
    Tensor preds;
    if (batcher != nullptr) {
      InferenceBatcher::Request request;
      request.key = key;
      request.session = session;
      request.input = &input;
      request.window_micros = window;
      request.max_batch_rows = max_rows;
      // One span per morsel submission (bounded by morsel count, not row
      // count): covers the batch window wait plus this submission's share
      // of the shared flush.
      const std::int64_t span_id =
          trace != nullptr ? trace->StartSpan("predict_batcher.wait") : 0;
      auto scored = batcher->Score(request, &stats);
      if (trace != nullptr) {
        trace->EndSpan(
            span_id,
            "rows=" + std::to_string(input.dim(0)) + " share_nn_micros=" +
                std::to_string(static_cast<std::int64_t>(stats.wall_micros)) +
                (scored.ok() ? "" : " error=1"));
      }
      RAVEN_RETURN_IF_ERROR(scored.status());
      preds = std::move(scored).value();
    } else {
      RAVEN_ASSIGN_OR_RETURN(preds, session->RunSingle(input, &stats));
    }
    AccumulateStats(sink, preds.dim(0), &stats);
    std::vector<double> out(preds.data().begin(), preds.data().end());
    return out;
  });
}

/// Out-of-process scoring: one worker process per query execution (the
/// sp_execute_external_script lifecycle). The WorkerClient is shared by the
/// scorer's closures and serialized with a mutex.
Result<BatchScorer> MakeExternalScorer(WorkerCommand kind,
                                       std::string model_bytes,
                                       const RuntimeContext& ctx) {
  ExternalRuntimeOptions ext = ctx.options.external;
  if (ctx.options.mode == ExecutionMode::kContainer) {
    ext.boot_millis += ctx.options.container_extra_boot_millis;
  }
  auto client = std::make_shared<WorkerClient>();
  RAVEN_RETURN_IF_ERROR(client->Start(ext));
  auto mu = std::make_shared<std::mutex>();
  const StatsSink sink{ctx.stats};
  return BatchScorer([client, mu, kind, model_bytes = std::move(model_bytes),
                      sink](const Tensor& input)
                         -> Result<std::vector<double>> {
    std::lock_guard<std::mutex> lock(*mu);
    RAVEN_ASSIGN_OR_RETURN(Tensor preds,
                           client->Score(kind, model_bytes, input));
    AccumulateStats(sink, preds.dim(0), nullptr);
    std::vector<double> out(preds.data().begin(), preds.data().end());
    return out;
  });
}

Result<BatchScorer> ScorerFor(const IrNode& node, const RuntimeContext& ctx) {
  // In distributed mode the model nodes inside shipped fragments score in
  // the pool workers; any model node left in the in-process remainder (e.g.
  // a clustered predict over grouped data) scores locally, never through a
  // one-shot external worker.
  const bool local_scoring = ctx.options.mode == ExecutionMode::kInProcess ||
                             ctx.options.mode == ExecutionMode::kDistributed;
  switch (node.kind) {
    case IrOpKind::kModelPipeline: {
      if (local_scoring) {
        return MakeInterpretedScorer(node.pipeline, ctx);
      }
      return MakeExternalScorer(WorkerCommand::kScorePipeline,
                                node.pipeline->ToBytes(), ctx);
    }
    case IrOpKind::kClusteredPredict:
      // Clustering artifacts live in the optimizer process; always local.
      return MakeClusteredScorer(node.clustered, ctx);
    case IrOpKind::kNnGraph: {
      if (local_scoring) {
        return MakeNnScorer(node, ctx);
      }
      BinaryWriter writer;
      node.nn_graph->Serialize(&writer);
      return MakeExternalScorer(WorkerCommand::kScoreGraph, writer.Release(),
                                ctx);
    }
    case IrOpKind::kOpaquePipeline:
      // Unanalyzable pipelines never run in-process: ship them to the
      // external runtime (container mode adds its boot cost).
      return MakeExternalScorer(WorkerCommand::kScorePipeline,
                                node.opaque_bytes, ctx);
    default:
      return Status::Internal("ScorerFor on a non-model node");
  }
}

}  // namespace

const char* ExecutionModeToString(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kInProcess:
      return "in-process";
    case ExecutionMode::kDistributed:
      return "distributed";
    case ExecutionMode::kOutOfProcess:
      return "out-of-process";
    case ExecutionMode::kContainer:
      return "container";
  }
  return "?";
}

namespace {

/// Wraps `op` with stats instrumentation when a collector is attached. The
/// slot is keyed by IR node, so worker clones of one operator share it and
/// their counters sum.
OperatorPtr Instrument(OperatorPtr op, const IrNode& node,
                       const std::string& label, const RuntimeContext& ctx) {
  if (ctx.stats == nullptr) return op;
  relational::OperatorStatsSlot* slot = ctx.stats->SlotFor(&node, label);
  return std::make_unique<relational::InstrumentedOperator>(std::move(op),
                                                            slot);
}

/// Morsel scan over `table` if the parallel state registered this node as a
/// pipeline source; plain full scan otherwise.
OperatorPtr MakeScan(const relational::Table* table, const IrNode& node,
                     const RuntimeContext& ctx) {
  if (ctx.parallel != nullptr) {
    auto it = ctx.parallel->scan_queues.find(&node);
    if (it != ctx.parallel->scan_queues.end()) {
      return std::make_unique<relational::ScanOperator>(
          table, it->second.first, it->second.second);
    }
  }
  return std::make_unique<relational::ScanOperator>(table);
}

/// The disk table `node` scans, or nullptr when it scans an in-memory one
/// (or is not a scan at all).
std::shared_ptr<const relational::BlockTable> DiskTableFor(
    const IrNode& node, const RuntimeContext& ctx) {
  if (node.kind != IrOpKind::kTableScan || ctx.catalog == nullptr) {
    return nullptr;
  }
  auto table = ctx.catalog->GetDiskTable(node.table_name);
  return table.ok() ? *table : nullptr;
}

/// Conjuncts of `pred` with the `col <op> const` shape — the only shape a
/// zone map can reason about. Everything else simply isn't pushed down.
std::vector<relational::SimplePredicate> ZoneConjuncts(
    const relational::Expr& pred) {
  std::vector<relational::SimplePredicate> out;
  for (const relational::Expr* conjunct : relational::ExtractConjuncts(pred)) {
    auto simple = relational::MatchSimplePredicate(*conjunct);
    if (simple.has_value()) out.push_back(*simple);
  }
  return out;
}

/// On-disk twin of MakeScan: block-aligned morsel scan when the parallel
/// state registered this node, full block scan otherwise; zone-map
/// predicates and the shared block counters attach when enabled.
OperatorPtr MakeDiskScan(std::shared_ptr<const relational::BlockTable> table,
                         const IrNode& node, const RuntimeContext& ctx,
                         std::vector<relational::SimplePredicate> preds) {
  std::unique_ptr<relational::DiskScanOperator> scan;
  if (ctx.parallel != nullptr) {
    auto it = ctx.parallel->scan_queues.find(&node);
    if (it != ctx.parallel->scan_queues.end()) {
      scan = std::make_unique<relational::DiskScanOperator>(
          table, it->second.first, it->second.second);
    }
  }
  if (scan == nullptr) {
    scan = std::make_unique<relational::DiskScanOperator>(std::move(table));
  }
  if (ctx.options.zone_map_skipping && !preds.empty()) {
    scan->SetZonePredicates(std::move(preds));
  }
  if (ctx.stats != nullptr) {
    scan->SetBlockCounters(&ctx.stats->blocks_scanned,
                           &ctx.stats->blocks_skipped);
  }
  return scan;
}

/// Maximal run of fusable single-child operators headed at `node`, in plan
/// (top-down) order. The caller has already established `node` itself is not
/// materialized; interior nodes re-check so a node another pipeline executed
/// is never absorbed (it must enter as a materialized scan instead — today
/// only breakers materialize, so the guard is belt-and-suspenders).
std::vector<const IrNode*> CollectFusedChain(const IrNode& node,
                                             const RuntimeContext& ctx) {
  std::vector<const IrNode*> chain;
  const IrNode* cur = &node;
  while (ir::IsFusablePipelineKind(cur->kind) &&
         (chain.empty() || ctx.parallel == nullptr ||
          ctx.parallel->materialized.count(cur) == 0)) {
    chain.push_back(cur);
    cur = cur->children[0].get();
  }
  return chain;
}

/// Display label for a fused chain, components in execution order (the
/// chain is given top-down, so the last element runs first):
/// "Fused[Filter+Predict(los)+Project]".
std::string FusedChainLabel(const std::vector<const IrNode*>& chain) {
  std::string label = "Fused[";
  for (std::size_t i = chain.size(); i-- > 0;) {
    const IrNode& n = *chain[i];
    switch (n.kind) {
      case IrOpKind::kFilter:
        label += "Filter";
        break;
      case IrOpKind::kProject:
        label += "Project";
        break;
      default:
        label += "Predict(" + n.model_name + ")";
        break;
    }
    if (i > 0) label += "+";
  }
  label += "]";
  return label;
}

/// Lowers a fused chain to one FusedOperator over the subtree below it:
/// stages in execution order, each filter marking rows in the selection
/// vector and each projection/PREDICT gathering through it, so the whole
/// chain is a single pass per chunk.
Result<OperatorPtr> BuildFusedChain(const IrNode& head,
                                    const std::vector<const IrNode*>& chain,
                                    const RuntimeContext& ctx) {
  const IrNode& below = *chain.back()->children[0];
  OperatorPtr child;
  if (auto disk = DiskTableFor(below, ctx); disk != nullptr) {
    // The contiguous run of filters at the BOTTOM of the chain evaluates
    // directly over scan output, so its conjuncts are sound zone-map
    // inputs. Filters higher up may reference computed/renamed columns
    // that shadow scan columns — those never push down.
    std::vector<relational::SimplePredicate> preds;
    for (std::size_t i = chain.size(); i-- > 0;) {
      if (chain[i]->kind != IrOpKind::kFilter) break;
      std::vector<relational::SimplePredicate> conjuncts =
          ZoneConjuncts(*chain[i]->predicate);
      preds.insert(preds.end(), conjuncts.begin(), conjuncts.end());
    }
    child = Instrument(MakeDiskScan(std::move(disk), below, ctx,
                                    std::move(preds)),
                       below, "DiskScan(" + below.table_name + ")", ctx);
  } else {
    RAVEN_ASSIGN_OR_RETURN(child, BuildPhysicalPlan(below, ctx));
  }
  std::vector<relational::FusedStage> stages;
  stages.reserve(chain.size());
  for (std::size_t i = chain.size(); i-- > 0;) {
    const IrNode& n = *chain[i];
    relational::FusedStage stage;
    switch (n.kind) {
      case IrOpKind::kFilter:
        stage.kind = relational::FusedStage::Kind::kFilter;
        stage.predicate = n.predicate->Clone();
        break;
      case IrOpKind::kProject:
        stage.kind = relational::FusedStage::Kind::kProject;
        stage.exprs.reserve(n.proj_exprs.size());
        for (const auto& e : n.proj_exprs) stage.exprs.push_back(e->Clone());
        stage.names = n.proj_names;
        break;
      default: {
        stage.kind = relational::FusedStage::Kind::kPredict;
        stage.input_columns = n.model_input_columns;
        stage.output_name = n.output_column;
        RAVEN_ASSIGN_OR_RETURN(stage.scorer, ScorerFor(n, ctx));
        break;
      }
    }
    stages.push_back(std::move(stage));
  }
  const std::string label = FusedChainLabel(chain);
  if (ctx.stats != nullptr && ctx.worker_id == 0) {
    // Worker 0 only: the N worker clones of a parallel pipeline share one
    // plan shape, which is one fused chain, not N.
    ctx.stats->fused_chains.fetch_add(1, std::memory_order_relaxed);
  }
  return Instrument(std::make_unique<relational::FusedOperator>(
                        std::move(child), std::move(stages), label),
                    head, label, ctx);
}

relational::AggKind ToAggKind(ir::AggFunc func) {
  switch (func) {
    case ir::AggFunc::kCount:
      return relational::AggKind::kCount;
    case ir::AggFunc::kSum:
      return relational::AggKind::kSum;
    case ir::AggFunc::kAvg:
      return relational::AggKind::kAvg;
    case ir::AggFunc::kMin:
      return relational::AggKind::kMin;
    case ir::AggFunc::kMax:
      return relational::AggKind::kMax;
  }
  return relational::AggKind::kCount;
}

}  // namespace

std::vector<relational::AggregateSpec> ToAggregateSpecs(
    const std::vector<ir::AggregateItem>& items) {
  std::vector<relational::AggregateSpec> specs;
  specs.reserve(items.size());
  for (const auto& item : items) {
    specs.push_back(relational::AggregateSpec{ToAggKind(item.func),
                                              item.column,
                                              item.output_name});
  }
  return specs;
}

relational::GroupBySpec ToGroupBySpec(const ir::IrNode& node) {
  relational::GroupBySpec spec;
  spec.keys = node.group_keys;
  spec.aggs = ToAggregateSpecs(node.aggregates);
  return spec;
}

std::vector<relational::SortSpec> ToSortSpecs(
    const std::vector<ir::SortKey>& keys) {
  std::vector<relational::SortSpec> specs;
  specs.reserve(keys.size());
  for (const auto& key : keys) {
    specs.push_back(relational::SortSpec{key.column, key.descending});
  }
  return specs;
}

Result<OperatorPtr> BuildPhysicalPlan(const IrNode& node,
                                      const RuntimeContext& ctx) {
  // Subtrees executed by an earlier pipeline (aggregate results) enter the
  // current pipeline as scans of their materialized table.
  if (ctx.parallel != nullptr) {
    auto it = ctx.parallel->materialized.find(&node);
    if (it != ctx.parallel->materialized.end()) {
      return Instrument(MakeScan(it->second, node, ctx), node,
                        "Materialized(" +
                            std::string(ir::IrOpKindToString(node.kind)) +
                            ")",
                        ctx);
    }
  }
  // Fusion: a run of >= 2 consecutive filter/project/PREDICT nodes lowers
  // to one FusedOperator doing a single pass per chunk instead of one
  // operator boundary (and one chunk copy) per node.
  if (ir::IsFusablePipelineKind(node.kind)) {
    std::vector<const IrNode*> chain = CollectFusedChain(node, ctx);
    if (chain.size() >= 2) return BuildFusedChain(node, chain, ctx);
  }
  switch (node.kind) {
    case IrOpKind::kTableScan: {
      if (auto disk = DiskTableFor(node, ctx); disk != nullptr) {
        return Instrument(MakeDiskScan(std::move(disk), node, ctx, {}), node,
                          "DiskScan(" + node.table_name + ")", ctx);
      }
      RAVEN_ASSIGN_OR_RETURN(const relational::Table* table,
                             ctx.catalog->GetTable(node.table_name));
      return Instrument(MakeScan(table, node, ctx), node,
                        "Scan(" + node.table_name + ")", ctx);
    }
    case IrOpKind::kFilter: {
      const IrNode& below = *node.children[0];
      if (auto disk = DiskTableFor(below, ctx); disk != nullptr) {
        // Filter directly over a disk scan (too short a run to fuse):
        // push its range conjuncts down as zone-map inputs. The filter
        // still evaluates every surviving block, so pushdown is an I/O
        // optimization, never a semantic change.
        auto scan = Instrument(
            MakeDiskScan(std::move(disk), below, ctx,
                         ZoneConjuncts(*node.predicate)),
            below, "DiskScan(" + below.table_name + ")", ctx);
        return Instrument(std::make_unique<relational::FilterOperator>(
                              std::move(scan), node.predicate->Clone()),
                          node, "Filter", ctx);
      }
      RAVEN_ASSIGN_OR_RETURN(auto child,
                             BuildPhysicalPlan(*node.children[0], ctx));
      return Instrument(std::make_unique<relational::FilterOperator>(
                            std::move(child), node.predicate->Clone()),
                        node, "Filter", ctx);
    }
    case IrOpKind::kProject: {
      RAVEN_ASSIGN_OR_RETURN(auto child,
                             BuildPhysicalPlan(*node.children[0], ctx));
      std::vector<relational::ExprPtr> exprs;
      exprs.reserve(node.proj_exprs.size());
      for (const auto& e : node.proj_exprs) exprs.push_back(e->Clone());
      return Instrument(std::make_unique<relational::ProjectOperator>(
                            std::move(child), std::move(exprs),
                            node.proj_names),
                        node, "Project", ctx);
    }
    case IrOpKind::kAggregate: {
      RAVEN_ASSIGN_OR_RETURN(auto child,
                             BuildPhysicalPlan(*node.children[0], ctx));
      if (ctx.parallel != nullptr) {
        auto it = ctx.parallel->agg_sinks.find(&node);
        if (it != ctx.parallel->agg_sinks.end()) {
          // Partial sink: emits nothing; the executor renders the final
          // row. The worker id keys this worker's partial deposit so the
          // final merge folds workers in a fixed ascending order.
          return Instrument(std::make_unique<relational::AggregateOperator>(
                                std::move(child), it->second, ctx.worker_id),
                            node, "Aggregate", ctx);
        }
      }
      return Instrument(std::make_unique<relational::AggregateOperator>(
                            std::move(child), ToAggregateSpecs(node.aggregates)),
                        node, "Aggregate", ctx);
    }
    case IrOpKind::kGroupBy: {
      RAVEN_ASSIGN_OR_RETURN(auto child,
                             BuildPhysicalPlan(*node.children[0], ctx));
      if (ctx.parallel != nullptr) {
        auto it = ctx.parallel->group_sinks.find(&node);
        if (it != ctx.parallel->group_sinks.end()) {
          // Partial sink: pre-aggregates thread-locally and emits nothing;
          // the executor renders the merged table.
          return Instrument(std::make_unique<relational::GroupByOperator>(
                                std::move(child), it->second),
                            node, "GroupBy", ctx);
        }
        return Status::Internal(
            "parallel GroupBy reached without a sink or materialization");
      }
      return Instrument(std::make_unique<relational::GroupByOperator>(
                            std::move(child), ToGroupBySpec(node)),
                        node, "GroupBy", ctx);
    }
    case IrOpKind::kOrderBy: {
      if (ctx.parallel != nullptr) {
        // The parallel executor materializes every OrderBy subtree before
        // building worker trees; sorting a single worker's partial stream
        // would be wrong.
        return Status::Internal(
            "parallel OrderBy reached without materialization");
      }
      RAVEN_ASSIGN_OR_RETURN(auto child,
                             BuildPhysicalPlan(*node.children[0], ctx));
      return Instrument(std::make_unique<relational::SortOperator>(
                            std::move(child), ToSortSpecs(node.sort_keys)),
                        node, "Sort", ctx);
    }
    case IrOpKind::kJoin: {
      RAVEN_ASSIGN_OR_RETURN(auto left,
                             BuildPhysicalPlan(*node.children[0], ctx));
      if (ctx.parallel != nullptr) {
        auto it = ctx.parallel->join_builds.find(&node);
        if (it != ctx.parallel->join_builds.end()) {
          // Probe-only: the shared build pipeline already ran and finalized.
          return Instrument(std::make_unique<relational::HashJoinOperator>(
                                std::move(left), node.left_key, it->second),
                            node, "HashJoin", ctx);
        }
      }
      RAVEN_ASSIGN_OR_RETURN(auto right,
                             BuildPhysicalPlan(*node.children[1], ctx));
      return Instrument(std::make_unique<relational::HashJoinOperator>(
                            std::move(left), std::move(right), node.left_key,
                            node.right_key),
                        node, "HashJoin", ctx);
    }
    case IrOpKind::kUnionAll: {
      std::vector<OperatorPtr> children;
      for (const auto& child : node.children) {
        RAVEN_ASSIGN_OR_RETURN(auto op, BuildPhysicalPlan(*child, ctx));
        children.push_back(std::move(op));
      }
      return Instrument(std::make_unique<relational::UnionAllOperator>(
                            std::move(children)),
                        node, "UnionAll", ctx);
    }
    case IrOpKind::kLimit: {
      RAVEN_ASSIGN_OR_RETURN(auto child,
                             BuildPhysicalPlan(*node.children[0], ctx));
      return Instrument(std::make_unique<relational::LimitOperator>(
                            std::move(child), node.limit),
                        node, "Limit", ctx);
    }
    case IrOpKind::kModelPipeline:
    case IrOpKind::kClusteredPredict:
    case IrOpKind::kNnGraph:
    case IrOpKind::kOpaquePipeline: {
      RAVEN_ASSIGN_OR_RETURN(auto child,
                             BuildPhysicalPlan(*node.children[0], ctx));
      RAVEN_ASSIGN_OR_RETURN(auto scorer, ScorerFor(node, ctx));
      return Instrument(std::make_unique<relational::PredictOperator>(
                            std::move(child), node.model_input_columns,
                            node.output_column, std::move(scorer)),
                        node, "Predict(" + node.model_name + ")", ctx);
    }
  }
  return Status::Internal("unreachable IR kind in BuildPhysicalPlan");
}

void StatsCollector::AddPredictBatch(std::int64_t rows,
                                     const nnrt::RunStats* nn_stats) {
  predict_batches_.fetch_add(1, std::memory_order_relaxed);
  rows_out_.fetch_add(rows, std::memory_order_relaxed);
  if (nn_stats != nullptr) {
    AtomicAddDouble(&nn_wall_micros_, nn_stats->wall_micros);
    AtomicAddDouble(&nn_simulated_micros_, nn_stats->simulated_micros);
  }
}

relational::OperatorStatsSlot* StatsCollector::SlotFor(
    const void* node, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(node, name);
  auto it = by_node_.find(key);
  if (it != by_node_.end()) return it->second;
  slots_.emplace_back();
  slots_.back().name = name;
  slots_.back().node = node;
  relational::OperatorStatsSlot* slot = &slots_.back().slot;
  by_node_[key] = slot;
  return slot;
}

void StatsCollector::Finalize(ExecutionStats* out) const {
  out->rows_out = rows_out_.load(std::memory_order_relaxed);
  out->predict_batches = predict_batches_.load(std::memory_order_relaxed);
  out->nn_wall_micros = nn_wall_micros_.load(std::memory_order_relaxed);
  out->nn_simulated_micros =
      nn_simulated_micros_.load(std::memory_order_relaxed);
  out->partitions_used = partitions_used.load(std::memory_order_relaxed);
  out->morsels = morsels.load(std::memory_order_relaxed);
  out->frames_sent = frames_sent.load(std::memory_order_relaxed);
  out->bytes_shipped = bytes_shipped.load(std::memory_order_relaxed);
  out->worker_restarts = worker_restarts.load(std::memory_order_relaxed);
  out->fused_chains = fused_chains.load(std::memory_order_relaxed);
  out->blocks_scanned = blocks_scanned.load(std::memory_order_relaxed);
  out->blocks_skipped = blocks_skipped.load(std::memory_order_relaxed);
  out->operators.clear();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : slots_) {
    OperatorStats op;
    op.op = entry.name;
    op.node = entry.node;
    op.rows = entry.slot.rows.load(std::memory_order_relaxed);
    op.chunks = entry.slot.chunks.load(std::memory_order_relaxed);
    op.wall_micros =
        static_cast<double>(
            entry.slot.wall_nanos.load(std::memory_order_relaxed)) /
        1000.0;
    op.open_micros =
        static_cast<double>(
            entry.slot.open_nanos.load(std::memory_order_relaxed)) /
        1000.0;
    out->operators.push_back(std::move(op));
  }
}

namespace {

void GenerateSqlNode(const IrNode& node, std::ostringstream* os) {
  switch (node.kind) {
    case IrOpKind::kTableScan:
      *os << node.table_name;
      return;
    case IrOpKind::kFilter:
      *os << "(SELECT * FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << " WHERE " << node.predicate->ToString() << ")";
      return;
    case IrOpKind::kProject: {
      *os << "(SELECT ";
      for (std::size_t i = 0; i < node.proj_names.size(); ++i) {
        if (i > 0) *os << ", ";
        const std::string expr = node.proj_exprs[i]->ToString();
        if (expr == node.proj_names[i]) {
          *os << expr;
        } else {
          *os << expr << " AS " << node.proj_names[i];
        }
      }
      *os << " FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << ")";
      return;
    }
    case IrOpKind::kJoin:
      *os << "(SELECT * FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << " JOIN ";
      GenerateSqlNode(*node.children[1], os);
      *os << " ON " << node.left_key << " = " << node.right_key << ")";
      return;
    case IrOpKind::kUnionAll: {
      *os << "(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) *os << " UNION ALL ";
        *os << "SELECT * FROM ";
        GenerateSqlNode(*node.children[i], os);
      }
      *os << ")";
      return;
    }
    case IrOpKind::kLimit:
      *os << "(SELECT * FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << " LIMIT " << node.limit << ")";
      return;
    case IrOpKind::kAggregate: {
      *os << "(SELECT ";
      for (std::size_t i = 0; i < node.aggregates.size(); ++i) {
        if (i > 0) *os << ", ";
        const auto& agg = node.aggregates[i];
        *os << ir::AggFuncToString(agg.func) << "("
            << (agg.column.empty() ? "*" : agg.column) << ") AS "
            << agg.output_name;
      }
      *os << " FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << ")";
      return;
    }
    case IrOpKind::kGroupBy: {
      *os << "(SELECT ";
      for (std::size_t i = 0; i < node.group_keys.size(); ++i) {
        if (i > 0) *os << ", ";
        *os << node.group_keys[i];
      }
      for (const auto& agg : node.aggregates) {
        *os << ", " << ir::AggFuncToString(agg.func) << "("
            << (agg.column.empty() ? "*" : agg.column) << ") AS "
            << agg.output_name;
      }
      *os << " FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << " GROUP BY ";
      for (std::size_t i = 0; i < node.group_keys.size(); ++i) {
        if (i > 0) *os << ", ";
        *os << node.group_keys[i];
      }
      *os << ")";
      return;
    }
    case IrOpKind::kOrderBy:
      *os << "(SELECT * FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << " ORDER BY ";
      for (std::size_t i = 0; i < node.sort_keys.size(); ++i) {
        if (i > 0) *os << ", ";
        *os << node.sort_keys[i].column
            << (node.sort_keys[i].descending ? " DESC" : " ASC");
      }
      *os << ")";
      return;
    case IrOpKind::kModelPipeline:
    case IrOpKind::kClusteredPredict:
    case IrOpKind::kNnGraph:
    case IrOpKind::kOpaquePipeline: {
      const char* runtime = node.kind == IrOpKind::kNnGraph
                                ? "NNRT"
                                : (node.kind == IrOpKind::kOpaquePipeline
                                       ? "EXTERNAL"
                                       : "CLASSICAL");
      *os << "(SELECT *, PREDICT(MODEL='" << node.model_name
          << "', RUNTIME='" << runtime << "') AS " << node.output_column
          << " FROM ";
      GenerateSqlNode(*node.children[0], os);
      *os << ")";
      return;
    }
  }
}

}  // namespace

std::string GenerateSql(const IrNode& node) {
  std::ostringstream os;
  os << "SELECT * FROM ";
  GenerateSqlNode(node, &os);
  return os.str();
}

namespace {

/// Kind-only chain walk mirroring BuildPhysicalPlan's detection (EXPLAIN
/// runs before execution, so there is no materialization state to consult —
/// and only non-fusable breakers ever materialize anyway).
void DescribeFusedChainsNode(const IrNode& node, std::ostringstream* os) {
  if (ir::IsFusablePipelineKind(node.kind)) {
    std::vector<const IrNode*> chain;
    const IrNode* cur = &node;
    while (ir::IsFusablePipelineKind(cur->kind)) {
      chain.push_back(cur);
      cur = cur->children[0].get();
    }
    if (chain.size() >= 2) *os << FusedChainLabel(chain) << "\n";
    DescribeFusedChainsNode(*cur, os);
    return;
  }
  for (const auto& child : node.children) {
    DescribeFusedChainsNode(*child, os);
  }
}

}  // namespace

std::string DescribeFusedChains(const IrNode& node) {
  std::ostringstream os;
  DescribeFusedChainsNode(node, &os);
  return os.str();
}

namespace {

void DescribeBatchablePredictsNode(const IrNode& node, std::ostringstream* os) {
  if (node.kind == ir::IrOpKind::kNnGraph) {
    *os << "Predict(" << node.model_name << ") -> " << node.output_column
        << " [NNRT graph]\n";
  }
  for (const auto& child : node.children) {
    DescribeBatchablePredictsNode(*child, os);
  }
}

}  // namespace

std::string DescribeBatchablePredicts(const IrNode& node) {
  std::ostringstream os;
  DescribeBatchablePredictsNode(node, &os);
  return os.str();
}

namespace {

const char* CompareOpSql(relational::CompareOp op) {
  switch (op) {
    case relational::CompareOp::kEq: return "=";
    case relational::CompareOp::kNe: return "<>";
    case relational::CompareOp::kLt: return "<";
    case relational::CompareOp::kLe: return "<=";
    case relational::CompareOp::kGt: return ">";
    case relational::CompareOp::kGe: return ">=";
  }
  return "?";
}

/// Mirrors the pushdown BuildPhysicalPlan performs: conjuncts from the
/// contiguous run of filters directly above a disk scan. `preds` carries
/// that run's conjuncts down; every other operator kind resets it.
void DescribeStorageScansNode(const IrNode& node,
                              const relational::Catalog& catalog,
                              std::vector<relational::SimplePredicate> preds,
                              std::ostringstream* os) {
  if (node.kind == IrOpKind::kTableScan) {
    auto disk = catalog.GetDiskTable(node.table_name);
    if (!disk.ok()) return;
    *os << "DiskScan(" << node.table_name << "): " << (*disk)->Describe()
        << "\n";
    if (!preds.empty()) {
      *os << "  zone-map conjuncts:";
      for (const auto& p : preds) {
        std::ostringstream constant;
        constant << p.constant;
        *os << " " << p.column << " " << CompareOpSql(p.op) << " "
            << constant.str() << ";";
      }
      *os << "\n";
    }
    return;
  }
  if (node.kind == IrOpKind::kFilter && node.predicate != nullptr) {
    std::vector<relational::SimplePredicate> conjuncts =
        ZoneConjuncts(*node.predicate);
    preds.insert(preds.end(), conjuncts.begin(), conjuncts.end());
    DescribeStorageScansNode(*node.children[0], catalog, std::move(preds),
                             os);
    return;
  }
  for (const auto& child : node.children) {
    DescribeStorageScansNode(*child, catalog, {}, os);
  }
}

}  // namespace

std::string DescribeStorageScans(const IrNode& node,
                                 const relational::Catalog& catalog) {
  std::ostringstream os;
  DescribeStorageScansNode(node, catalog, {}, &os);
  return os.str();
}

}  // namespace raven::runtime
