// In-text number, §5 observation (v): batch inference gains about an order
// of magnitude over one-prediction-per-tuple scoring. We score a fixed
// 100K-row workload through the NN-translated hospital forest at different
// batch sizes and report per-row cost.

#include "bench_util.h"
#include "nnrt/session.h"
#include "optimizer/converters.h"

namespace raven {
namespace {

constexpr std::int64_t kTotalRows = 100000;

void BM_BatchSize(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  static auto* session = [] {
    auto model = bench::Must(
        data::TrainHospitalForest(bench::Hospital(20000), 10, 8), "train");
    nnrt::Graph graph =
        bench::Must(optimizer::PipelineToNnGraph(model), "translate");
    return new std::unique_ptr<nnrt::InferenceSession>(bench::Must(
        nnrt::InferenceSession::Create(std::move(graph)), "session"));
  }();
  static auto* input = new Tensor(bench::Must(
      bench::Hospital(kTotalRows).joined.ToTensor(
          bench::Must(data::TrainHospitalForest(bench::Hospital(20000), 10,
                                                8),
                      "train")
              .input_columns),
      "tensor"));
  for (auto _ : state) {
    for (std::int64_t begin = 0; begin < kTotalRows; begin += batch) {
      const std::int64_t end = std::min(kTotalRows, begin + batch);
      auto slice = input->SliceRows(begin, end);
      auto preds = (*session)->RunSingle(*slice);
      benchmark::DoNotOptimize(preds);
    }
  }
  state.counters["batch"] = static_cast<double>(batch);
  state.SetItemsProcessed(state.iterations() * kTotalRows);
}

BENCHMARK(BM_BatchSize)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace raven
