#ifndef RAVEN_RELATIONAL_STATISTICS_H_
#define RAVEN_RELATIONAL_STATISTICS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/status.h"
#include "relational/table.h"

namespace raven::relational {

/// Per-column summary statistics used by data-property-derived predicate
/// pruning (paper §4.1: "Using data statistics, we might observe that only
/// specific unique values appear in the data ... we can derive predicates")
/// and by the storage layer as per-block zone maps.
///
/// min/max cover FINITE values only: NaN compares false against everything
/// (so std::min/std::max would silently poison the range) and ±inf would
/// make any derived range predicate vacuous. Non-finite values are counted
/// separately; consumers that derive or evaluate range predicates MUST
/// check `has_non_finite` before trusting min/max (a NaN row fails every
/// range comparison, so a block whose finite range excludes the predicate
/// may still hold rows a `<>` — or no predicate at all — would keep).
struct ColumnStats {
  /// Range of the finite values (meaningless when num_rows == nan_count +
  /// inf count, i.e. no finite value was seen; see has_finite()).
  double min = 0.0;
  double max = 0.0;
  std::int64_t num_rows = 0;
  /// Rows whose value is NaN (the engine's null sentinel in CSV ingest).
  std::int64_t nan_count = 0;
  /// Rows whose value is NaN or ±inf.
  std::int64_t non_finite_count = 0;
  /// True when any row is NaN or ±inf. Zone-map skipping and predicate
  /// derivation must treat such columns as unbounded.
  bool has_non_finite = false;
  /// Number of distinct values, tracked exactly up to a small cap
  /// (past the cap the column is treated as high-cardinality). NaNs are
  /// collapsed into a single distinct value.
  std::int64_t distinct = 0;
  bool distinct_exact = true;
  /// Set when the column holds a single FINITE value across all rows.
  std::optional<double> constant;

  /// True when at least one finite value contributed to min/max.
  bool has_finite() const { return num_rows > non_finite_count; }
};

/// Computes stats for one column (single pass).
ColumnStats ComputeColumnStats(const Column& column);

/// Computes stats for every column of a table.
std::map<std::string, ColumnStats> ComputeTableStats(const Table& table);

}  // namespace raven::relational

#endif  // RAVEN_RELATIONAL_STATISTICS_H_
