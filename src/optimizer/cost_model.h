#ifndef RAVEN_OPTIMIZER_COST_MODEL_H_
#define RAVEN_OPTIMIZER_COST_MODEL_H_

#include <cstdint>

#include "common/status.h"
#include "ir/ir.h"
#include "relational/catalog.h"

namespace raven::optimizer {

/// Cardinality and cost estimate for a plan subtree. Units are abstract
/// "work units" (roughly: one scalar op). This is the seed of the paper's
/// planned cost-based Cascades optimizer (§4.3): the heuristic pipeline
/// uses it today to choose between model inlining and NN translation, and
/// EXPLAIN surfaces it.
struct PlanCost {
  double output_rows = 0.0;
  double total_cost = 0.0;
};

/// Per-row scoring cost of a model pipeline (featurization + predictor).
double PipelineRowCost(const ml::ModelPipeline& pipeline);

/// Static per-row cost of an NNRT graph (sum of kernel flop estimates for a
/// single-row batch).
double NnGraphRowCost(const nnrt::Graph& graph);

/// Estimates cardinality and cost bottom-up. Filters use a fixed 0.4
/// selectivity unless the predicate is a conjunction (0.4 per conjunct);
/// joins assume key-FK matches (|left| rows out).
///
/// `parallelism` > 1 costs the plan as the morsel-driven parallel executor
/// runs it: scans, filters, projections, model scoring, join build/probe
/// and aggregate accumulation divide across workers, while per-worker
/// startup, the ordered result merge, and any subtree under a LIMIT (which
/// executes sequentially) do not. This keeps the optimizer honest about
/// plans that parallelize well versus ones that are merge- or
/// startup-bound.
Result<PlanCost> EstimateCost(const ir::IrNode& node,
                              const relational::Catalog& catalog,
                              std::int64_t parallelism = 1);

}  // namespace raven::optimizer

#endif  // RAVEN_OPTIMIZER_COST_MODEL_H_
