#include "ml/pipeline.h"

#include <sstream>

namespace raven::ml {

PredictorKind KindOf(const Predictor& predictor) {
  if (std::holds_alternative<DecisionTree>(predictor)) {
    return PredictorKind::kDecisionTree;
  }
  if (std::holds_alternative<RandomForest>(predictor)) {
    return PredictorKind::kRandomForest;
  }
  if (std::holds_alternative<LinearModel>(predictor)) {
    return PredictorKind::kLinearModel;
  }
  return PredictorKind::kMlp;
}

const char* PredictorKindToString(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kDecisionTree:
      return "DecisionTree";
    case PredictorKind::kRandomForest:
      return "RandomForest";
    case PredictorKind::kLinearModel:
      return "LinearModel";
    case PredictorKind::kMlp:
      return "MLP";
  }
  return "?";
}

Result<Tensor> PredictWith(const Predictor& predictor,
                           const Tensor& features) {
  return std::visit(
      [&](const auto& model) -> Result<Tensor> {
        return model.Predict(features);
      },
      predictor);
}

Result<Tensor> ModelPipeline::Predict(const Tensor& x) const {
  if (featurizer.branches().empty()) {
    return PredictWith(predictor, x);
  }
  RAVEN_ASSIGN_OR_RETURN(Tensor features, featurizer.Transform(x));
  return PredictWith(predictor, features);
}

Result<float> ModelPipeline::PredictRow(const float* row,
                                        std::int64_t width) const {
  // Row-at-a-time path: featurize a 1-row tensor, then walk the predictor.
  RAVEN_ASSIGN_OR_RETURN(
      Tensor one_row,
      Tensor::FromData({1, width},
                       std::vector<float>(row, row + width)));
  RAVEN_ASSIGN_OR_RETURN(Tensor pred, Predict(one_row));
  return pred.raw()[0];
}

std::int64_t ModelPipeline::NumFeatures() const {
  if (!featurizer.branches().empty()) return featurizer.OutputWidth();
  return std::visit(
      [](const auto& model) -> std::int64_t { return model.num_features(); },
      predictor);
}

std::string ModelPipeline::Summary() const {
  std::ostringstream os;
  os << "ModelPipeline(inputs=" << input_columns.size()
     << ", features=" << NumFeatures()
     << ", predictor=" << PredictorKindToString(KindOf(predictor)) << ")";
  return os.str();
}

void ModelPipeline::Serialize(BinaryWriter* writer) const {
  writer->WriteString("RAVEN_ML_PIPELINE_V1");
  writer->WriteStringVector(input_columns);
  featurizer.Serialize(writer);
  writer->WriteU8(static_cast<std::uint8_t>(KindOf(predictor)));
  std::visit([&](const auto& model) { model.Serialize(writer); }, predictor);
}

Result<ModelPipeline> ModelPipeline::Deserialize(BinaryReader* reader) {
  RAVEN_ASSIGN_OR_RETURN(std::string magic, reader->ReadString());
  if (magic != "RAVEN_ML_PIPELINE_V1") {
    return Status::ParseError("bad model pipeline magic");
  }
  ModelPipeline p;
  RAVEN_ASSIGN_OR_RETURN(p.input_columns, reader->ReadStringVector());
  RAVEN_ASSIGN_OR_RETURN(p.featurizer, Featurizer::Deserialize(reader));
  RAVEN_ASSIGN_OR_RETURN(std::uint8_t kind, reader->ReadU8());
  switch (static_cast<PredictorKind>(kind)) {
    case PredictorKind::kDecisionTree: {
      RAVEN_ASSIGN_OR_RETURN(auto m, DecisionTree::Deserialize(reader));
      p.predictor = std::move(m);
      break;
    }
    case PredictorKind::kRandomForest: {
      RAVEN_ASSIGN_OR_RETURN(auto m, RandomForest::Deserialize(reader));
      p.predictor = std::move(m);
      break;
    }
    case PredictorKind::kLinearModel: {
      RAVEN_ASSIGN_OR_RETURN(auto m, LinearModel::Deserialize(reader));
      p.predictor = std::move(m);
      break;
    }
    case PredictorKind::kMlp: {
      RAVEN_ASSIGN_OR_RETURN(auto m, Mlp::Deserialize(reader));
      p.predictor = std::move(m);
      break;
    }
    default:
      return Status::ParseError("bad predictor kind tag");
  }
  return p;
}

std::string ModelPipeline::ToBytes() const {
  BinaryWriter writer;
  Serialize(&writer);
  return writer.Release();
}

Result<ModelPipeline> ModelPipeline::FromBytes(const std::string& bytes) {
  BinaryReader reader(bytes);
  return Deserialize(&reader);
}

}  // namespace raven::ml
