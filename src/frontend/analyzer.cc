#include "frontend/analyzer.h"

#include "common/timer.h"
#include "frontend/sql_parser.h"
#include "ml/pipeline.h"

namespace raven::frontend {
namespace {

/// Maps an estimator callable from the knowledge base to the predictor
/// family it must correspond to in the trained pipeline.
Result<ml::PredictorKind> PredictorKindFor(const std::string& callable) {
  if (callable == "DecisionTreeClassifier" ||
      callable == "DecisionTreeRegressor") {
    return ml::PredictorKind::kDecisionTree;
  }
  if (callable == "RandomForestClassifier" ||
      callable == "RandomForestRegressor") {
    return ml::PredictorKind::kRandomForest;
  }
  if (callable == "LogisticRegression" || callable == "LinearRegression" ||
      callable == "Lasso") {
    return ml::PredictorKind::kLinearModel;
  }
  if (callable == "MLPClassifier" || callable == "MLPRegressor") {
    return ml::PredictorKind::kMlp;
  }
  return Status::InvalidArgument("estimator '" + callable +
                                 "' not in knowledge base");
}

Result<ml::TransformKind> TransformKindFor(const std::string& callable) {
  if (callable == "StandardScaler") return ml::TransformKind::kScaler;
  if (callable == "OneHotEncoder") return ml::TransformKind::kOneHot;
  if (callable == "passthrough" || callable == "ColumnSelector") {
    return ml::TransformKind::kIdentity;
  }
  return Status::InvalidArgument("transform '" + callable +
                                 "' not in knowledge base");
}

}  // namespace

Status StaticAnalyzer::CheckSpecMatchesPipeline(
    const PipelineSpec& spec, const ml::ModelPipeline& pipeline) {
  RAVEN_ASSIGN_OR_RETURN(ml::PredictorKind expected_kind,
                         PredictorKindFor(spec.predictor_callable));
  if (ml::KindOf(pipeline.predictor) != expected_kind) {
    return Status::InvalidArgument(
        "script declares " + spec.predictor_callable +
        " but stored pipeline has " +
        ml::PredictorKindToString(ml::KindOf(pipeline.predictor)));
  }
  const auto& branches = pipeline.featurizer.branches();
  if (!spec.branches.empty() && spec.branches.size() != branches.size()) {
    return Status::InvalidArgument(
        "script declares " + std::to_string(spec.branches.size()) +
        " featurizer branches; stored pipeline has " +
        std::to_string(branches.size()));
  }
  for (std::size_t b = 0; b < spec.branches.size(); ++b) {
    RAVEN_ASSIGN_OR_RETURN(ml::TransformKind kind,
                           TransformKindFor(spec.branches[b].callable));
    if (branches[b].kind != kind) {
      return Status::InvalidArgument(
          "featurizer branch " + std::to_string(b) + " ('" +
          spec.branches[b].step_name + "') kind mismatch");
    }
    // Column-name binding: script columns must exist in the pipeline's
    // declared input columns and match the branch's column indices.
    for (std::size_t c = 0; c < spec.branches[b].columns.size(); ++c) {
      const std::string& name = spec.branches[b].columns[c];
      std::int64_t idx = -1;
      for (std::size_t i = 0; i < pipeline.input_columns.size(); ++i) {
        if (pipeline.input_columns[i] == name) {
          idx = static_cast<std::int64_t>(i);
          break;
        }
      }
      if (idx < 0) {
        return Status::InvalidArgument("script column '" + name +
                                       "' not among pipeline inputs");
      }
      if (c < branches[b].input_columns.size() &&
          branches[b].input_columns[c] != idx) {
        return Status::InvalidArgument("script column '" + name +
                                       "' bound to a different index than "
                                       "the trained branch");
      }
    }
  }
  return Status::OK();
}

Result<ir::IrNodePtr> StaticAnalyzer::BuildModelNode(
    const std::string& model_name, ir::IrNodePtr data,
    const std::string& output_column, AnalysisStats* stats) const {
  Timer timer;
  RAVEN_ASSIGN_OR_RETURN(relational::StoredModel stored,
                         catalog_->GetModel(model_name));
  auto pipeline_result = ml::ModelPipeline::FromBytes(stored.pipeline_bytes);
  if (!pipeline_result.ok()) {
    return pipeline_result.status();  // corrupt store is a hard error
  }
  auto pipeline =
      std::make_shared<ml::ModelPipeline>(std::move(pipeline_result).value());

  // Script analysis; any failure downgrades to the UDF/opaque path rather
  // than failing the query (paper §3.1 "UDFs").
  std::string fallback_reason;
  do {
    auto script = ParsePipelineScript(stored.script);
    if (!script.ok()) {
      fallback_reason = script.status().message();
      break;
    }
    auto spec = ExtractPipelineSpec(script.value());
    if (!spec.ok()) {
      fallback_reason = spec.status().message();
      break;
    }
    Status match = CheckSpecMatchesPipeline(spec.value(), *pipeline);
    if (!match.ok()) {
      fallback_reason = match.message();
      break;
    }
    if (stats != nullptr) {
      stats->script_analysis_micros = timer.ElapsedMicros();
      stats->used_udf_fallback = false;
    }
    std::vector<std::string> input_columns = pipeline->input_columns;
    return ir::IrNode::ModelPipelineNode(std::move(data), model_name,
                                         std::move(pipeline),
                                         std::move(input_columns),
                                         output_column);
  } while (false);

  if (stats != nullptr) {
    stats->script_analysis_micros = timer.ElapsedMicros();
    stats->used_udf_fallback = true;
    stats->fallback_reason = fallback_reason;
  }
  return ir::IrNode::OpaquePipeline(std::move(data), model_name,
                                    stored.pipeline_bytes, fallback_reason,
                                    pipeline->input_columns, output_column);
}

Result<ir::IrPlan> StaticAnalyzer::Analyze(const std::string& sql,
                                           AnalysisStats* stats) const {
  Timer timer;
  ModelNodeBuilder builder = [this, stats](const std::string& model_name,
                                           ir::IrNodePtr data,
                                           const std::string& output_column) {
    return BuildModelNode(model_name, std::move(data), output_column, stats);
  };
  RAVEN_ASSIGN_OR_RETURN(ir::IrPlan plan,
                         ParseInferenceQuery(sql, *catalog_, builder));
  RAVEN_RETURN_IF_ERROR(plan.Validate(*catalog_));
  if (stats != nullptr) {
    stats->sql_parse_micros =
        timer.ElapsedMicros() - stats->script_analysis_micros;
  }
  return plan;
}

}  // namespace raven::frontend
