#include "ir/clustered_model.h"

namespace raven::ir {

Result<Tensor> ClusteredModel::Predict(const Tensor& x) const {
  if (x.rank() != 2) {
    return Status::InvalidArgument("ClusteredModel::Predict expects [n, d]");
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t d = x.dim(1);
  if (d != static_cast<std::int64_t>(fallback.input_columns.size())) {
    return Status::InvalidArgument(
        "ClusteredModel input width mismatch: got " + std::to_string(d));
  }
  // Group rows by cluster, score each group with its specialized model,
  // then scatter back. Grouping preserves the batch efficiency that makes
  // clustering worthwhile. Group k is the fallback bucket (no precompiled
  // model or violated assumption).
  std::vector<float> routing_row(routing_columns.size());
  std::vector<std::vector<std::int64_t>> groups(
      static_cast<std::size_t>(router.k()) + 1);
  const std::size_t fallback_group = static_cast<std::size_t>(router.k());
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::size_t j = 0; j < routing_columns.size(); ++j) {
      routing_row[j] = x.raw()[r * d + routing_columns[j]];
    }
    std::size_t c = static_cast<std::size_t>(router.AssignRow(
        routing_row.data(), static_cast<std::int64_t>(routing_row.size())));
    if (c >= cluster_models.size()) {
      c = fallback_group;
    } else if (c < assumptions.size()) {
      for (const auto& [col, value] : assumptions[c]) {
        if (x.raw()[r * d + col] != static_cast<float>(value)) {
          c = fallback_group;
          break;
        }
      }
    }
    if (c != fallback_group && c < allowed_values.size()) {
      for (const auto& [col, values] : allowed_values[c]) {
        const float v = x.raw()[r * d + col];
        bool found = false;
        for (double allowed : values) {
          if (v == static_cast<float>(allowed)) {
            found = true;
            break;
          }
        }
        if (!found) {
          c = fallback_group;
          break;
        }
      }
    }
    groups[c].push_back(r);
  }

  Tensor out = Tensor::Zeros({n, 1});
  for (std::size_t c = 0; c < groups.size(); ++c) {
    const auto& rows = groups[c];
    if (rows.empty()) continue;
    const ml::ModelPipeline& model =
        c < cluster_models.size() ? cluster_models[c] : fallback;
    // Specialized models may consume a subset of the raw columns; map their
    // input names back to positions in the full-width row.
    std::vector<std::int64_t> col_map;
    col_map.reserve(model.input_columns.size());
    for (const auto& name : model.input_columns) {
      std::int64_t idx = -1;
      for (std::size_t i = 0; i < fallback.input_columns.size(); ++i) {
        if (fallback.input_columns[i] == name) {
          idx = static_cast<std::int64_t>(i);
          break;
        }
      }
      if (idx < 0) {
        return Status::Internal("cluster model input '" + name +
                                "' missing from original inputs");
      }
      col_map.push_back(idx);
    }
    const std::int64_t dm = static_cast<std::int64_t>(col_map.size());
    Tensor sub = Tensor::Zeros({static_cast<std::int64_t>(rows.size()), dm});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::int64_t j = 0; j < dm; ++j) {
        sub.raw()[static_cast<std::int64_t>(i) * dm + j] =
            x.raw()[rows[i] * d + col_map[static_cast<std::size_t>(j)]];
      }
    }
    RAVEN_ASSIGN_OR_RETURN(Tensor preds, model.Predict(sub));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out.raw()[rows[i]] = preds.raw()[i];
    }
  }
  return out;
}

}  // namespace raven::ir
