#ifndef RAVEN_SERVER_PLAN_CACHE_H_
#define RAVEN_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ir/ir.h"

namespace raven::server {

/// Cache observability counters (SHOW STATS / bench assertions).
struct PlanCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  /// Entries dropped because the catalog version moved underneath them
  /// (a table registration or model INSERT/UPDATE/DROP since planning).
  std::int64_t invalidations = 0;
  std::int64_t entries = 0;
};

/// One cached plan: the optimized IR (shared as const — executions never
/// mutate it, so any number of sessions can run it concurrently), its
/// structural fingerprint, and the number of `?` placeholders it carries.
struct CachedPlan {
  std::shared_ptr<const ir::IrPlan> plan;
  std::uint64_t fingerprint = 0;
  std::int64_t param_count = 0;
};

/// Thread-safe LRU cache of optimized plans, keyed by caller-composed key
/// text (normalized SQL + the planning-relevant session knobs — see
/// QueryServer::PlanKey). Every entry records the catalog version it was
/// planned against: a lookup that finds the key but not the version drops
/// the entry and reports an invalidation, so a model UPDATE or new table
/// can never resurrect a plan optimized against stale metadata. This is
/// the SQL Server-style "one compilation serves every connection" layer
/// the paper's serving argument leans on — hot PREDICT statements skip
/// parse + optimize entirely.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached plan for `key` planned at `catalog_version`, or
  /// nullptr (counting a miss; a version mismatch also counts an
  /// invalidation).
  std::shared_ptr<const CachedPlan> Get(const std::string& key,
                                        std::int64_t catalog_version);

  /// Inserts (or replaces) the entry, evicting the least-recently-used one
  /// when at capacity.
  void Put(const std::string& key, std::int64_t catalog_version,
           std::shared_ptr<const CachedPlan> plan);

  /// Drops every entry (bench cold-start path). Counters survive.
  void Clear();

  PlanCacheStats stats() const;

 private:
  struct Node {
    std::shared_ptr<const CachedPlan> plan;
    std::int64_t catalog_version = 0;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<std::string> lru_;  ///< MRU-first, mirrors nnrt::SessionCache
  std::unordered_map<std::string, Node> entries_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t invalidations_ = 0;
};

}  // namespace raven::server

#endif  // RAVEN_SERVER_PLAN_CACHE_H_
