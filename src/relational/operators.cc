#include "relational/operators.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <mutex>
#include <numeric>

namespace raven::relational {

namespace {

/// Refines `chunk`'s selection vector to the rows where `mask` (computed
/// over ALL physical rows) is truthy; returns the selected count. When no
/// prior selection exists and every row passes, the selection stays empty
/// (all-rows), avoiding indirection on the common non-selective path.
std::int64_t RefineSelection(const std::vector<double>& mask,
                             DataChunk* chunk) {
  std::vector<std::int32_t> next;
  if (chunk->has_sel()) {
    next.reserve(chunk->sel.size());
    for (std::int32_t i : chunk->sel) {
      if (mask[static_cast<std::size_t>(i)] != 0.0) next.push_back(i);
    }
    chunk->sel = std::move(next);
    return static_cast<std::int64_t>(chunk->sel.size());
  }
  const auto n = static_cast<std::int32_t>(mask.size());
  next.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    if (mask[static_cast<std::size_t>(i)] != 0.0) next.push_back(i);
  }
  if (static_cast<std::int32_t>(next.size()) == n) return n;  // all selected
  chunk->sel = std::move(next);
  return static_cast<std::int64_t>(chunk->sel.size());
}

}  // namespace

ScanOperator::ScanOperator(const Table* table, std::int64_t begin,
                           std::int64_t end)
    : table_(table), begin_(begin),
      end_(end < 0 ? table->num_rows() : end) {}

ScanOperator::ScanOperator(const Table* table,
                           std::shared_ptr<MorselQueue> morsels,
                           std::int64_t order_source)
    : table_(table), begin_(0), end_(table->num_rows()),
      morsels_(std::move(morsels)), order_source_(order_source) {}

Status ScanOperator::Open() {
  cursor_ = begin_;
  if (begin_ < 0 || end_ > table_->num_rows() || begin_ > end_) {
    return Status::OutOfRange("scan range invalid");
  }
  if (morsels_ != nullptr && morsels_->total_rows() != table_->num_rows()) {
    return Status::InvalidArgument("morsel queue sized for different table");
  }
  return Status::OK();
}

void ScanOperator::EmitRows(std::int64_t begin, std::int64_t n,
                            DataChunk* out) const {
  out->names.clear();
  out->cols.clear();
  // Callers reuse one chunk across Next calls; a stale selection from the
  // previous batch must not survive into this one.
  out->sel.clear();
  out->names.reserve(static_cast<std::size_t>(table_->num_columns()));
  out->cols.reserve(static_cast<std::size_t>(table_->num_columns()));
  for (const auto& col : table_->columns()) {
    out->names.push_back(col.name);
    out->cols.emplace_back(col.data.begin() + begin,
                           col.data.begin() + begin + n);
  }
}

Result<bool> ScanOperator::Next(DataChunk* out) {
  if (morsels_ != nullptr) {
    Morsel m;
    if (!morsels_->Pop(&m)) return false;
    EmitRows(m.begin, m.end - m.begin, out);
    out->order_source = order_source_;
    out->order_morsel = m.index;
    return true;
  }
  if (cursor_ >= end_) return false;
  const std::int64_t n = std::min(kChunkSize, end_ - cursor_);
  EmitRows(cursor_, n, out);
  out->order_source = order_source_;
  out->order_morsel = (cursor_ - begin_) / kChunkSize;
  cursor_ += n;
  return true;
}

Result<std::vector<std::string>> ScanOperator::OutputColumns() const {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(table_->num_columns()));
  for (const auto& col : table_->columns()) names.push_back(col.name);
  return names;
}

Status FilterOperator::Open() {
  RAVEN_RETURN_IF_ERROR(child_->Open());
  RAVEN_ASSIGN_OR_RETURN(std::vector<std::string> schema,
                         child_->OutputColumns());
  RAVEN_ASSIGN_OR_RETURN(program_,
                         KernelProgram::Compile(*predicate_, schema,
                                                "Filter predicate"));
  return Status::OK();
}

Result<bool> FilterOperator::Next(DataChunk* out) {
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    // The compiled predicate evaluates every physical row (branch-free
    // kernels); the selection vector is then refined to survivors — no
    // column data moves while the selection stays dense. Sparse survivor
    // sets are compacted immediately: downstream kernels evaluate every
    // physical row, so an expensive expression above a selective filter
    // (e.g. an inlined decision tree) must not pay for dead rows. The
    // copy is bounded by what the pre-selection-vector filter always did.
    RAVEN_ASSIGN_OR_RETURN(const std::vector<double>* mask,
                           program_.Run(*out));
    if (RefineSelection(*mask, out) > 0) {
      if (out->num_selected() * 2 < out->num_rows()) out->FlattenSel();
      return true;
    }
    // Fully filtered; pull the next chunk.
  }
}

Status ProjectOperator::Open() {
  RAVEN_RETURN_IF_ERROR(child_->Open());
  RAVEN_ASSIGN_OR_RETURN(std::vector<std::string> schema,
                         child_->OutputColumns());
  programs_.clear();
  programs_.reserve(exprs_.size());
  for (std::size_t e = 0; e < exprs_.size(); ++e) {
    RAVEN_ASSIGN_OR_RETURN(
        KernelProgram program,
        KernelProgram::Compile(*exprs_[e], schema,
                               "Project expression '" + names_[e] + "'"));
    programs_.push_back(std::move(program));
  }
  return Status::OK();
}

Result<bool> ProjectOperator::Next(DataChunk* out) {
  RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&scratch_));
  if (!more) return false;
  out->names = names_;
  out->order_source = scratch_.order_source;
  out->order_morsel = scratch_.order_morsel;
  out->sel.clear();
  out->cols.assign(programs_.size(), {});
  for (std::size_t e = 0; e < programs_.size(); ++e) {
    RAVEN_ASSIGN_OR_RETURN(const std::vector<double>* values,
                           programs_[e].Run(scratch_));
    // Gather through the child's selection: projection doubles as the
    // compaction point after a filter, one pass per output column.
    GatherSelected(*values, scratch_.sel, &out->cols[e]);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

JoinBuildState::JoinBuildState(std::string right_key, std::int64_t num_workers)
    : right_key_(std::move(right_key)),
      buffers_(static_cast<std::size_t>(std::max<std::int64_t>(1,
                                                               num_workers))) {}

Status JoinBuildState::Append(std::int64_t worker, DataChunk chunk) {
  if (worker < 0 || worker >= static_cast<std::int64_t>(buffers_.size())) {
    return Status::InvalidArgument("join build worker id out of range");
  }
  // The build side stores physical rows; compact any pending selection so
  // FinalizeBuild's concatenation and row ids see only surviving rows.
  chunk.FlattenSel();
  buffers_[static_cast<std::size_t>(worker)].push_back(std::move(chunk));
  return Status::OK();
}

Status JoinBuildState::FinalizeBuild() {
  if (finalized_) return Status::Internal("join build finalized twice");
  // Order the chunks by morsel provenance: this is the row order a
  // sequential build would have seen, making build row ids — and therefore
  // duplicate-key probe output — deterministic regardless of which worker
  // claimed which morsel. stable_sort keeps arrival order for equal keys
  // (the sequential owning-join case, where all chunks share source 0).
  std::vector<DataChunk*> chunks;
  std::int64_t total = 0;
  for (auto& buffer : buffers_) {
    for (auto& chunk : buffer) {
      chunks.push_back(&chunk);
      total += chunk.num_rows();
    }
  }
  std::stable_sort(chunks.begin(), chunks.end(),
                   [](const DataChunk* a, const DataChunk* b) {
                     return a->order_source != b->order_source
                                ? a->order_source < b->order_source
                                : a->order_morsel < b->order_morsel;
                   });
  if (!chunks.empty()) {
    names_ = chunks.front()->names;
    cols_.assign(names_.size(), {});
    for (std::size_t c = 0; c < names_.size(); ++c) {
      cols_[c].reserve(static_cast<std::size_t>(total));
    }
    for (DataChunk* chunk : chunks) {
      if (chunk->names != names_) {
        return Status::ExecutionError("join build chunk schema mismatch");
      }
      for (std::size_t c = 0; c < names_.size(); ++c) {
        cols_[c].insert(cols_[c].end(), chunk->cols[c].begin(),
                        chunk->cols[c].end());
      }
      // Release as we go: peak memory stays ~one chunk above the build.
      chunk->cols.clear();
      chunk->cols.shrink_to_fit();
    }
  }
  chunks.clear();
  buffers_.clear();
  buffers_.shrink_to_fit();
  if (total > 0) {
    std::int64_t key_idx = -1;
    for (std::size_t c = 0; c < names_.size(); ++c) {
      if (names_[c] == right_key_) key_idx = static_cast<std::int64_t>(c);
    }
    if (key_idx < 0) {
      return Status::ExecutionError("join build key '" + right_key_ +
                                    "' not found");
    }
    // Striped parallel insertion over row shards; contention is limited to
    // the per-stripe mutexes.
    const auto& key_col = cols_[static_cast<std::size_t>(key_idx)];
    const std::int64_t shards = std::min<std::int64_t>(
        16, (total + kChunkSize - 1) / kChunkSize);
    const std::int64_t per = (total + shards - 1) / shards;
    ThreadPool::Global().ParallelFor(
        static_cast<std::size_t>(shards), [&](std::size_t s) {
          const std::int64_t begin = static_cast<std::int64_t>(s) * per;
          const std::int64_t end = std::min(total, begin + per);
          for (std::int64_t row = begin; row < end; ++row) {
            const double key = key_col[static_cast<std::size_t>(row)];
            Stripe& stripe = stripes_[StripeOf(key)];
            std::lock_guard<std::mutex> lock(stripe.mu);
            stripe.map[key].push_back(row);
          }
        });
    // Shard interleaving is racy; ascending row ids == sequential
    // insertion order, restoring deterministic duplicate-key matches.
    ThreadPool::Global().ParallelFor(kStripes, [&](std::size_t s) {
      for (auto& [key, rows] : stripes_[s].map) {
        std::sort(rows.begin(), rows.end());
      }
    });
  }
  finalized_ = true;
  return Status::OK();
}

const std::vector<std::int64_t>* JoinBuildState::Lookup(double key) const {
  const Stripe& stripe = stripes_[StripeOf(key)];
  auto it = stripe.map.find(key);
  return it == stripe.map.end() ? nullptr : &it->second;
}

std::int64_t JoinBuildState::num_rows() const {
  return cols_.empty() ? 0 : static_cast<std::int64_t>(cols_.front().size());
}

HashJoinOperator::HashJoinOperator(OperatorPtr left, OperatorPtr right,
                                   std::string left_key,
                                   std::string right_key)
    : left_(std::move(left)), right_(std::move(right)),
      left_key_(std::move(left_key)),
      build_(std::make_shared<JoinBuildState>(std::move(right_key), 1)) {}

HashJoinOperator::HashJoinOperator(OperatorPtr left, std::string left_key,
                                   std::shared_ptr<JoinBuildState> build)
    : left_(std::move(left)), left_key_(std::move(left_key)),
      build_(std::move(build)) {}

Status HashJoinOperator::Open() {
  RAVEN_RETURN_IF_ERROR(left_->Open());
  if (right_ == nullptr) {
    // Probe-only mode: the shared build pipeline already ran.
    if (build_ == nullptr || !build_->finalized()) {
      return Status::Internal("probe-only hash join without finalized build");
    }
  } else {
    RAVEN_RETURN_IF_ERROR(right_->Open());
    DataChunk chunk;
    std::int64_t arrival = 0;
    while (true) {
      RAVEN_ASSIGN_OR_RETURN(bool more, right_->Next(&chunk));
      if (!more) break;
      // Re-tag with the arrival index: a multi-source build side (e.g. a
      // union of scans) reuses (source 0, morsel 0..) per branch, and
      // FinalizeBuild's provenance sort must not interleave the branches.
      chunk.order_source = 0;
      chunk.order_morsel = arrival++;
      RAVEN_RETURN_IF_ERROR(build_->Append(0, std::move(chunk)));
    }
    RAVEN_RETURN_IF_ERROR(build_->FinalizeBuild());
  }
  // Resolve the probe key and the output schema once, against the probe
  // child's schema and the finalized build: all probe columns, then build
  // columns whose names do not collide (the equi-key dedupes naturally).
  RAVEN_ASSIGN_OR_RETURN(std::vector<std::string> probe_schema,
                         left_->OutputColumns());
  RAVEN_ASSIGN_OR_RETURN(
      left_key_idx_,
      KernelProgram::ResolveOrdinal(probe_schema, left_key_,
                                    "HashJoin probe key"));
  build_emit_cols_.clear();
  output_columns_ = probe_schema;
  const auto& build_names = build_->names();
  for (std::size_t c = 0; c < build_names.size(); ++c) {
    bool shadowed = false;
    for (const auto& name : probe_schema) {
      if (name == build_names[c]) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) {
      build_emit_cols_.push_back(c);
      output_columns_.push_back(build_names[c]);
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> HashJoinOperator::OutputColumns() const {
  return output_columns_;
}

Result<bool> HashJoinOperator::Next(DataChunk* out) {
  DataChunk chunk;
  const auto& build_cols = build_->cols();
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, left_->Next(&chunk));
    if (!more) return false;
    out->names = output_columns_;
    out->order_source = chunk.order_source;
    out->order_morsel = chunk.order_morsel;
    out->sel.clear();
    out->cols.assign(output_columns_.size(), {});
    const auto& key_col = chunk.cols[static_cast<std::size_t>(left_key_idx_)];
    const std::int64_t n = chunk.num_selected();
    for (std::int64_t s = 0; s < n; ++s) {
      const auto i = static_cast<std::size_t>(
          chunk.has_sel() ? chunk.sel[static_cast<std::size_t>(s)] : s);
      const std::vector<std::int64_t>* matches = build_->Lookup(key_col[i]);
      if (matches == nullptr) continue;
      for (std::int64_t build_row : *matches) {
        for (std::size_t c = 0; c < chunk.cols.size(); ++c) {
          out->cols[c].push_back(chunk.cols[c][i]);
        }
        for (std::size_t e = 0; e < build_emit_cols_.size(); ++e) {
          out->cols[chunk.cols.size() + e].push_back(
              build_cols[build_emit_cols_[e]]
                        [static_cast<std::size_t>(build_row)]);
        }
      }
    }
    if (out->num_rows() > 0) return true;
    // All probe rows missed; continue with the next chunk.
  }
}

Status UnionAllOperator::Open() {
  for (auto& child : children_) {
    RAVEN_RETURN_IF_ERROR(child->Open());
  }
  current_ = 0;
  return Status::OK();
}

Result<bool> UnionAllOperator::Next(DataChunk* out) {
  while (current_ < children_.size()) {
    RAVEN_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
    if (more) return true;
    ++current_;
  }
  return false;
}

Result<bool> LimitOperator::Next(DataChunk* out) {
  if (emitted_ >= limit_) return false;
  RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  // Limit counts logical rows; compact first so resize-to-keep trims the
  // right tail.
  out->FlattenSel();
  const std::int64_t n = out->num_rows();
  if (emitted_ + n > limit_) {
    const std::int64_t keep = limit_ - emitted_;
    for (auto& col : out->cols) col.resize(static_cast<std::size_t>(keep));
  }
  emitted_ += out->num_rows();
  return true;
}

Status PredictOperator::Open() {
  RAVEN_RETURN_IF_ERROR(child_->Open());
  RAVEN_ASSIGN_OR_RETURN(std::vector<std::string> schema,
                         child_->OutputColumns());
  input_idx_.clear();
  input_idx_.reserve(input_columns_.size());
  for (const auto& name : input_columns_) {
    RAVEN_ASSIGN_OR_RETURN(
        std::int64_t idx,
        KernelProgram::ResolveOrdinal(schema, name, "PREDICT input"));
    input_idx_.push_back(idx);
  }
  return Status::OK();
}

Result<std::vector<std::string>> PredictOperator::OutputColumns() const {
  RAVEN_ASSIGN_OR_RETURN(std::vector<std::string> schema,
                         child_->OutputColumns());
  schema.push_back(output_name_);
  return schema;
}

Result<bool> PredictOperator::Next(DataChunk* out) {
  RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  // Assemble the feature tensor straight through the selection vector:
  // only surviving rows are gathered (and scored).
  const std::int64_t n = out->num_selected();
  const std::int64_t k = static_cast<std::int64_t>(input_idx_.size());
  Tensor input = Tensor::Zeros({n, k});
  for (std::int64_t j = 0; j < k; ++j) {
    const auto& col =
        out->cols[static_cast<std::size_t>(input_idx_[static_cast<std::size_t>(j)])];
    if (out->has_sel()) {
      for (std::int64_t r = 0; r < n; ++r) {
        input.raw()[r * k + j] = static_cast<float>(
            col[static_cast<std::size_t>(out->sel[static_cast<std::size_t>(r)])]);
      }
    } else {
      for (std::int64_t r = 0; r < n; ++r) {
        input.raw()[r * k + j] =
            static_cast<float>(col[static_cast<std::size_t>(r)]);
      }
    }
  }
  RAVEN_ASSIGN_OR_RETURN(std::vector<double> preds, scorer_(input));
  if (static_cast<std::int64_t>(preds.size()) != n) {
    return Status::ExecutionError("scorer returned " +
                                  std::to_string(preds.size()) +
                                  " predictions for " + std::to_string(n) +
                                  " rows");
  }
  // Predictions are per-selected-row; compact the pass-through columns to
  // match before appending the new column.
  out->FlattenSel();
  out->names.push_back(output_name_);
  out->cols.push_back(std::move(preds));
  return true;
}

// ---------------------------------------------------------------------------
// Fused filter -> project -> PREDICT chains
// ---------------------------------------------------------------------------

Status FusedOperator::Open() {
  RAVEN_RETURN_IF_ERROR(child_->Open());
  RAVEN_ASSIGN_OR_RETURN(std::vector<std::string> schema,
                         child_->OutputColumns());
  compiled_.clear();
  compiled_.resize(stages_.size());
  // Compile each stage against the schema as it evolves through the chain:
  // a filter keeps it, a projection replaces it, PREDICT appends a column.
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const FusedStage& stage = stages_[s];
    CompiledStage& cs = compiled_[s];
    switch (stage.kind) {
      case FusedStage::Kind::kFilter: {
        RAVEN_ASSIGN_OR_RETURN(
            cs.predicate,
            KernelProgram::Compile(*stage.predicate, schema,
                                   label_ + " filter predicate"));
        break;
      }
      case FusedStage::Kind::kProject: {
        cs.exprs.reserve(stage.exprs.size());
        for (std::size_t e = 0; e < stage.exprs.size(); ++e) {
          RAVEN_ASSIGN_OR_RETURN(
              KernelProgram program,
              KernelProgram::Compile(*stage.exprs[e], schema,
                                     label_ + " projection '" +
                                         stage.names[e] + "'"));
          cs.exprs.push_back(std::move(program));
        }
        schema = stage.names;
        break;
      }
      case FusedStage::Kind::kPredict: {
        cs.input_idx_.reserve(stage.input_columns.size());
        for (const auto& name : stage.input_columns) {
          RAVEN_ASSIGN_OR_RETURN(
              std::int64_t idx,
              KernelProgram::ResolveOrdinal(schema, name,
                                            label_ + " PREDICT input"));
          cs.input_idx_.push_back(idx);
        }
        schema.push_back(stage.output_name);
        break;
      }
    }
  }
  output_columns_ = std::move(schema);
  return Status::OK();
}

Result<bool> FusedOperator::Next(DataChunk* out) {
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&work_));
    if (!more) return false;
    bool dead = false;
    for (std::size_t s = 0; s < stages_.size() && !dead; ++s) {
      const FusedStage& stage = stages_[s];
      CompiledStage& cs = compiled_[s];
      switch (stage.kind) {
        case FusedStage::Kind::kFilter: {
          RAVEN_ASSIGN_OR_RETURN(const std::vector<double>* mask,
                                 cs.predicate.Run(work_));
          dead = RefineSelection(*mask, &work_) == 0;
          // Later stages' kernels evaluate every physical row, so compact
          // sparse survivor sets here rather than evaluate an expensive
          // projection (inlined trees) or PREDICT gather over dead rows.
          if (!dead && work_.num_selected() * 2 < work_.num_rows()) {
            work_.FlattenSel();
          }
          break;
        }
        case FusedStage::Kind::kProject: {
          DataChunk projected;
          projected.names = stage.names;
          projected.order_source = work_.order_source;
          projected.order_morsel = work_.order_morsel;
          projected.cols.assign(cs.exprs.size(), {});
          for (std::size_t e = 0; e < cs.exprs.size(); ++e) {
            RAVEN_ASSIGN_OR_RETURN(const std::vector<double>* values,
                                   cs.exprs[e].Run(work_));
            GatherSelected(*values, work_.sel, &projected.cols[e]);
          }
          work_ = std::move(projected);
          break;
        }
        case FusedStage::Kind::kPredict: {
          const std::int64_t n = work_.num_selected();
          const std::int64_t k =
              static_cast<std::int64_t>(cs.input_idx_.size());
          Tensor input = Tensor::Zeros({n, k});
          for (std::int64_t j = 0; j < k; ++j) {
            const auto& col = work_.cols[static_cast<std::size_t>(
                cs.input_idx_[static_cast<std::size_t>(j)])];
            if (work_.has_sel()) {
              for (std::int64_t r = 0; r < n; ++r) {
                input.raw()[r * k + j] = static_cast<float>(
                    col[static_cast<std::size_t>(
                        work_.sel[static_cast<std::size_t>(r)])]);
              }
            } else {
              for (std::int64_t r = 0; r < n; ++r) {
                input.raw()[r * k + j] =
                    static_cast<float>(col[static_cast<std::size_t>(r)]);
              }
            }
          }
          RAVEN_ASSIGN_OR_RETURN(std::vector<double> preds,
                                 stage.scorer(input));
          if (static_cast<std::int64_t>(preds.size()) != n) {
            return Status::ExecutionError(
                "scorer returned " + std::to_string(preds.size()) +
                " predictions for " + std::to_string(n) + " rows");
          }
          work_.FlattenSel();
          work_.names.push_back(stage.output_name);
          work_.cols.push_back(std::move(preds));
          break;
        }
      }
    }
    if (dead) continue;  // every row filtered; pull the next chunk
    *out = std::move(work_);
    return true;
  }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

void AggPartial::AccumulateValue(double v) {
  if (count == 0) {
    min = v;
    max = v;
  } else if (std::isnan(v) || std::isnan(min)) {
    // NaN-propagating MIN/MAX: any NaN input makes both NaN, regardless of
    // accumulation or merge order. std::min/std::max keep or drop a NaN
    // depending on argument order, which would make parallel results
    // diverge from sequential (SUM propagates NaN on its own).
    min = std::numeric_limits<double>::quiet_NaN();
    max = std::numeric_limits<double>::quiet_NaN();
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  sum.Add(v);
  ++count;
}

void AggPartial::MergeFrom(const AggPartial& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  if (std::isnan(min) || std::isnan(other.min)) {
    min = std::numeric_limits<double>::quiet_NaN();
    max = std::numeric_limits<double>::quiet_NaN();
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  sum.MergeFrom(other.sum);
  count += other.count;
}

double FinalizeAggPartial(AggKind kind, const AggPartial& partial) {
  switch (kind) {
    case AggKind::kCount:
      return static_cast<double>(partial.count);
    case AggKind::kSum:
      return partial.sum.Round();
    case AggKind::kAvg:
      // Round() is order-independent, so the quotient is too.
      return partial.count > 0
                 ? partial.sum.Round() / static_cast<double>(partial.count)
                 : 0.0;
    case AggKind::kMin:
      return partial.min;
    case AggKind::kMax:
      return partial.max;
  }
  return 0.0;
}

SharedAggregateState::SharedAggregateState(std::vector<AggregateSpec> aggs)
    : aggs_(std::move(aggs)) {}

void SharedAggregateState::Merge(std::int64_t worker,
                                 const std::vector<AggPartial>& partials) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0) worker = 0;
  const auto slot = static_cast<std::size_t>(worker);
  if (slot >= worker_partials_.size()) {
    worker_partials_.resize(slot + 1,
                            std::vector<AggPartial>(aggs_.size()));
  }
  auto& mine = worker_partials_[slot];
  for (std::size_t a = 0; a < mine.size() && a < partials.size(); ++a) {
    mine[a].MergeFrom(partials[a]);
  }
}

DataChunk SharedAggregateState::FinalChunk() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Fold deposits in ascending worker id — a fixed partition order,
  // independent of which worker merged first.
  std::vector<AggPartial> totals(aggs_.size());
  for (const auto& partials : worker_partials_) {
    for (std::size_t a = 0; a < totals.size(); ++a) {
      totals[a].MergeFrom(partials[a]);
    }
  }
  DataChunk out;
  for (std::size_t a = 0; a < aggs_.size(); ++a) {
    out.names.push_back(aggs_[a].output_name);
    out.cols.push_back({FinalizeAggPartial(aggs_[a].kind, totals[a])});
  }
  return out;
}

AggregateOperator::AggregateOperator(OperatorPtr child,
                                     std::vector<AggregateSpec> aggs)
    : child_(std::move(child)), aggs_(std::move(aggs)) {}

AggregateOperator::AggregateOperator(
    OperatorPtr child, std::shared_ptr<SharedAggregateState> shared,
    std::int64_t worker_id)
    : child_(std::move(child)), shared_(std::move(shared)),
      worker_id_(worker_id) {}

Status AggregateOperator::Open() {
  RAVEN_RETURN_IF_ERROR(child_->Open());
  RAVEN_ASSIGN_OR_RETURN(std::vector<std::string> schema,
                         child_->OutputColumns());
  const auto& aggs = specs();
  agg_idx_.assign(aggs.size(), -1);
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCount) continue;  // no input column
    RAVEN_ASSIGN_OR_RETURN(
        agg_idx_[a],
        KernelProgram::ResolveOrdinal(schema, aggs[a].column,
                                      "Aggregate " + aggs[a].output_name));
  }
  return Status::OK();
}

Result<std::vector<std::string>> AggregateOperator::OutputColumns() const {
  std::vector<std::string> names;
  for (const auto& agg : specs()) names.push_back(agg.output_name);
  return names;
}

Result<std::vector<AggPartial>> AggregateOperator::DrainChild(
    const std::vector<AggregateSpec>& aggs) {
  std::vector<AggPartial> partials(aggs.size());
  DataChunk chunk;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
    if (!more) break;
    const std::int64_t n = chunk.num_selected();
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      AggPartial& acc = partials[a];
      if (agg_idx_[a] < 0) {
        acc.count += n;  // no NULLs in this engine: COUNT(col) == COUNT(*)
        continue;
      }
      const auto& col = chunk.cols[static_cast<std::size_t>(agg_idx_[a])];
      if (chunk.has_sel()) {
        for (std::int32_t i : chunk.sel) {
          acc.AccumulateValue(col[static_cast<std::size_t>(i)]);
        }
      } else {
        for (double v : col) acc.AccumulateValue(v);
      }
    }
  }
  return partials;
}

Result<bool> AggregateOperator::Next(DataChunk* out) {
  if (done_) return false;
  done_ = true;
  if (shared_ != nullptr) {
    // Partial-sink mode: accumulate thread-locally, deposit once, emit
    // nothing — the executor renders the final row after all workers join.
    RAVEN_ASSIGN_OR_RETURN(std::vector<AggPartial> partials,
                           DrainChild(shared_->aggs()));
    shared_->Merge(worker_id_, partials);
    return false;
  }
  RAVEN_ASSIGN_OR_RETURN(std::vector<AggPartial> partials, DrainChild(aggs_));
  SharedAggregateState state(aggs_);
  state.Merge(0, partials);
  *out = state.FinalChunk();
  return true;
}

// ---------------------------------------------------------------------------
// Grouped aggregation
// ---------------------------------------------------------------------------

namespace {

/// Renders the (already key-ordered) groups into output columns: keys in
/// spec order, then the finalized aggregates.
void RenderGroups(const GroupBySpec& spec, const GroupMap& groups,
                  std::vector<std::string>* names,
                  std::vector<std::vector<double>>* cols) {
  names->clear();
  names->reserve(spec.keys.size() + spec.aggs.size());
  for (const auto& key : spec.keys) names->push_back(key);
  for (const auto& agg : spec.aggs) names->push_back(agg.output_name);
  cols->assign(names->size(), {});
  for (auto& col : *cols) col.reserve(groups.size());
  for (const auto& [key, partials] : groups) {
    for (std::size_t k = 0; k < spec.keys.size(); ++k) {
      (*cols)[k].push_back(key[k]);
    }
    for (std::size_t a = 0; a < spec.aggs.size(); ++a) {
      (*cols)[spec.keys.size() + a].push_back(
          FinalizeAggPartial(spec.aggs[a].kind, partials[a]));
    }
  }
}

}  // namespace

SharedGroupByState::SharedGroupByState(GroupBySpec spec)
    : spec_(std::move(spec)) {}

std::size_t SharedGroupByState::StripeOf(const std::vector<double>& key) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  for (double v : key) {
    seed ^= std::hash<double>{}(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
            (seed >> 2);
  }
  return seed % kStripes;
}

void SharedGroupByState::Merge(GroupMap local) {
  // Bucket the worker's groups per stripe first so every stripe mutex is
  // taken at most once per merge instead of once per group.
  std::array<std::vector<const GroupMap::value_type*>, kStripes> buckets;
  for (const auto& entry : local) {
    buckets[StripeOf(entry.first)].push_back(&entry);
  }
  for (std::size_t s = 0; s < kStripes; ++s) {
    if (buckets[s].empty()) continue;
    Stripe& stripe = stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const GroupMap::value_type* entry : buckets[s]) {
      auto [it, inserted] =
          stripe.groups.try_emplace(entry->first, spec_.aggs.size());
      for (std::size_t a = 0; a < spec_.aggs.size(); ++a) {
        it->second[a].MergeFrom(entry->second[a]);
      }
      (void)inserted;
    }
  }
}

Result<Table> SharedGroupByState::FinalTable() const {
  // Each key lives in exactly one stripe, so concatenating the (ordered)
  // stripe maps into one ordered map restores the canonical ascending
  // key-tuple order.
  GroupMap merged;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    merged.insert(stripe.groups.begin(), stripe.groups.end());
  }
  // Zero groups still renders the grouped schema (keys + aggregate names)
  // with zero rows: operators above resolve their column ordinals against
  // this table at Open time, before any chunk flows, and must see the same
  // schema a sequential GroupByOperator advertises. The executor restores
  // the engine-wide column-less empty-result convention only when this
  // table IS the query result (MorselExecutor::Execute root-breaker path).
  Table out;
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  RenderGroups(spec_, merged, &names, &cols);
  for (std::size_t c = 0; c < names.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(out.AddNumericColumn(names[c], std::move(cols[c])));
  }
  return out;
}

GroupByOperator::GroupByOperator(OperatorPtr child, GroupBySpec spec)
    : child_(std::move(child)), spec_(std::move(spec)) {}

GroupByOperator::GroupByOperator(OperatorPtr child,
                                 std::shared_ptr<SharedGroupByState> shared)
    : child_(std::move(child)), shared_(std::move(shared)) {}

Status GroupByOperator::Open() {
  RAVEN_RETURN_IF_ERROR(child_->Open());
  RAVEN_ASSIGN_OR_RETURN(std::vector<std::string> schema,
                         child_->OutputColumns());
  const GroupBySpec& spec = the_spec();
  key_idx_.clear();
  key_idx_.reserve(spec.keys.size());
  for (const auto& key : spec.keys) {
    RAVEN_ASSIGN_OR_RETURN(
        std::int64_t idx,
        KernelProgram::ResolveOrdinal(schema, key, "GROUP BY key"));
    key_idx_.push_back(idx);
  }
  agg_idx_.assign(spec.aggs.size(), -1);
  for (std::size_t a = 0; a < spec.aggs.size(); ++a) {
    if (spec.aggs[a].kind == AggKind::kCount) continue;
    RAVEN_ASSIGN_OR_RETURN(
        agg_idx_[a],
        KernelProgram::ResolveOrdinal(
            schema, spec.aggs[a].column,
            "GROUP BY aggregate " + spec.aggs[a].output_name));
  }
  return Status::OK();
}

Result<std::vector<std::string>> GroupByOperator::OutputColumns() const {
  const GroupBySpec& spec = the_spec();
  std::vector<std::string> names;
  names.reserve(spec.keys.size() + spec.aggs.size());
  for (const auto& key : spec.keys) names.push_back(key);
  for (const auto& agg : spec.aggs) names.push_back(agg.output_name);
  return names;
}

Result<GroupMap> GroupByOperator::DrainChild(const GroupBySpec& spec) {
  GroupMap groups;
  DataChunk chunk;
  std::vector<double> key(spec.keys.size());
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
    if (!more) break;
    const std::int64_t n = chunk.num_selected();
    for (std::int64_t r = 0; r < n; ++r) {
      const auto row = static_cast<std::size_t>(
          chunk.has_sel() ? chunk.sel[static_cast<std::size_t>(r)] : r);
      for (std::size_t k = 0; k < key.size(); ++k) {
        const double v =
            chunk.cols[static_cast<std::size_t>(key_idx_[k])][row];
        // Canonicalize NaN: all NaN payloads are one group (GroupKeyLess
        // treats them as equal), so they must also hash to one stripe.
        key[k] = std::isnan(v) ? std::numeric_limits<double>::quiet_NaN() : v;
      }
      auto& partials = groups.try_emplace(key, spec.aggs.size()).first->second;
      for (std::size_t a = 0; a < spec.aggs.size(); ++a) {
        if (agg_idx_[a] < 0) {
          ++partials[a].count;  // no NULLs in this engine: COUNT counts rows
        } else {
          partials[a].AccumulateValue(
              chunk.cols[static_cast<std::size_t>(agg_idx_[a])][row]);
        }
      }
    }
  }
  return groups;
}

Result<bool> GroupByOperator::Next(DataChunk* out) {
  if (done_) return false;
  done_ = true;
  if (shared_ != nullptr) {
    // Partial-sink mode: pre-aggregate thread-locally, merge once, emit
    // nothing — the executor renders the merged table after all workers
    // join.
    RAVEN_ASSIGN_OR_RETURN(GroupMap groups, DrainChild(shared_->spec()));
    shared_->Merge(std::move(groups));
    return false;
  }
  RAVEN_ASSIGN_OR_RETURN(GroupMap groups, DrainChild(spec_));
  if (groups.empty()) return false;  // empty input: emit nothing (see above)
  out->order_source = 0;
  out->order_morsel = 0;
  out->sel.clear();  // reused chunks must not keep a stale selection
  RenderGroups(spec_, groups, &out->names, &out->cols);
  return true;
}

// ---------------------------------------------------------------------------
// Sorting (ORDER BY)
// ---------------------------------------------------------------------------

Result<Table> SortTable(Table table, const std::vector<SortSpec>& keys) {
  if (table.num_rows() <= 1 || keys.empty()) return table;
  std::vector<const std::vector<double>*> key_cols;
  key_cols.reserve(keys.size());
  for (const auto& key : keys) {
    RAVEN_ASSIGN_OR_RETURN(std::int64_t idx, table.ColumnIndex(key.column));
    key_cols.push_back(&table.columns()[static_cast<std::size_t>(idx)].data);
  }
  std::vector<std::size_t> order(static_cast<std::size_t>(table.num_rows()));
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(
      order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        for (std::size_t k = 0; k < keys.size(); ++k) {
          // TotalDoubleLess keeps this a strict weak ordering even with
          // NaN key values (plain < would be UB for stable_sort then).
          const double va = (*key_cols[k])[a];
          const double vb = (*key_cols[k])[b];
          if (TotalDoubleLess(va, vb)) return !keys[k].descending;
          if (TotalDoubleLess(vb, va)) return keys[k].descending;
        }
        return false;  // stable: ties keep input order
      });
  for (auto& column : table.mutable_columns()) {
    std::vector<double> sorted;
    sorted.reserve(order.size());
    for (std::size_t r : order) sorted.push_back(column.data[r]);
    column.data = std::move(sorted);
  }
  return table;
}

Result<bool> SortOperator::Next(DataChunk* out) {
  if (done_) return false;
  done_ = true;
  // Gather: drain the (already opened) child into one columnar buffer.
  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  bool first = true;
  DataChunk chunk;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, child_->Next(&chunk));
    if (!more) break;
    chunk.FlattenSel();
    if (first) {
      names = chunk.names;
      cols.assign(chunk.cols.size(), {});
      first = false;
    }
    for (std::size_t c = 0; c < chunk.cols.size(); ++c) {
      cols[c].insert(cols[c].end(), chunk.cols[c].begin(),
                     chunk.cols[c].end());
    }
  }
  if (first) return false;  // empty input: nothing to sort or emit
  Table gathered;
  for (std::size_t c = 0; c < names.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(
        gathered.AddNumericColumn(names[c], std::move(cols[c])));
  }
  RAVEN_ASSIGN_OR_RETURN(Table sorted, SortTable(std::move(gathered), keys_));
  out->names = names;
  out->order_source = 0;
  out->order_morsel = 0;
  out->sel.clear();  // reused chunks must not keep a stale selection
  out->cols.clear();
  out->cols.reserve(sorted.columns().size());
  for (auto& column : sorted.mutable_columns()) {
    out->cols.push_back(std::move(column.data));
  }
  return true;
}

Status InstrumentedOperator::Open() {
  const auto start = std::chrono::steady_clock::now();
  Status status = child_->Open();
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  slot_->open_nanos.fetch_add(elapsed, std::memory_order_relaxed);
  return status;
}

Result<bool> InstrumentedOperator::Next(DataChunk* out) {
  const auto start = std::chrono::steady_clock::now();
  auto result = child_->Next(out);
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  slot_->wall_nanos.fetch_add(elapsed, std::memory_order_relaxed);
  if (result.ok() && result.value()) {
    slot_->chunks.fetch_add(1, std::memory_order_relaxed);
    slot_->rows.fetch_add(out->num_selected(), std::memory_order_relaxed);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

Result<Table> MaterializeAll(PhysicalOperator* root) {
  RAVEN_RETURN_IF_ERROR(root->Open());
  Table out;
  DataChunk chunk;
  bool first = true;
  std::vector<std::vector<double>> cols;
  std::vector<std::string> names;
  while (true) {
    RAVEN_ASSIGN_OR_RETURN(bool more, root->Next(&chunk));
    if (!more) break;
    chunk.FlattenSel();
    if (first) {
      names = chunk.names;
      cols.assign(chunk.cols.size(), {});
      first = false;
    }
    for (std::size_t c = 0; c < chunk.cols.size(); ++c) {
      cols[c].insert(cols[c].end(), chunk.cols[c].begin(),
                     chunk.cols[c].end());
    }
  }
  for (std::size_t c = 0; c < names.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(out.AddNumericColumn(names[c], std::move(cols[c])));
  }
  return out;
}

Status DrainOrdered(PhysicalOperator* root, std::vector<OrderedChunk>* out) {
  RAVEN_RETURN_IF_ERROR(root->Open());
  while (true) {
    DataChunk chunk;
    RAVEN_ASSIGN_OR_RETURN(bool more, root->Next(&chunk));
    if (!more) return Status::OK();
    // Merge/serialize paths downstream index rows positionally.
    chunk.FlattenSel();
    OrderedChunk entry;
    entry.source = chunk.order_source;
    entry.morsel = chunk.order_morsel;
    entry.chunk = std::move(chunk);
    out->push_back(std::move(entry));
  }
}

Result<Table> MergeOrderedChunks(
    std::vector<std::vector<OrderedChunk>> parts) {
  std::vector<OrderedChunk> all;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  all.reserve(total);
  for (auto& part : parts) {
    for (auto& entry : part) all.push_back(std::move(entry));
  }
  // Workers pop morsels in increasing order, so each part is already
  // sorted; a stable sort across parts restores global sequential order.
  std::stable_sort(all.begin(), all.end(),
                   [](const OrderedChunk& a, const OrderedChunk& b) {
                     return a.source != b.source ? a.source < b.source
                                                 : a.morsel < b.morsel;
                   });
  Table out;
  std::vector<std::vector<double>> cols;
  std::vector<std::string> names;
  bool first = true;
  for (auto& entry : all) {
    if (first) {
      names = entry.chunk.names;
      cols.assign(names.size(), {});
      first = false;
    }
    if (entry.chunk.names != names) {
      return Status::ExecutionError("parallel worker chunk schema mismatch");
    }
    for (std::size_t c = 0; c < names.size(); ++c) {
      cols[c].insert(cols[c].end(), entry.chunk.cols[c].begin(),
                     entry.chunk.cols[c].end());
    }
  }
  for (std::size_t c = 0; c < names.size(); ++c) {
    RAVEN_RETURN_IF_ERROR(out.AddNumericColumn(names[c], std::move(cols[c])));
  }
  return out;
}

Result<Table> ExecutePartitionedParallel(const Table& base,
                                         std::int64_t num_partitions,
                                         const PartitionPlanFactory& factory) {
  const std::int64_t n = base.num_rows();
  num_partitions = std::max<std::int64_t>(1, std::min(num_partitions, n));
  const std::int64_t per = (n + num_partitions - 1) / num_partitions;
  std::vector<Result<Table>> results(
      static_cast<std::size_t>(num_partitions),
      Result<Table>(Status::Internal("partition not executed")));
  ThreadPool::Global().ParallelFor(
      static_cast<std::size_t>(num_partitions), [&](std::size_t p) {
        const std::int64_t begin = static_cast<std::int64_t>(p) * per;
        const std::int64_t end = std::min(n, begin + per);
        OperatorPtr plan = factory(begin, end);
        results[p] = plan == nullptr
                         ? Result<Table>(Status::ExecutionError(
                               "partition plan construction failed"))
                         : MaterializeAll(plan.get());
      });
  std::vector<Table> parts;
  parts.reserve(results.size());
  for (auto& result : results) {
    if (!result.ok()) return result.status();
    parts.push_back(std::move(result).value());
  }
  return ConcatTables(std::move(parts));
}

}  // namespace raven::relational
