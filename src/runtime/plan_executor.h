#ifndef RAVEN_RUNTIME_PLAN_EXECUTOR_H_
#define RAVEN_RUNTIME_PLAN_EXECUTOR_H_

#include <memory>
#include <mutex>

#include "common/status.h"
#include "ir/ir.h"
#include "nnrt/session.h"
#include "relational/catalog.h"
#include "relational/table.h"
#include "runtime/codegen.h"

namespace raven::runtime {

class WorkerPool;

/// Executes optimized IR plans against the relational engine.
///
/// With options.parallelism > 1 every in-process plan shape executes
/// morsel-driven (paper §5: "SQL Server automatically parallelizes both the
/// scan and PREDICT operators" — here extended to joins, aggregates,
/// grouped aggregates, sorts and unions): the plan is decomposed into
/// pipelines at its breakers (hash join builds, aggregates, GROUP BY,
/// ORDER BY), each pipeline runs as N symmetric worker operator trees
/// pulling kChunkSize-row morsels from shared atomic cursors, and the final
/// merge restores sequential row order from morsel provenance. Join builds
/// populate a lock-striped shared hash table; aggregates merge thread-local
/// partials; GROUP BY pre-aggregates thread-locally and merges into a
/// lock-striped global table; ORDER BY gathers its parallel child pipeline
/// and stable-sorts once; PREDICT workers share cached NNRT sessions. Plans
/// containing LIMIT (an inherently ordered early-out) and the
/// out-of-process/container modes run sequentially, as does anything with
/// an opaque-pipeline UDF (one external worker per query).
///
/// ExecutionMode::kDistributed ships the plan's distributable fragments
/// (row-wise operator chains over a single scan) to a persistent pool of
/// raven_worker processes: each fragment's leaf scan partitions into one
/// contiguous row range per pool worker, workers execute their partition
/// via this same executor and stream chunks back, and the engine merges
/// partition outputs in range order — byte-identical to a sequential run.
/// Everything above the fragments (joins, aggregates, sorts, limits)
/// executes in-process over the materialized fragment tables. A partition
/// whose worker dies (or wedges past the frame timeout) retries once on a
/// freshly spawned worker, then falls back to in-process execution, so a
/// distributed query never fails — or hangs — because of a worker. The
/// pool spawns lazily on the first distributed query and stays warm across
/// queries; if it cannot start at all the whole query falls back
/// in-process.
class PlanExecutor {
 public:
  PlanExecutor(const relational::Catalog* catalog,
               nnrt::SessionCache* session_cache);
  ~PlanExecutor();

  /// Executes an optimized plan. Safe to call concurrently from many
  /// threads on the same executor (the query server does exactly that):
  /// all execution state is per-call, the shared NNRT session cache is
  /// internally synchronized, and the distributed worker pool is handed
  /// out by shared ownership so a concurrent respawn cannot pull it out
  /// from under an in-flight query. The plan must not be mutated while
  /// executions reference it — cached plans are shared as const.
  Result<relational::Table> Execute(const ir::IrPlan& plan,
                                    const ExecutionOptions& options,
                                    ExecutionStats* stats = nullptr);

  /// The lazily spawned distributed worker pool; nullptr until the first
  /// distributed query (or after a failed pool start). Exposed for the
  /// fault-injection tests, which SIGKILL workers through it, and for the
  /// server's SHOW STATS (restart counts).
  std::shared_ptr<WorkerPool> worker_pool();

 private:
  /// Returns the warm pool matching `options`, (re)spawning it when the
  /// spawn configuration changed; nullptr if the pool cannot start. Shared
  /// ownership: a query that raced a respawn keeps the old pool alive (and
  /// its workers running) until its last exchange finishes.
  std::shared_ptr<WorkerPool> EnsurePool(const ExecutionOptions& options);

  const relational::Catalog* catalog_;
  nnrt::SessionCache* session_cache_;
  std::mutex pool_mu_;
  std::shared_ptr<WorkerPool> pool_;
};

}  // namespace raven::runtime

#endif  // RAVEN_RUNTIME_PLAN_EXECUTOR_H_
