#ifndef RAVEN_SERVER_EVENT_LOOP_H_
#define RAVEN_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace raven::server {

/// Configuration for the epoll connection core.
struct EventLoopOptions {
  /// Simultaneous connections; arrivals beyond this are answered with
  /// `busy_payload` and closed. With the readiness loop an idle connection
  /// costs a registered fd plus its session — not a thread — so this cap
  /// bounds fds and per-connection state, no longer the thread count.
  std::int64_t max_connections = 256;
  /// Request frames whose header claims more than this are answered with
  /// `oversize_payload` and hung up on, before the claimed buffer is ever
  /// allocated (the unread payload desyncs the stream, so the connection
  /// cannot continue).
  std::uint32_t max_request_frame_bytes = 8u << 20;
  /// A connection with no COMPLETED request frame for this long is dropped
  /// (<= 0: never). Measured from the last finished request/response, and
  /// partial frame bytes do not re-arm it — a slow-loris client dripping
  /// single bytes still trips the deadline. Connections with a request in
  /// flight are exempt (execution is not interruptible).
  int idle_timeout_millis = 300000;
  /// Threads executing request handlers. Handlers block (admission queue,
  /// batch windows, the query itself), so this must at least cover the
  /// admission controller's max_concurrent + max_queue — the server sizes
  /// it so that every admission slot and queue seat can be occupied
  /// simultaneously, preserving shed/queue semantics exactly.
  int dispatch_threads = 8;
  /// Pre-encoded response frames the loop writes without consulting the
  /// handler (the handler owns response encoding otherwise).
  std::string busy_payload;
  std::string oversize_payload;
  /// Plaintext-HTTP framing instead of [u32 length] frames: a request is
  /// complete at the first blank line (the GET has no body we care about),
  /// the handler's return value is written raw — it must be a full HTTP
  /// response — and the connection closes after the write (HTTP/1.0
  /// close-delimited). Used by the metrics endpoint; busy/oversize payloads
  /// should stay empty in this mode (they would be frame-wrapped).
  bool http_mode = false;
};

/// Counters surfaced through SHOW STATS.
struct EventLoopStats {
  std::int64_t epoll_wakeups = 0;     ///< epoll_wait returns with >= 1 event
  std::int64_t connections_open = 0;  ///< registered fds right now
  std::int64_t idle_drops = 0;        ///< connections reaped by the deadline
};

/// Single-threaded epoll readiness loop plus a small dispatch pool —
/// replaces thread-per-connection: idle sockets cost a registered fd and a
/// heap Conn, frame reads are resumable state machines fed by EPOLLIN, and
/// only requests-in-flight occupy threads.
///
/// Lifecycle of one connection: accept (nonblocking) -> read [u32 length]
/// header and payload across any number of EPOLLIN wakeups -> on a
/// complete frame, unsubscribe from EPOLLIN (strict request/response: no
/// pipelining) and hand the payload to a dispatch thread -> the handler
/// runs and writes its response frame directly on the fd -> a completion
/// message re-arms EPOLLIN (or closes on write failure). The loop alone
/// creates and closes fds; a connection with a request in flight is never
/// closed by the loop — at most shutdown() — so the descriptor cannot be
/// recycled under the handler's feet (same discipline the thread-per-
/// connection server used between ServeConnection and the reaper).
class EventLoop {
 public:
  /// Returns the per-connection context (the server's Session) for a
  /// freshly accepted connection. Runs on the loop thread; must be cheap.
  using OpenHandler = std::function<void*()>;
  /// Handles one complete request payload, returning the encoded response
  /// payload. Runs on a dispatch thread; may block.
  using RequestHandler = std::function<std::string(void* conn_ctx,
                                                   std::string payload)>;
  /// Destroys the per-connection context. Runs on the loop thread after
  /// the fd is closed and no handler can touch the context again.
  using CloseHandler = std::function<void(void* conn_ctx)>;

  EventLoop(EventLoopOptions options, OpenHandler on_open,
            RequestHandler on_request, CloseHandler on_close);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Takes ownership of polling `listen_fd` (bound + listening; the caller
  /// still closes it after Stop) and starts the loop + dispatch threads.
  Status Start(int listen_fd);

  /// Severs every connection (in-flight handlers finish; their response
  /// writes fail fast on the shut-down sockets), drops requests that were
  /// queued but not yet started (indistinguishable, to the client, from
  /// the connection being severed before the request was read), joins all
  /// threads, closes every connection fd, and runs the close handler for
  /// each context. Idempotent.
  void Stop();

  EventLoopStats stats() const;

 private:
  enum class Phase : std::uint8_t {
    kHeader,   ///< accumulating the 4-byte length prefix
    kPayload,  ///< accumulating payload_size payload bytes
    kBusy,     ///< request handed to a dispatch thread; EPOLLIN unsubscribed
  };

  /// Resumable frame-read state machine for one connection. Owned by the
  /// loop thread; a dispatch thread touches only fd (writes), context
  /// (the handler argument), and the done/ok completion flags.
  struct Conn {
    int fd = -1;
    Phase phase = Phase::kHeader;
    unsigned char header[4] = {0, 0, 0, 0};
    std::size_t header_filled = 0;
    std::uint32_t payload_size = 0;
    std::string payload;
    std::size_t payload_filled = 0;
    std::chrono::steady_clock::time_point last_activity;
    void* context = nullptr;
    /// Peer hung up while a request was in flight (EPOLLHUP/RDHUP during
    /// kBusy); close as soon as the handler completes.
    bool peer_gone = false;
  };

  struct Completion {
    Conn* conn = nullptr;
    bool ok = false;  ///< response written successfully
  };

  void LoopThread();
  void DispatchThread();
  void AcceptReady();
  void ReadReady(Conn* conn);
  /// Complete frame in hand: go busy and enqueue for dispatch.
  void DispatchRequest(Conn* conn);
  void HandleCompletions();
  void SweepIdle();
  void CloseConn(Conn* conn);
  void WakeLoop();

  const EventLoopOptions options_;
  const OpenHandler on_open_;
  const RequestHandler on_request_;
  const CloseHandler on_close_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd for cross-thread wakeups
  std::thread loop_thread_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;  // loop thread only

  /// Dispatch pool: requests in, completions out.
  struct Job {
    Conn* conn = nullptr;
    std::string payload;
  };
  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::deque<Job> jobs_;
  bool dispatch_stopping_ = false;
  std::vector<std::thread> dispatch_threads_;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::atomic<std::int64_t> epoll_wakeups_{0};
  std::atomic<std::int64_t> connections_open_{0};
  std::atomic<std::int64_t> idle_drops_{0};
};

/// WriteFrame for the loop's nonblocking sockets: identical framing, but
/// EAGAIN polls for writability against a total deadline instead of
/// failing (the blocking WriteFrame never sees EAGAIN). Used by dispatch
/// threads for responses and by the loop for canned busy/oversize frames.
Status WriteFrameNonblocking(int fd, const std::string& payload,
                             int timeout_millis);

}  // namespace raven::server

#endif  // RAVEN_SERVER_EVENT_LOOP_H_
