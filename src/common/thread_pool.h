#ifndef RAVEN_COMMON_THREAD_POOL_H_
#define RAVEN_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace raven {

/// A fixed-size worker pool used for morsel-parallel query execution and the
/// simulated accelerator backend. Tasks are plain std::function<void()>;
/// completion is tracked per-batch via ParallelFor / TaskGroup.
///
/// Nested use: once physical operators run on the pool, any code they call
/// may itself reach for the pool (e.g. a parallel hash-table build inside a
/// build pipeline that is already executing on pool workers). Queuing
/// sub-tasks from a pool worker and then blocking on them risks deadlock:
/// every pool thread could end up waiting for queue slots that only pool
/// threads can drain. ParallelFor and TaskGroup therefore detect that they
/// are being called from inside a pool worker (InPoolWorker()) and degrade
/// to inline execution on the calling thread — correct, deadlock-free, and
/// still parallel at the outermost level.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations finish. fn must be thread-safe. When n==0 returns
  /// immediately; when the pool has a single thread, runs inline.
  ///
  /// Safe to call from inside a pool worker: the nested call runs all
  /// iterations inline on the calling thread instead of enqueueing (see the
  /// class comment on the nested-use deadlock hazard).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t num_threads() const { return threads_.size(); }

  /// True when the calling thread is one of this process's pool workers
  /// (any ThreadPool instance). Used to gate nested-parallelism fallbacks.
  static bool InPoolWorker();

  /// Shared process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// A batch of independently-completable tasks scheduled on a ThreadPool.
/// Spawn() enqueues; Wait() blocks until every spawned task has finished,
/// with the calling thread claiming still-queued tasks so the group makes
/// progress even when all pool workers are busy elsewhere. Tasks must not
/// block on one another (no barriers between group members) — the scheduler
/// guarantees completion, not concurrency.
///
/// Spawning from inside a pool worker runs the task inline (same rationale
/// as ThreadPool::ParallelFor). Spawn after Wait is undefined; use a fresh
/// group per batch.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool = &ThreadPool::Global());
  /// Blocks until all spawned tasks finish.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Spawn(std::function<void()> fn);
  void Wait();

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> pending;
    std::size_t outstanding = 0;  // pending + currently running
  };

  static void RunOne(const std::shared_ptr<State>& state,
                     std::function<void()> task);

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

/// One unit of scan work in morsel-driven execution: a half-open row range
/// plus its sequence index within the source (used to restore sequential
/// output order after a parallel run).
struct Morsel {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t index = 0;
};

/// A shared atomic cursor handing out fixed-size row morsels of one source
/// to however many workers pull from it. Lock-free; each morsel is claimed
/// by exactly one worker. This is the heart of morsel-driven parallelism:
/// workers are symmetric and skew balances itself because fast workers just
/// claim more morsels.
class MorselQueue {
 public:
  MorselQueue(std::int64_t total_rows, std::int64_t morsel_rows);

  /// Claims the next morsel. Returns false when the source is exhausted.
  bool Pop(Morsel* out);

  std::int64_t total_rows() const { return total_; }
  std::int64_t morsel_rows() const { return morsel_; }
  /// Number of morsels this queue dispenses over its lifetime.
  std::int64_t num_morsels() const;

 private:
  const std::int64_t total_;
  const std::int64_t morsel_;
  std::atomic<std::int64_t> next_{0};
};

}  // namespace raven

#endif  // RAVEN_COMMON_THREAD_POOL_H_
