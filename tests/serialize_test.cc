// Dedicated round-trip coverage for common/serialize: every writer/reader
// pair, mixed-field encode->decode equality, and the truncated/corrupt
// buffer error paths (bounds-checked readers must fail, never fault).

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/serialize.h"

namespace raven {
namespace {

TEST(SerializeTest, ScalarRoundTrip) {
  BinaryWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI32(-12345);
  w.WriteI64(-9876543210LL);
  w.WriteF64(3.141592653589793);
  w.WriteF32(2.5f);
  w.WriteBool(true);
  w.WriteBool(false);

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*r.ReadI32(), -12345);
  EXPECT_EQ(*r.ReadI64(), -9876543210LL);
  EXPECT_EQ(*r.ReadF64(), 3.141592653589793);
  EXPECT_EQ(*r.ReadF32(), 2.5f);
  EXPECT_TRUE(*r.ReadBool());
  EXPECT_FALSE(*r.ReadBool());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, StringRoundTrip) {
  BinaryWriter w;
  w.WriteString("");
  w.WriteString("hospital_los");
  w.WriteString(std::string("emb\0edded", 9));  // NUL bytes survive

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_EQ(*r.ReadString(), "hospital_los");
  EXPECT_EQ(*r.ReadString(), std::string("emb\0edded", 9));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VectorRoundTrip) {
  const std::vector<double> f64 = {1.5, -2.25, 1e300};
  const std::vector<float> f32 = {0.5f, -0.125f};
  const std::vector<std::int32_t> i32 = {-1, 0, std::numeric_limits<std::int32_t>::max()};
  const std::vector<std::int64_t> i64 = {std::numeric_limits<std::int64_t>::min(), 42};
  const std::vector<std::string> strs = {"alpha", "", "gamma"};

  BinaryWriter w;
  w.WriteF64Vector(f64);
  w.WriteF32Vector(f32);
  w.WriteI32Vector(i32);
  w.WriteI64Vector(i64);
  w.WriteStringVector(strs);
  w.WriteF64Vector({});  // empty vectors round-trip too

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadF64Vector(), f64);
  EXPECT_EQ(*r.ReadF32Vector(), f32);
  EXPECT_EQ(*r.ReadI32Vector(), i32);
  EXPECT_EQ(*r.ReadI64Vector(), i64);
  EXPECT_EQ(*r.ReadStringVector(), strs);
  EXPECT_EQ(r.ReadF64Vector()->size(), 0u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, EmptyBufferFailsEveryRead) {
  BinaryReader r("", 0);
  EXPECT_EQ(r.ReadU8().status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.ReadU64().status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.ReadF64Vector().status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, TruncationFailsAtEveryPrefix) {
  // A representative mixed payload: truncating at ANY byte must produce a
  // clean error on some read, never UB or success-with-garbage lengths.
  BinaryWriter w;
  w.WriteU32(7);
  w.WriteString("abcdef");
  w.WriteF64Vector({1.0, 2.0});
  const std::string full = w.buffer();

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    BinaryReader r(full.data(), cut);
    bool failed = false;
    auto u = r.ReadU32();
    if (!u.ok()) failed = true;
    if (!failed) {
      auto s = r.ReadString();
      if (!s.ok()) failed = true;
    }
    if (!failed) {
      auto v = r.ReadF64Vector();
      if (!v.ok()) failed = true;
    }
    EXPECT_TRUE(failed) << "no error at cut=" << cut;
  }
}

TEST(SerializeTest, TruncatedStringLengthIsError) {
  // String header claims 100 bytes; only 3 present.
  BinaryWriter w;
  w.WriteU32(100);
  const std::string buf = w.buffer() + "abc";
  BinaryReader r(buf);
  auto s = r.ReadString();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, ImplausibleVectorLengthIsError) {
  // A corrupt (huge) element count must be rejected up front instead of
  // attempting a giant allocation.
  BinaryWriter w;
  w.WriteU64(std::numeric_limits<std::uint64_t>::max());
  BinaryReader r(w.buffer());
  auto v = r.ReadF64Vector();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, RemainingTracksPosition) {
  BinaryWriter w;
  w.WriteU32(1);
  w.WriteU64(2);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.remaining(), 12u);
  ASSERT_TRUE(r.ReadU32().ok());
  EXPECT_EQ(r.remaining(), 8u);
  ASSERT_TRUE(r.ReadU64().ok());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace raven
