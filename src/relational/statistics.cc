#include "relational/statistics.h"

#include <cmath>
#include <set>

namespace raven::relational {

namespace {

constexpr std::int64_t kDistinctCap = 64;

// Strict weak ordering over doubles that places all NaNs in a single
// equivalence class after every real number. std::set<double> with the
// default `<` violates its ordering contract the moment a NaN is inserted
// (NaN < x and x < NaN are both false, yet NaN "equals" nothing), which is
// undefined behavior — this comparator keeps the set well-formed.
struct NanSafeLess {
  bool operator()(double a, double b) const {
    if (std::isnan(a)) return false;
    if (std::isnan(b)) return true;
    return a < b;
  }
};

}  // namespace

ColumnStats ComputeColumnStats(const Column& column) {
  ColumnStats stats;
  stats.num_rows = column.size();
  if (column.data.empty()) return stats;
  bool saw_finite = false;
  std::set<double, NanSafeLess> distinct;
  for (double v : column.data) {
    if (std::isfinite(v)) {
      if (!saw_finite) {
        stats.min = v;
        stats.max = v;
        saw_finite = true;
      } else {
        if (v < stats.min) stats.min = v;
        if (v > stats.max) stats.max = v;
      }
    } else {
      stats.has_non_finite = true;
      ++stats.non_finite_count;
      if (std::isnan(v)) ++stats.nan_count;
    }
    if (stats.distinct_exact) {
      distinct.insert(v);
      if (static_cast<std::int64_t>(distinct.size()) > kDistinctCap) {
        stats.distinct_exact = false;
        distinct.clear();
      }
    }
  }
  stats.distinct = stats.distinct_exact
                       ? static_cast<std::int64_t>(distinct.size())
                       : kDistinctCap + 1;
  // A constant column must be constant at a finite value: downstream
  // predicate derivation turns `constant` into `col = c`, and `col = NaN`
  // is false for the very rows it is meant to describe.
  if (stats.distinct_exact && stats.distinct == 1 && !stats.has_non_finite) {
    stats.constant = stats.min;
  }
  return stats;
}

std::map<std::string, ColumnStats> ComputeTableStats(const Table& table) {
  std::map<std::string, ColumnStats> out;
  for (const auto& column : table.columns()) {
    out[column.name] = ComputeColumnStats(column);
  }
  return out;
}

}  // namespace raven::relational
