#include "server/admission.h"

#include <algorithm>
#include <chrono>

namespace raven::server {

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->Release();
    controller_ = nullptr;
  }
}

Result<AdmissionController::Ticket> AdmissionController::Admit() {
  std::unique_lock<std::mutex> lock(mu_);
  if (active_ < options_.max_concurrent) {
    ++active_;
    ++lifetime_.admitted;
    lifetime_.peak_active = std::max(lifetime_.peak_active, active_);
    return Ticket(this, 0.0);
  }
  if (queued_ >= options_.max_queue) {
    ++lifetime_.shed;
    return Status::ServerBusy(
        "admission queue full (" + std::to_string(active_) + " active, " +
        std::to_string(queued_) + " queued); retry later");
  }
  ++queued_;
  ++lifetime_.ever_queued;
  lifetime_.peak_queued = std::max(lifetime_.peak_queued, queued_);
  const auto enqueued = std::chrono::steady_clock::now();
  auto slot_free = [this] { return active_ < options_.max_concurrent; };
  bool got_slot = true;
  if (options_.queue_timeout_millis > 0) {
    got_slot = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.queue_timeout_millis),
        slot_free);
  } else {
    cv_.wait(lock, slot_free);
  }
  --queued_;
  const double waited_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - enqueued)
          .count();
  if (!got_slot) {
    ++lifetime_.timeouts;
    ++lifetime_.shed;
    return Status::ServerBusy(
        "queued " + std::to_string(options_.queue_timeout_millis) +
        " ms without an execution slot freeing up; retry later");
  }
  ++active_;
  ++lifetime_.admitted;
  lifetime_.peak_active = std::max(lifetime_.peak_active, active_);
  return Ticket(this, waited_micros);
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
  }
  cv_.notify_one();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = lifetime_;
  out.active = active_;
  out.queued = queued_;
  return out;
}

}  // namespace raven::server
