// Tests for the on-disk columnar (.rvc) format and its scan path: write /
// mmap-read round trips (dictionaries, RLE, NaN payloads), rejection of
// truncated / corrupted / stale-version files, zone-map block matching,
// the DiskScanOperator's skip accounting, and MergedStats.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "relational/block_table.h"
#include "relational/chunk.h"
#include "relational/expression.h"
#include "relational/statistics.h"
#include "relational/table.h"
#include "storage/columnar.h"

namespace raven {
namespace {

using relational::BlockMayMatch;
using relational::ColumnStats;
using relational::CompareOp;
using relational::DataChunk;
using relational::DiskScanOperator;
using relational::SimplePredicate;
using relational::Table;
using storage::DiskTable;
using storage::RvcWriteOptions;
using storage::WriteRvc;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Mixed-content fixture: a spread numeric column, a constant column (RLE
// bait), a NaN-bearing column, and a dictionary column.
Table MakeFixture(std::int64_t rows) {
  Table t;
  std::vector<double> x, c, n, cat;
  std::vector<std::string> dict = {"red", "green", "blue"};
  for (std::int64_t i = 0; i < rows; ++i) {
    x.push_back(static_cast<double>(i) + 0.25);
    c.push_back(7.0);
    n.push_back(i % 5 == 3 ? kNan : static_cast<double>(i) * 0.5);
    cat.push_back(static_cast<double>(i % 3));
  }
  EXPECT_TRUE(t.AddNumericColumn("x", x).ok());
  EXPECT_TRUE(t.AddNumericColumn("c", c).ok());
  EXPECT_TRUE(t.AddNumericColumn("n", n).ok());
  EXPECT_TRUE(t.AddCategoricalColumn("cat", cat, dict).ok());
  return t;
}

void ExpectTablesBitEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (std::int64_t ci = 0; ci < a.num_columns(); ++ci) {
    const auto& ca = a.columns()[ci];
    const auto& cb = b.columns()[ci];
    EXPECT_EQ(ca.name, cb.name);
    EXPECT_EQ(ca.dictionary, cb.dictionary);
    ASSERT_EQ(ca.data.size(), cb.data.size());
    for (std::size_t i = 0; i < ca.data.size(); ++i) {
      // Bit-exact, NaN included: memcmp semantics, not ==.
      std::uint64_t ba, bb;
      std::memcpy(&ba, &ca.data[i], 8);
      std::memcpy(&bb, &cb.data[i], 8);
      EXPECT_EQ(ba, bb) << ca.name << "[" << i << "]";
    }
  }
}

TEST(RvcTest, RoundTripAcrossBlocks) {
  const std::string path = TempPath("roundtrip.rvc");
  Table original = MakeFixture(10);
  RvcWriteOptions opts;
  opts.block_rows = 4;
  ASSERT_TRUE(WriteRvc(original, path, opts).ok());

  auto opened = DiskTable::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const auto& disk = *opened.value();
  EXPECT_EQ(disk.num_rows(), 10);
  EXPECT_EQ(disk.num_blocks(), 3);  // 4 + 4 + 2
  EXPECT_EQ(disk.block_rows(), 4);
  EXPECT_EQ(disk.BlockRowCount(2), 2);
  EXPECT_EQ(disk.ColumnNames(), original.ColumnNames());
  ASSERT_NE(disk.Dictionary("cat"), nullptr);
  EXPECT_EQ((*disk.Dictionary("cat"))[0], "red");
  EXPECT_EQ(disk.Dictionary("x"), nullptr);

  auto all = disk.ReadRows(0, 10);
  ASSERT_TRUE(all.ok());
  ExpectTablesBitEqual(original, all.value());

  // A range straddling a block boundary decodes to the same slice.
  auto mid = disk.ReadRows(3, 7);
  ASSERT_TRUE(mid.ok());
  ExpectTablesBitEqual(original.SliceRows(3, 7), mid.value());
}

TEST(RvcTest, RleKicksInForConstantColumns) {
  const std::string path = TempPath("rle.rvc");
  ASSERT_TRUE(WriteRvc(MakeFixture(64), path).ok());
  auto opened = DiskTable::Open(path);
  ASSERT_TRUE(opened.ok());
  // The constant column "c" (and the short-run "cat" codes) must have
  // compressed; a zero count would make the encoder's tests vacuous.
  const std::string describe = opened.value()->Describe();
  EXPECT_EQ(describe.find("0 rle payloads"), std::string::npos) << describe;
  EXPECT_NE(describe.find("rle payloads"), std::string::npos) << describe;

  auto all = opened.value()->ReadRows(0, 64);
  ASSERT_TRUE(all.ok());
  ExpectTablesBitEqual(MakeFixture(64), all.value());
}

TEST(RvcTest, NanRunsCompressBitExactly) {
  const std::string path = TempPath("nanrle.rvc");
  Table t;
  ASSERT_TRUE(
      t.AddNumericColumn("v", std::vector<double>(100, kNan)).ok());
  ASSERT_TRUE(WriteRvc(t, path).ok());
  auto opened = DiskTable::Open(path);
  ASSERT_TRUE(opened.ok());
  auto back = opened.value()->ReadRows(0, 100);
  ASSERT_TRUE(back.ok());
  for (double v : back.value().columns()[0].data) {
    EXPECT_TRUE(std::isnan(v));
  }
}

TEST(RvcTest, RejectsMissingAndEmptyFiles) {
  EXPECT_FALSE(DiskTable::Open(TempPath("nope.rvc")).ok());
  const std::string path = TempPath("empty.rvc");
  std::ofstream(path, std::ios::binary).close();
  EXPECT_FALSE(DiskTable::Open(path).ok());
}

TEST(RvcTest, RejectsBadMagicAndStaleVersion) {
  const std::string good = TempPath("good.rvc");
  ASSERT_TRUE(WriteRvc(MakeFixture(8), good).ok());
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  {
    std::string bad = bytes;
    bad[0] = 'X';  // magic
    const std::string path = TempPath("badmagic.rvc");
    std::ofstream(path, std::ios::binary).write(bad.data(), bad.size());
    auto r = DiskTable::Open(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("magic"), std::string::npos);
  }
  {
    std::string bad = bytes;
    bad[4] = 99;  // version (little-endian u32 at offset 4)
    const std::string path = TempPath("staleversion.rvc");
    std::ofstream(path, std::ios::binary).write(bad.data(), bad.size());
    auto r = DiskTable::Open(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("version"), std::string::npos);
  }
}

TEST(RvcTest, RejectsTruncationAtEveryRegion) {
  const std::string good = TempPath("trunc_src.rvc");
  ASSERT_TRUE(WriteRvc(MakeFixture(8), good).ok());
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Header, mid-meta, and mid-data truncations must all fail cleanly at
  // Open (the data region is bounds-checked against block offsets).
  for (std::size_t keep :
       {std::size_t{10}, bytes.size() / 2, bytes.size() - 3}) {
    const std::string path = TempPath("trunc.rvc");
    std::ofstream(path, std::ios::binary).write(bytes.data(), keep);
    EXPECT_FALSE(DiskTable::Open(path).ok()) << "keep=" << keep;
  }
}

TEST(RvcTest, CorruptedDataRegionFailsChecksumNotAnswers) {
  const std::string good = TempPath("flip_src.rvc");
  ASSERT_TRUE(WriteRvc(MakeFixture(32), good).ok());
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip one byte near the end (inside some block's payload). Open may
  // still succeed (meta intact), but decoding the poisoned block must
  // fail its checksum — never return altered rows.
  std::string bad = bytes;
  bad[bytes.size() - 5] = static_cast<char>(bad[bytes.size() - 5] ^ 0xFF);
  const std::string path = TempPath("flip.rvc");
  std::ofstream(path, std::ios::binary).write(bad.data(), bad.size());
  auto opened = DiskTable::Open(path);
  if (!opened.ok()) return;  // rejected at open: also fine
  bool failed = false;
  for (std::int64_t b = 0; b < opened.value()->num_blocks(); ++b) {
    DataChunk chunk;
    Status s = opened.value()->ReadBlock(b, &chunk);
    if (!s.ok()) {
      failed = true;
      EXPECT_NE(s.ToString().find("checksum"), std::string::npos)
          << s.ToString();
    }
  }
  EXPECT_TRUE(failed);
}

TEST(ZoneMapTest, RangePredicatesConsultMinMax) {
  ColumnStats stats;
  stats.min = 10.0;
  stats.max = 20.0;
  stats.num_rows = 4;
  EXPECT_TRUE(BlockMayMatch(stats, {"x", CompareOp::kEq, 15.0}));
  EXPECT_FALSE(BlockMayMatch(stats, {"x", CompareOp::kEq, 25.0}));
  EXPECT_TRUE(BlockMayMatch(stats, {"x", CompareOp::kLt, 10.5}));
  EXPECT_FALSE(BlockMayMatch(stats, {"x", CompareOp::kLt, 10.0}));
  EXPECT_TRUE(BlockMayMatch(stats, {"x", CompareOp::kLe, 10.0}));
  EXPECT_FALSE(BlockMayMatch(stats, {"x", CompareOp::kLe, 9.0}));
  EXPECT_TRUE(BlockMayMatch(stats, {"x", CompareOp::kGt, 19.5}));
  EXPECT_FALSE(BlockMayMatch(stats, {"x", CompareOp::kGt, 20.0}));
  EXPECT_TRUE(BlockMayMatch(stats, {"x", CompareOp::kGe, 20.0}));
  EXPECT_FALSE(BlockMayMatch(stats, {"x", CompareOp::kGe, 21.0}));
  // kNe skips only a block constant at exactly the compared value.
  EXPECT_TRUE(BlockMayMatch(stats, {"x", CompareOp::kNe, 15.0}));
  ColumnStats constant = stats;
  constant.min = constant.max = 15.0;
  constant.constant = 15.0;
  EXPECT_FALSE(BlockMayMatch(constant, {"x", CompareOp::kNe, 15.0}));
  EXPECT_TRUE(BlockMayMatch(constant, {"x", CompareOp::kNe, 16.0}));
}

TEST(ZoneMapTest, NonFiniteBlocksAndConstantsNeverSkip) {
  ColumnStats nan_block;
  nan_block.min = 1.0;
  nan_block.max = 2.0;
  nan_block.num_rows = 3;
  nan_block.nan_count = 1;
  nan_block.non_finite_count = 1;
  nan_block.has_non_finite = true;
  // The regression the NaN-stats fix exists for: [1,2] with a NaN row must
  // not be skipped by any range predicate.
  EXPECT_TRUE(BlockMayMatch(nan_block, {"x", CompareOp::kGe, 100.0}));
  EXPECT_TRUE(BlockMayMatch(nan_block, {"x", CompareOp::kEq, 100.0}));

  ColumnStats finite;
  finite.min = 1.0;
  finite.max = 2.0;
  finite.num_rows = 2;
  // Non-finite comparison constants never justify a skip.
  EXPECT_TRUE(BlockMayMatch(finite, {"x", CompareOp::kEq, kNan}));
  EXPECT_TRUE(BlockMayMatch(finite, {"x", CompareOp::kGt, -kInf}));

  ColumnStats all_nan;
  all_nan.num_rows = 2;
  all_nan.nan_count = 2;
  all_nan.non_finite_count = 2;
  all_nan.has_non_finite = true;
  EXPECT_TRUE(BlockMayMatch(all_nan, {"x", CompareOp::kLt, 0.0}));
}

std::shared_ptr<const DiskTable> OpenFixture(std::int64_t rows,
                                             std::int64_t block_rows,
                                             const std::string& name) {
  const std::string path = TempPath(name);
  Table t = MakeFixture(rows);
  RvcWriteOptions opts;
  opts.block_rows = block_rows;
  EXPECT_TRUE(WriteRvc(t, path, opts).ok());
  auto opened = DiskTable::Open(path);
  EXPECT_TRUE(opened.ok());
  return opened.value();
}

TEST(DiskScanTest, ZonePredicatesSkipNonMatchingBlocks) {
  auto disk = OpenFixture(64, 8, "scan_skip.rvc");  // x in [0.25, 63.25]
  DiskScanOperator scan(disk);
  scan.SetZonePredicates({{"x", CompareOp::kGe, 48.0}});
  std::atomic<std::int64_t> scanned{0}, skipped{0};
  scan.SetBlockCounters(&scanned, &skipped);
  ASSERT_TRUE(scan.Open().ok());
  DataChunk chunk;
  std::int64_t rows = 0;
  double min_x = kInf;
  while (true) {
    auto more = scan.Next(&chunk);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    rows += chunk.num_rows();
    for (double v : chunk.cols[0]) min_x = std::min(min_x, v);
  }
  // Blocks 0..5 top out below 48; block 5 covers rows 40..47 (max 47.25).
  EXPECT_EQ(skipped.load(), 6);
  EXPECT_EQ(scanned.load(), 2);
  EXPECT_EQ(rows, 16);
  EXPECT_EQ(min_x, 48.25);
}

TEST(DiskScanTest, NanColumnBlocksAreNeverSkipped) {
  // Column "n" has a NaN every 5 rows — every block is NaN-bearing, so a
  // wildly selective range predicate must not skip anything.
  auto disk = OpenFixture(64, 8, "scan_nan.rvc");
  DiskScanOperator scan(disk);
  scan.SetZonePredicates({{"n", CompareOp::kGe, 1e9}});
  std::atomic<std::int64_t> scanned{0}, skipped{0};
  scan.SetBlockCounters(&scanned, &skipped);
  ASSERT_TRUE(scan.Open().ok());
  DataChunk chunk;
  std::int64_t rows = 0;
  while (true) {
    auto more = scan.Next(&chunk);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    rows += chunk.num_rows();
  }
  EXPECT_EQ(skipped.load(), 0);
  EXPECT_EQ(scanned.load(), 8);
  EXPECT_EQ(rows, 64);
}

TEST(DiskScanTest, MorselModeRequiresBlockAlignment) {
  auto disk = OpenFixture(64, 8, "scan_align.rvc");
  {
    auto queue = std::make_shared<MorselQueue>(64, 16);  // wrong granularity
    DiskScanOperator scan(disk, queue, 0);
    EXPECT_FALSE(scan.Open().ok());
  }
  {
    auto queue = std::make_shared<MorselQueue>(32, 8);  // wrong total
    DiskScanOperator scan(disk, queue, 0);
    EXPECT_FALSE(scan.Open().ok());
  }
  {
    auto queue = std::make_shared<MorselQueue>(64, 8);
    DiskScanOperator scan(disk, queue, 3);
    ASSERT_TRUE(scan.Open().ok());
    DataChunk chunk;
    std::int64_t blocks = 0;
    while (true) {
      auto more = scan.Next(&chunk);
      ASSERT_TRUE(more.ok());
      if (!more.value()) break;
      ++blocks;
      EXPECT_EQ(chunk.order_source, 3);
      // Block-aligned queue makes morsel index == block index, which is
      // what keeps parallel merge order byte-identical to in-memory.
      EXPECT_EQ(chunk.cols[0][0], chunk.order_morsel * 8 + 0.25);
    }
    EXPECT_EQ(blocks, 8);
  }
}

TEST(MergedStatsTest, MergesAcrossBlocks) {
  auto disk = OpenFixture(20, 4, "merged.rvc");
  auto merged = relational::MergedStats(*disk);
  ASSERT_TRUE(merged.count("x"));
  EXPECT_EQ(merged["x"].min, 0.25);
  EXPECT_EQ(merged["x"].max, 19.25);
  EXPECT_EQ(merged["x"].num_rows, 20);
  EXPECT_FALSE(merged["x"].has_non_finite);
  EXPECT_FALSE(merged["x"].constant.has_value());
  // The constant column survives the merge as a constant.
  ASSERT_TRUE(merged.count("c"));
  EXPECT_EQ(merged["c"].constant, std::optional<double>(7.0));
  EXPECT_EQ(merged["c"].distinct, 1);
  // The NaN-bearing column reports its non-finite rows (4 of 20).
  ASSERT_TRUE(merged.count("n"));
  EXPECT_TRUE(merged["n"].has_non_finite);
  EXPECT_EQ(merged["n"].nan_count, 4);
}

}  // namespace
}  // namespace raven
