#ifndef RAVEN_OBS_METRICS_H_
#define RAVEN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace raven {
namespace obs {

/// Monotone (or scrape-time-set) integer series. Prometheus type: counter.
class Counter {
 public:
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Scrape-time fill from a lifetime counter owned elsewhere (the
  /// ServerStats sources): the underlying source is monotone, so the
  /// exported series is too.
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time double series. Prometheus type: gauge.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Returns `count` bucket upper bounds growing geometrically from `start`
/// by `factor` (e.g. LogBuckets(0.25, 2, 14) → 0.25 .. 2048). The implicit
/// +Inf bucket is appended by the Histogram itself.
std::vector<double> LogBuckets(double start, double factor, int count);

/// Fixed-boundary histogram with lock-free observation: one relaxed
/// fetch_add on the bucket counter plus sum/count. Boundaries are fixed at
/// registration (Prometheus-style cumulative buckets are computed at
/// render time, so Observe never touches more than one bucket).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  std::int64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  std::int64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// containing bucket — the source for bench.sh's p50/p95/p99 columns.
  /// Returns 0 when empty.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  // bounds+1 (+Inf)
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A process-wide (per-server, not global — twin servers in one test
/// process must not share series) registry of named metrics, rendered in
/// Prometheus text exposition format. Registration happens once at server
/// construction; Render and the accessors are thread-safe because the
/// metric set is immutable afterwards and the values are atomics.
///
/// Labeled series share one family: AddCounter("x_total", help,
/// "backend=\"simd\"") renders `x_total{backend="simd"} N` with a single
/// HELP/TYPE header per family.
class MetricsRegistry {
 public:
  Counter* AddCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge* AddGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  Histogram* AddHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  /// Prometheus text format, families in registration order.
  std::string Render() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::string name;    // family name
    std::string help;
    std::string labels;  // rendered inside {...}; empty = unlabeled
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::vector<Metric> metrics_;
};

}  // namespace obs
}  // namespace raven

#endif  // RAVEN_OBS_METRICS_H_
